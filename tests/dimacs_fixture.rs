//! DIMACS round-trip over the committed SATLIB-style fixture, so the CLI and
//! parser tests do not depend only on generated instances.

use weaver::sat::dimacs;

const FIXTURE: &str = include_str!("fixtures/uf20-01.cnf");

#[test]
fn fixture_matches_satlib_shape() {
    let f = dimacs::parse(FIXTURE).expect("parse committed fixture");
    assert_eq!(f.num_vars(), 20);
    assert_eq!(f.num_clauses(), 91);
    assert!(f.clauses().iter().all(|c| c.lits().len() <= 3));
}

#[test]
fn parse_print_parse_is_identity() {
    let parsed = dimacs::parse(FIXTURE).expect("parse committed fixture");
    let printed = dimacs::to_string(&parsed);
    let reparsed = dimacs::parse(&printed).expect("reparse printed DIMACS");
    assert_eq!(reparsed, parsed, "parse → print → parse must be identity");
    // And printing is a fixpoint from the first round on.
    assert_eq!(dimacs::to_string(&reparsed), printed);
}

#[test]
fn weaverc_checks_the_fixture() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/uf20-01.cnf");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_weaverc"))
        .args([fixture, "--target", "fpqa", "--check"])
        .output()
        .expect("run weaverc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("wChecker PASS"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OPENQASM"));
}
