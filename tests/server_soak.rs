//! Soak suite for the `weaverd` compile server: concurrent clients over a
//! Unix socket must get byte-identical artifacts to local single-shot
//! compiles, load must shed with structured `busy` records at the queue
//! bound instead of stalling, a hostile client (malformed frames, the
//! test-only `panic` verb) must only ever kill its own connection, and a
//! drain requested mid-flood must finish everything accepted and return
//! cleanly. The first test also exercises the paged store's group-commit
//! batching: many concurrent compile writers funnel through
//! `Store::put_many` under one engine.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use weaver::engine::jsonl::{JsonObject, JsonValue};
use weaver::engine::server::{
    read_frame, write_frame, ClientStream, ListenAddr, Server, ServerConfig,
};
use weaver::engine::{
    CacheConfig, CompileJob, Engine, EngineConfig, JobOptions, JobSource, Target,
};

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weaver-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The 8-fixture suite: mixed frontends (DIMACS CNF, weighted WCNF,
/// max-cut) and mixed targets. The simulator target is deliberately not
/// here — its state-vector sweep is minutes, not milliseconds.
const SUITE: &[(&str, &str, &str)] = &[
    ("tests/fixtures/uf20-01.cnf", "dimacs", "fpqa"),
    ("tests/fixtures/uf20-02.cnf", "dimacs", "fpqa"),
    ("tests/fixtures/uf20-03.cnf", "dimacs", "superconducting"),
    ("tests/fixtures/uf20-04.cnf", "dimacs", "superconducting"),
    ("tests/fixtures/uf20-05.cnf", "dimacs", "fpqa"),
    ("tests/fixtures/sample.wcnf", "dimacs", "fpqa"),
    ("tests/fixtures/triangle.mc", "maxcut", "fpqa"),
    ("tests/fixtures/triangle.mc", "maxcut", "superconducting"),
];

fn compile_request(id: u64, path: &str, frontend: &str, target: &str, emit: bool) -> String {
    JsonObject::new()
        .str("verb", "compile")
        .u64("id", id)
        .str("name", path)
        .str("text", &std::fs::read_to_string(path).unwrap())
        .str("frontend", frontend)
        .str("target", target)
        .bool("emit", emit)
        .finish()
}

/// Pipelines `requests` down one connection and reads exactly one record
/// per request (completion order).
fn roundtrip(addr: &ListenAddr, requests: &[String]) -> Vec<JsonValue> {
    let mut stream = ClientStream::connect(addr).expect("connect");
    for request in requests {
        write_frame(&mut stream, request.as_bytes()).expect("send");
    }
    let mut records = Vec::new();
    while records.len() < requests.len() {
        let frame = read_frame(&mut stream)
            .expect("receive")
            .expect("server closed before all results arrived");
        records.push(JsonValue::parse(std::str::from_utf8(&frame).unwrap()).unwrap());
    }
    records
}

fn start(
    config: ServerConfig,
) -> (
    ListenAddr,
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let flag = server.shutdown_flag();
    let handle = std::thread::spawn(move || server.serve());
    (addr, flag, handle)
}

#[test]
fn concurrent_clients_match_single_shot_compiles() {
    let dir = tdir("match");
    let (addr, flag, handle) = start(ServerConfig {
        engine: EngineConfig {
            jobs: 4,
            cache: CacheConfig {
                disk_dir: Some(dir.join("cache")),
                ..CacheConfig::default()
            },
            use_cache: true,
        },
        queue_bound: 64,
        panic_verb: false,
        ..ServerConfig::new(ListenAddr::Unix(dir.join("weaverd.sock")))
    });

    let requests: Vec<String> = SUITE
        .iter()
        .enumerate()
        .map(|(id, (path, frontend, target))| {
            compile_request(id as u64, path, frontend, target, true)
        })
        .collect();

    // 4 concurrent clients, each submitting the whole suite: later
    // duplicates land as warm cache hits, and every client must see the
    // same bytes.
    let per_client: Vec<Vec<Option<String>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = &addr;
                let requests = &requests;
                scope.spawn(move || {
                    let records = roundtrip(addr, requests);
                    let mut by_id: Vec<Option<String>> = vec![None; requests.len()];
                    for record in records {
                        assert_eq!(record.str_field("kind"), Some("job"), "suite must compile");
                        assert_eq!(record.str_field("status"), Some("ok"));
                        let id = record.get("id").and_then(JsonValue::as_u64).unwrap() as usize;
                        by_id[id] = record.str_field("wqasm").map(str::to_string);
                    }
                    by_id
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Local single-shot reference compiles, same options, fresh engine.
    let reference = Engine::new(EngineConfig {
        jobs: 2,
        cache: CacheConfig::default(),
        use_cache: true,
    });
    let jobs: Vec<CompileJob> = SUITE
        .iter()
        .map(|(path, frontend, target)| CompileJob {
            source: JobSource::Path(PathBuf::from(path)),
            frontend: Some((*frontend).to_string()),
            target: Target::parse(target).unwrap(),
            options: JobOptions::default(),
        })
        .collect();
    let report = reference.run(jobs);
    for result in &report.results {
        let expected = &result.artifact.as_ref().expect("reference compiles").wqasm;
        for (client, by_id) in per_client.iter().enumerate() {
            let served = by_id[result.index]
                .as_deref()
                .expect("every served job carries wqasm when emit=true");
            assert_eq!(
                served, expected,
                "client {client} fixture {} must be byte-identical to single-shot",
                result.index
            );
        }
    }

    // The admin surface shows the warm cache: 32 compile requests over 8
    // distinct keys means hits are guaranteed, and store introspection is
    // wired through.
    let stats = roundtrip(&addr, &[JsonObject::new().str("verb", "stats").finish()]);
    let cache = stats[0].get("cache").expect("stats carries cache tiers");
    let hits = cache
        .get("memory_hits")
        .and_then(JsonValue::as_u64)
        .unwrap()
        + cache.get("disk_hits").and_then(JsonValue::as_u64).unwrap();
    assert!(hits >= 1, "repeat submissions must hit the warm cache");
    let store = stats[0].get("store").expect("stats carries store stats");
    assert!(
        store.get("artifacts").and_then(JsonValue::as_u64).unwrap() >= 8,
        "all distinct artifacts must land in the paged store"
    );
    assert!(
        stats[0]
            .str_field("metrics")
            .unwrap()
            .contains("weaver_server_requests_total"),
        "stats embeds the Prometheus snapshot"
    );

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_queue_bound_sheds_load_with_busy_records() {
    let dir = tdir("busy");
    let (addr, flag, handle) = start(ServerConfig {
        engine: EngineConfig {
            jobs: 1,
            cache: CacheConfig::default(),
            // Uncached so every duplicate really occupies the worker.
            use_cache: false,
        },
        queue_bound: 1,
        panic_verb: false,
        ..ServerConfig::new(ListenAddr::Unix(dir.join("weaverd.sock")))
    });

    let (path, frontend, target) = SUITE[0];
    let requests: Vec<String> = (0..16)
        .map(|id| compile_request(id, path, frontend, target, false))
        .collect();
    let records = roundtrip(&addr, &requests);

    let ok = records
        .iter()
        .filter(|r| r.str_field("kind") == Some("job"))
        .count();
    let busy: Vec<&JsonValue> = records
        .iter()
        .filter(|r| r.str_field("kind") == Some("busy"))
        .collect();
    assert_eq!(ok + busy.len(), 16, "every request gets exactly one answer");
    assert!(ok >= 1, "the pool keeps serving under overload");
    assert!(
        !busy.is_empty(),
        "a 16-deep instant flood against bound 1 must shed load"
    );
    for record in &busy {
        assert_eq!(record.str_field("error_kind"), Some("server-busy"));
        assert_eq!(record.get("limit").and_then(JsonValue::as_u64), Some(1));
    }

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_clients_only_kill_their_own_connection() {
    let dir = tdir("hostile");
    let (addr, flag, handle) = start(ServerConfig {
        engine: EngineConfig {
            jobs: 1,
            cache: CacheConfig::default(),
            use_cache: true,
        },
        queue_bound: 8,
        panic_verb: true,
        ..ServerConfig::new(ListenAddr::Unix(dir.join("weaverd.sock")))
    });

    // Well-framed garbage gets a structured malformed error and the
    // connection stays usable.
    {
        let mut stream = ClientStream::connect(&addr).unwrap();
        write_frame(&mut stream, b"this is not json").unwrap();
        let frame = read_frame(&mut stream).unwrap().unwrap();
        let record = JsonValue::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(record.str_field("kind"), Some("error"));
        assert_eq!(record.str_field("error_kind"), Some("malformed"));
        write_frame(
            &mut stream,
            JsonObject::new().str("verb", "ping").finish().as_bytes(),
        )
        .unwrap();
        let frame = read_frame(&mut stream).unwrap().unwrap();
        let record = JsonValue::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
        assert_eq!(
            record.str_field("kind"),
            Some("pong"),
            "connection survives"
        );
    }

    // A hostile length prefix (1 GiB) violates framing: the server
    // answers with a malformed error and hangs up — but only on *this*
    // connection.
    {
        let mut stream = ClientStream::connect(&addr).unwrap();
        stream.write_all(&(1u32 << 30).to_be_bytes()).unwrap();
        stream.flush().unwrap();
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("server hangs up");
        let text = String::from_utf8_lossy(&rest);
        assert!(text.contains("malformed"), "got: {text}");
    }

    // The panic verb kills its handler inside the catch-unwind guard.
    {
        let mut stream = ClientStream::connect(&addr).unwrap();
        write_frame(
            &mut stream,
            JsonObject::new().str("verb", "panic").finish().as_bytes(),
        )
        .unwrap();
        let mut rest = Vec::new();
        stream
            .read_to_end(&mut rest)
            .expect("connection dies quietly");
    }

    // The server is still fully alive: a real compile works, and the
    // panic + malformed counters prove the guards fired.
    let (path, frontend, target) = SUITE[0];
    let records = roundtrip(&addr, &[compile_request(7, path, frontend, target, false)]);
    assert_eq!(records[0].str_field("kind"), Some("job"));
    assert_eq!(records[0].str_field("status"), Some("ok"));

    let stats = roundtrip(&addr, &[JsonObject::new().str("verb", "stats").finish()]);
    let metrics = weaver::obs::metrics::parse_snapshot(stats[0].str_field("metrics").unwrap());
    assert!(
        metrics
            .get("weaver_server_panics_total")
            .copied()
            .unwrap_or(0.0)
            >= 1.0,
        "panic guard must count"
    );
    assert!(
        metrics
            .get("weaver_server_malformed_total")
            .copied()
            .unwrap_or(0.0)
            >= 2.0,
        "malformed frames must count"
    );

    flag.store(true, Ordering::SeqCst);
    handle.join().unwrap().expect("clean drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_mid_flood_finishes_accepted_work() {
    let dir = tdir("drain");
    let (addr, flag, handle) = start(ServerConfig {
        engine: EngineConfig {
            jobs: 2,
            cache: CacheConfig {
                disk_dir: Some(dir.join("cache")),
                ..CacheConfig::default()
            },
            use_cache: true,
        },
        queue_bound: 64,
        panic_verb: false,
        ..ServerConfig::new(ListenAddr::Unix(dir.join("weaverd.sock")))
    });

    // 3 clients flood while the main thread pulls the plug mid-flight.
    // Every response that does arrive must be well-formed: a finished job,
    // a busy shed, or a structured shutting-down refusal.
    let flood = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|client| {
                let addr = &addr;
                scope.spawn(move || {
                    let mut stream = match ClientStream::connect(addr) {
                        Ok(s) => s,
                        // The accept loop may already be gone.
                        Err(_) => return (0usize, 0usize),
                    };
                    let mut sent = 0usize;
                    for id in 0..12u64 {
                        let (path, frontend, target) = SUITE[(client + id as usize) % SUITE.len()];
                        let request = compile_request(id, path, frontend, target, false);
                        if write_frame(&mut stream, request.as_bytes()).is_err() {
                            break;
                        }
                        sent += 1;
                    }
                    let mut answered = 0usize;
                    while answered < sent {
                        match read_frame(&mut stream) {
                            Ok(Some(frame)) => {
                                let record =
                                    JsonValue::parse(std::str::from_utf8(&frame).unwrap()).unwrap();
                                let kind = record.str_field("kind");
                                assert!(
                                    kind == Some("job")
                                        || kind == Some("busy")
                                        || kind == Some("error"),
                                    "unexpected record kind {kind:?}"
                                );
                                if kind == Some("error") {
                                    assert_eq!(
                                        record.str_field("error_kind"),
                                        Some("shutting-down")
                                    );
                                }
                                answered += 1;
                            }
                            // Drain closed the connection: requests the
                            // reader never picked up get no response.
                            Ok(None) | Err(_) => break,
                        }
                    }
                    (sent, answered)
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(120));
        flag.store(true, Ordering::SeqCst);
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });

    handle
        .join()
        .unwrap()
        .expect("drain mid-flood returns cleanly");
    let answered: usize = flood.iter().map(|(_, a)| *a).sum();
    assert!(
        answered >= 1,
        "some in-flight work completes through the drain"
    );

    // The drained store reopens consistent: group commits from concurrent
    // writers must not tear it.
    let store_dir = dir.join("cache");
    if store_dir.join(weaver::engine::store::STORE_FILE).exists() {
        let mut store = weaver::engine::store::Store::open(
            &store_dir,
            weaver::engine::store::StoreTuning::default(),
        )
        .expect("store reopens after drain");
        let verify = store.verify().expect("verification scan");
        assert!(verify.consistent(), "store consistent after drain");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
