//! Property-based tests (proptest) over the workspace invariants listed in
//! DESIGN.md §5.

use proptest::prelude::*;
use weaver::circuit::{native, Circuit, Gate, NativeBasis};
use weaver::core::coloring;
use weaver::core::compress;
use weaver::sat::{Clause, Formula, Lit, PhasePolynomial};
use weaver::simulator::equiv;
use weaver::wqasm;

// ---- generators -------------------------------------------------------------

fn arb_gate(num_qubits: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..num_qubits;
    let angle = -3.2f64..3.2f64;
    prop_oneof![
        (q.clone()).prop_map(|a| (Gate::H, vec![a])),
        (q.clone()).prop_map(|a| (Gate::X, vec![a])),
        (q.clone()).prop_map(|a| (Gate::T, vec![a])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        (q.clone(), angle.clone()).prop_map(|(a, t)| (Gate::Rx(t), vec![a])),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| (Gate::Cx, vec![a, b]))
        }),
        (q.clone(), q.clone()).prop_filter_map("distinct", |(a, b)| {
            (a != b).then(|| (Gate::Cz, vec![a, b]))
        }),
        (q.clone(), q.clone(), q).prop_filter_map("distinct", |(a, b, c)| {
            (a != b && b != c && a != c).then(|| (Gate::Ccz, vec![a, b, c]))
        }),
    ]
}

fn arb_circuit(num_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(num_qubits), 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(num_qubits);
        for (g, qs) in gates {
            c.push(g, &qs);
        }
        c
    })
}

fn arb_clause(num_vars: usize) -> impl Strategy<Value = Clause> {
    prop::collection::hash_set(0..num_vars, 1..=3.min(num_vars)).prop_flat_map(|vars| {
        let vars: Vec<usize> = vars.into_iter().collect();
        prop::collection::vec(any::<bool>(), vars.len()).prop_map(move |signs| {
            Clause::new(
                vars.iter()
                    .zip(&signs)
                    .map(|(&v, &neg)| if neg { Lit::neg(v) } else { Lit::pos(v) })
                    .collect(),
            )
        })
    })
}

fn arb_formula(num_vars: usize, max_clauses: usize) -> impl Strategy<Value = Formula> {
    prop::collection::vec(arb_clause(num_vars), 1..max_clauses)
        .prop_map(move |clauses| Formula::new(num_vars, clauses))
}

// ---- properties ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Nativization preserves the circuit unitary (up to global phase).
    #[test]
    fn nativize_preserves_unitary(c in arb_circuit(4, 14)) {
        for basis in [NativeBasis::U3Cz, NativeBasis::U3CzCcz] {
            let n = native::nativize(&c, basis);
            let e = equiv::compare(&c.unitary(), &n.unitary(), 1e-8);
            prop_assert!(e.is_equivalent(), "{e:?}");
        }
    }

    /// Peephole optimization preserves the unitary.
    #[test]
    fn peephole_preserves_unitary(c in arb_circuit(4, 14)) {
        let (o, _) = weaver::circuit::optimize::peephole(&c);
        let e = equiv::compare(&c.unitary(), &o.unitary(), 1e-8);
        prop_assert!(e.is_equivalent(), "{e:?}");
    }

    /// DSatur colorings are always valid (no adjacent same-color clauses).
    #[test]
    fn coloring_is_valid(f in arb_formula(10, 24)) {
        let g = coloring::conflict_graph(&f);
        let c = coloring::color_clauses(&f);
        prop_assert!(coloring::is_valid_coloring(&g, &c));
        prop_assert!(c.num_colors >= 1);
    }

    /// The compressed clause fragment matches the CNOT-ladder reference for
    /// every clause shape, sign pattern and angle.
    #[test]
    fn compression_preserves_clause_semantics(
        clause in arb_clause(5),
        gamma in -2.0f64..2.0,
    ) {
        let n = clause.vars().max().unwrap() + 1;
        let compressed = compress::compressed_clause_circuit(&clause, gamma, n);
        let reference = compress::reference_clause_circuit(&clause, gamma, n);
        let e = equiv::compare(&compressed.unitary(), &reference.unitary(), 1e-8);
        prop_assert!(e.is_equivalent(), "clause {clause}: {e:?}");
    }

    /// The clause phase polynomial agrees with direct truth-table counting.
    #[test]
    fn phase_polynomial_counts_satisfaction(f in arb_formula(6, 10), bits in 0usize..64) {
        let poly = PhasePolynomial::from_formula(&f);
        let a: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
        let expected = f.count_satisfied(&a) as f64;
        prop_assert!((poly.eval_bool(&a) - expected).abs() < 1e-9);
    }

    /// wQasm print → parse is idempotent on compiled programs and preserves
    /// the pulse/motion structure.
    #[test]
    fn wqasm_roundtrip_on_compiled(seed in 1usize..40) {
        let f = weaver::sat::generator::instance(6, seed);
        let result = weaver::core::Weaver::new().compile_fpqa(&f);
        let text = wqasm::print(&result.compiled.program);
        let reparsed = wqasm::parse(&text).expect("reparse");
        let reparsed2 = wqasm::parse(&wqasm::print(&reparsed)).expect("reparse twice");
        prop_assert_eq!(&reparsed2, &reparsed);
        prop_assert_eq!(reparsed.pulse_count(), result.compiled.program.pulse_count());
        prop_assert_eq!(reparsed.motion_count(), result.compiled.program.motion_count());
    }

    /// EPS is always a probability, and adding pulses never raises it.
    #[test]
    fn eps_is_monotone_probability(seed in 1usize..30) {
        use weaver::fpqa::{eps, FpqaParams, PulseOp, PulseSchedule};
        let f = weaver::sat::generator::instance(8, seed);
        let result = weaver::core::Weaver::new().compile_fpqa(&f);
        let params = FpqaParams::default();
        let e = eps(&result.compiled.schedule, &params, 8);
        prop_assert!(e > 0.0 && e <= 1.0);
        let mut longer = PulseSchedule::new();
        longer.append_schedule(&result.compiled.schedule);
        longer.push(PulseOp::Rydberg { groups: vec![vec![0, 1]] });
        prop_assert!(eps(&longer, &params, 8) <= e);
    }

    /// Exact solver results upper-bound WalkSAT and both count correctly.
    #[test]
    fn solvers_are_consistent(f in arb_formula(10, 20)) {
        let exact = weaver::sat::solver::solve_exact(&f);
        let walk = weaver::sat::solver::solve_walksat(&f, 2_000, 7);
        prop_assert!(walk.satisfied <= exact.satisfied);
        prop_assert_eq!(f.count_satisfied(&exact.assignment), exact.satisfied);
        prop_assert_eq!(f.count_satisfied(&walk.assignment), walk.satisfied);
    }
}
