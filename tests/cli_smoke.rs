//! Smoke test for the `weaverc` CLI: DIMACS in, wQasm out, checker PASS.

use std::process::Command;

fn weaverc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_weaverc"))
}

fn write_cnf() -> String {
    let f = weaver::sat::generator::instance(10, 1);
    let path = std::env::temp_dir().join("weaverc_smoke_uf10.cnf");
    std::fs::write(&path, weaver::sat::dimacs::to_string(&f)).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn compiles_dimacs_to_wqasm_with_check() {
    let cnf = write_cnf();
    let out = weaverc()
        .args([cnf.as_str(), "--target", "fpqa", "--check"])
        .output()
        .expect("run weaverc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OPENQASM"));
    assert!(stdout.contains("@rydberg"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wChecker PASS"), "{stderr}");
    // The emitted program reparses and validates.
    let program = weaver::wqasm::parse(&stdout).expect("reparse CLI output");
    assert!(weaver::wqasm::semantics::validate(&program, &Default::default()).is_empty());
}

#[test]
fn superconducting_target_emits_plain_qasm() {
    let cnf = write_cnf();
    let out = weaverc()
        .args([cnf.as_str(), "--target", "superconducting"])
        .output()
        .expect("run weaverc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let program = weaver::wqasm::parse(&stdout).expect("reparse CLI output");
    assert!(
        program.pulse_count() == 0,
        "no FPQA annotations on the SC path"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("SWAPs"));
}

#[test]
fn simulator_target_reports_ideal_eps() {
    let cnf = write_cnf();
    let out = weaverc()
        .args([cnf.as_str(), "--target", "simulator"])
        .output()
        .expect("run weaverc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let program = weaver::wqasm::parse(&stdout).expect("reparse CLI output");
    assert_eq!(program.pulse_count(), 0, "ideal path emits no pulses");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ideal EPS"), "{stderr}");
    // The alias reaches the same backend.
    let aliased = weaverc()
        .args([cnf.as_str(), "--target", "sim"])
        .output()
        .unwrap();
    assert!(aliased.status.success());
    assert_eq!(aliased.stdout, out.stdout);
}

#[test]
fn targets_subcommand_lists_the_registry() {
    let out = weaverc().arg("targets").output().expect("run weaverc");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "fpqa",
        "superconducting",
        "simulator",
        "sc:line",
        "sc:grid",
        "sc:eagle",
        "sc:heron",
    ] {
        assert!(stdout.contains(name), "{name} missing from:\n{stdout}");
    }
    assert!(stdout.contains("alias sc"), "{stdout}");
    assert!(stdout.contains("alias sc:washington"), "{stdout}");
    assert!(stdout.contains("alias sc:torino"), "{stdout}");
    assert!(stdout.contains("up to 127 qubits"), "{stdout}");
    assert!(stdout.contains("up to 133 qubits"), "{stdout}");
    assert!(stdout.contains("passes:"), "{stdout}");
    // Stray arguments are rejected instead of silently ignored.
    let out = weaverc().args(["targets", "--jobs"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("takes no arguments"));
}

#[test]
fn unknown_target_is_a_structured_diagnostic() {
    let cnf = write_cnf();
    for args in [
        vec![cnf.as_str(), "--target", "ion-trap"],
        vec!["batch", cnf.as_str(), "--target", "ion-trap"],
    ] {
        let out = weaverc().args(&args).output().unwrap();
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("weaverc: error: unknown-target: unknown target `ion-trap`"),
            "{stderr}"
        );
        assert!(
            stderr.contains("known targets: fpqa, superconducting, simulator"),
            "{stderr}"
        );
    }
}

#[test]
fn device_family_targets_compile_single_shot() {
    let cnf = write_cnf();
    // sc:eagle models the same chip as the legacy `superconducting` target:
    // identical coupling map, so identical bytes out.
    let legacy = weaverc()
        .args([cnf.as_str(), "--target", "superconducting"])
        .output()
        .unwrap();
    assert!(legacy.status.success());
    for device in ["sc:eagle", "sc:washington"] {
        let out = weaverc()
            .args([cnf.as_str(), "--target", device])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{device}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, legacy.stdout,
            "{device} must be byte-identical to the legacy superconducting target"
        );
        assert!(String::from_utf8_lossy(&out.stderr).contains("SWAPs"));
    }
    // A parameterized grid minted from the name compiles too.
    let grid = weaverc()
        .args([cnf.as_str(), "--target", "sc:grid:3x4"])
        .output()
        .unwrap();
    assert!(
        grid.status.success(),
        "{}",
        String::from_utf8_lossy(&grid.stderr)
    );
    // And one too small for the workload is a structured compile error.
    let tiny = weaverc()
        .args([cnf.as_str(), "--target", "sc:grid:2x2"])
        .output()
        .unwrap();
    assert!(!tiny.status.success());
    let stderr = String::from_utf8_lossy(&tiny.stderr);
    assert!(
        stderr.contains("weaverc: error: compile:") && stderr.contains("exceed"),
        "{stderr}"
    );
}

#[test]
fn bad_device_names_are_structured_diagnostics() {
    let cnf = write_cnf();
    for (target, needle) in [
        ("sc:osprey", "unknown device `sc:osprey`"),
        ("sc:grid:0x4", "grid dimensions"),
        ("sc:grid:999x999", "exceeds"),
    ] {
        for args in [
            vec![cnf.as_str(), "--target", target],
            vec!["batch", cnf.as_str(), "--target", target],
        ] {
            let out = weaverc().args(&args).output().unwrap();
            assert!(!out.status.success(), "{args:?}");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains("weaverc: error: unknown-target:") && stderr.contains(needle),
                "{args:?}: {stderr}"
            );
        }
    }
}

#[test]
fn batch_compiles_the_devices_manifest() {
    let manifest = format!("{}/devices.manifest", fixtures_dir());
    let out = weaverc()
        .args(["batch", manifest.as_str(), "--jobs", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for target in [
        "sc:eagle",
        "sc:heron",
        "sc:line",
        "sc:grid:4x5",
        "simulator",
    ] {
        assert!(
            stdout.contains(&format!("\"target\":\"{target}\"")),
            "{target} missing from:\n{stdout}"
        );
    }
    // Per-pass timing flows into the JSONL stream.
    assert!(
        stdout.contains("\"passes\":[{\"name\":\"qaoa-lower\""),
        "{stdout}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("6/6 succeeded"));
}

#[test]
fn frontends_subcommand_lists_the_registry() {
    let out = weaverc().arg("frontends").output().expect("run weaverc");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["dimacs", "maxcut", "wqasm"] {
        assert!(stdout.contains(name), "{name} missing from:\n{stdout}");
    }
    assert!(stdout.contains("alias cnf, wcnf"), "{stdout}");
    assert!(stdout.contains("alias mc, graph"), "{stdout}");
    assert!(stdout.contains(".wcnf"), "{stdout}");
    assert!(stdout.contains("produces: max-sat"), "{stdout}");
    assert!(stdout.contains("produces: circuit"), "{stdout}");
    // Stray arguments are rejected instead of silently ignored.
    let out = weaverc().args(["frontends", "--jobs"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("takes no arguments"));
}

#[test]
fn wcnf_and_maxcut_inputs_compile_single_shot() {
    let wcnf = format!("{}/sample.wcnf", fixtures_dir());
    let out = weaverc().args([wcnf.as_str(), "--check"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("(weighted) [dimacs]"), "{stderr}");
    assert!(stderr.contains("wChecker PASS"), "{stderr}");

    let mc = format!("{}/triangle.mc", fixtures_dir());
    let out = weaverc()
        .args([mc.as_str(), "--target", "sim"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("(weighted) [maxcut]"), "{stderr}");
    assert!(stderr.contains("ideal EPS"), "{stderr}");
}

#[test]
fn circuit_inputs_route_to_circuit_capable_targets_only() {
    let wq = format!("{}/bell.wq", fixtures_dir());
    // The simulator runs it and reports the peak outcome.
    let out = weaverc()
        .args([wq.as_str(), "--target", "simulator"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("2 qubits") && stderr.contains("[wqasm]"),
        "{stderr}"
    );
    assert!(stderr.contains("peak basis-state probability"), "{stderr}");
    // Superconducting devices transpile it.
    let out = weaverc()
        .args([wq.as_str(), "--target", "sc:eagle"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The formula-only FPQA target rejects it with a structured diagnostic.
    let out = weaverc()
        .args([wq.as_str(), "--target", "fpqa"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("weaverc: error: unsupported-workload:")
            && stderr.contains("circuit-capable"),
        "{stderr}"
    );
}

#[test]
fn unknown_frontend_is_a_structured_diagnostic() {
    let cnf = write_cnf();
    for args in [
        vec![cnf.as_str(), "--frontend", "smtlib"],
        vec!["batch", cnf.as_str(), "--frontend", "smtlib"],
    ] {
        let out = weaverc().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("weaverc: error: unknown-format: unknown front end `smtlib`"),
            "{args:?}: {stderr}"
        );
        assert!(
            stderr.contains("known front ends: dimacs, maxcut, wqasm"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn parse_errors_carry_line_and_column() {
    let bad = std::env::temp_dir().join("weaverc_smoke_bad_weight.wcnf");
    std::fs::write(&bad, "p wcnf 2 1 10\n0 1 2 0\n").unwrap();
    let out = weaverc().arg(bad.to_str().unwrap()).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("weaverc: error: parse:"), "{stderr}");
    assert!(stderr.contains("line 2"), "{stderr}");
}

#[test]
fn batch_compiles_the_mixed_frontends_manifest() {
    let manifest = format!("{}/mixed-frontends.manifest", fixtures_dir());
    let out = weaverc()
        .args(["batch", manifest.as_str(), "--jobs", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["uf20-01.cnf", "sample.wcnf", "triangle.mc", "bell.wq"] {
        assert!(stdout.contains(name), "{name} missing from:\n{stdout}");
    }
    assert!(String::from_utf8_lossy(&out.stderr).contains("8/8 succeeded"));
}

#[test]
fn bad_input_fails_cleanly() {
    let out = weaverc().args(["/nonexistent.cnf"]).output().unwrap();
    assert!(!out.status.success());
    let out = weaverc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn failures_emit_one_line_structured_errors() {
    // Missing file → io error, nonzero exit.
    let out = weaverc().args(["/nonexistent.cnf"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("weaverc: error: io:"), "{stderr}");
    // Garbage DIMACS → parse error, nonzero exit.
    let bad = std::env::temp_dir().join("weaverc_smoke_bad.cnf");
    std::fs::write(&bad, "p cnf two three\nnot a clause\n").unwrap();
    let out = weaverc().arg(bad.to_str().unwrap()).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("weaverc: error: parse:"), "{stderr}");
}

fn fixtures_dir() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures").to_string()
}

#[test]
fn batch_compiles_the_fixture_suite_with_check() {
    let out = weaverc()
        .args(["batch", fixtures_dir().as_str(), "--jobs", "2", "--check"])
        .output()
        .expect("run weaverc batch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    // 10 fixture job records (8 .cnf + sample.wcnf + triangle.mc; the
    // circuit fixture bell.wq is manifest-only) + 1 batch summary.
    assert_eq!(lines.len(), 11, "{stdout}");
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"job\"") && l.contains("\"check_passed\":true"))
            .count(),
        10
    );
    let summary = lines.last().unwrap();
    assert!(summary.contains("\"kind\":\"batch\""), "{summary}");
    assert!(summary.contains("\"succeeded\":10"), "{summary}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("10/10 succeeded"));
}

#[test]
fn batch_wqasm_matches_single_shot_output() {
    let dir = std::env::temp_dir().join(format!("weaverc_batch_out_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fixture = format!("{}/uf20-01.cnf", fixtures_dir());
    // Single-shot reference.
    let single = weaverc().args([fixture.as_str()]).output().unwrap();
    assert!(single.status.success());
    // Batch over the suite, artifacts materialized into --out-dir.
    let out = weaverc()
        .args([
            "batch",
            fixtures_dir().as_str(),
            "--jobs",
            "2",
            "--out-dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let from_batch = std::fs::read(dir.join("uf20-01.qasm")).expect("batch artifact");
    assert_eq!(
        from_batch, single.stdout,
        "batch artifact must be byte-identical to the single-shot run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_compiles_a_mixed_target_manifest() {
    // Miniature of tests/fixtures/mixed-targets.manifest (which CI runs
    // with the release binary): one small workload fanned across all three
    // registered targets in a single batch.
    let dir = std::env::temp_dir().join(format!("weaverc_batch_mixed_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("uf10.cnf"),
        weaver::sat::dimacs::to_string(&weaver::sat::generator::instance(10, 1)),
    )
    .unwrap();
    std::fs::write(
        dir.join("suite.manifest"),
        "uf10.cnf check=true\nuf10.cnf target=sc\nuf10.cnf target=simulator\n",
    )
    .unwrap();
    let out = weaverc()
        .args([
            "batch",
            dir.join("suite.manifest").to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for target in ["fpqa", "superconducting", "simulator"] {
        assert!(
            stdout.contains(&format!("\"target\":\"{target}\"")),
            "{stdout}"
        );
    }
    assert!(String::from_utf8_lossy(&out.stderr).contains("3/3 succeeded"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_reports_per_job_failures_and_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("weaverc_batch_bad_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("good.cnf"),
        weaver::sat::dimacs::to_string(&weaver::sat::generator::instance(10, 1)),
    )
    .unwrap();
    std::fs::write(dir.join("broken.cnf"), "p cnf nonsense\n").unwrap();
    let out = weaverc()
        .args(["batch", dir.to_str().unwrap(), "--jobs", "2"])
        .output()
        .unwrap();
    // One job fails → nonzero exit, structured error, but the good job ran.
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"status\":\"error\""), "{stdout}");
    assert!(stdout.contains("\"error_kind\":\"parse\""), "{stdout}");
    assert!(stdout.contains("\"status\":\"ok\""), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("weaverc: error: parse:"), "{stderr}");
    assert!(stderr.contains("1/2 succeeded"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
