//! Smoke test for the `weaverc` CLI: DIMACS in, wQasm out, checker PASS.

use std::process::Command;

fn weaverc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_weaverc"))
}

fn write_cnf() -> String {
    let f = weaver::sat::generator::instance(10, 1);
    let path = std::env::temp_dir().join("weaverc_smoke_uf10.cnf");
    std::fs::write(&path, weaver::sat::dimacs::to_string(&f)).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn compiles_dimacs_to_wqasm_with_check() {
    let cnf = write_cnf();
    let out = weaverc()
        .args([cnf.as_str(), "--target", "fpqa", "--check"])
        .output()
        .expect("run weaverc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OPENQASM"));
    assert!(stdout.contains("@rydberg"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wChecker PASS"), "{stderr}");
    // The emitted program reparses and validates.
    let program = weaver::wqasm::parse(&stdout).expect("reparse CLI output");
    assert!(weaver::wqasm::semantics::validate(&program, &Default::default()).is_empty());
}

#[test]
fn superconducting_target_emits_plain_qasm() {
    let cnf = write_cnf();
    let out = weaverc()
        .args([cnf.as_str(), "--target", "superconducting"])
        .output()
        .expect("run weaverc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let program = weaver::wqasm::parse(&stdout).expect("reparse CLI output");
    assert!(
        program.pulse_count() == 0,
        "no FPQA annotations on the SC path"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("SWAPs"));
}

#[test]
fn bad_input_fails_cleanly() {
    let out = weaverc().args(["/nonexistent.cnf"]).output().unwrap();
    assert!(!out.status.success());
    let out = weaverc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
