//! End-to-end tests for `weaver-engine` batch compilation (ISSUE 3
//! acceptance criteria): batch output identical to sequential single-shot
//! runs, byte-identical wQasm across cold/warm caches and thread counts,
//! identical `Metrics` modulo wall-clock fields, and warm-cache hits.

use proptest::prelude::*;
use std::path::Path;
use weaver::core::{CodegenOptions, FrontendRegistry, Metrics, Weaver};
use weaver::engine::{discover_jobs, CompileJob, Engine, EngineConfig, JobOptions, Target};
use weaver::sat::{generator, qaoa::QaoaParams, Formula};

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_jobs(check: bool) -> Vec<CompileJob> {
    let options = JobOptions {
        check,
        ..JobOptions::default()
    };
    let jobs = discover_jobs(&fixtures_dir(), Target::Fpqa, &options).expect("fixtures");
    assert!(jobs.len() >= 8, "acceptance needs ≥ 8 formula instances");
    jobs
}

fn engine_with(workers: usize) -> Engine {
    Engine::new(EngineConfig {
        jobs: workers,
        ..EngineConfig::default()
    })
}

/// The `Metrics` fields that must be deterministic (everything but the
/// wall-clock `compilation_seconds`).
fn stable_metrics(m: &Metrics) -> (u64, u64, usize, usize, u64) {
    (
        m.execution_micros.to_bits(),
        m.eps.to_bits(),
        m.pulses,
        m.motion_ops,
        m.steps,
    )
}

/// Mirrors one single-shot `weaverc` run: resolve the frontend from the
/// path, parse the file, compile with the default CLI options, print wQasm.
fn single_shot(path: &Path) -> (String, Metrics) {
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let front = FrontendRegistry::global()
        .resolve(None, Some(path), &text)
        .expect("fixture format recognized");
    let workload = front.parse(&text).expect("fixture parses");
    let options = CodegenOptions {
        qaoa: QaoaParams::single(0.7, 0.3),
        measure: true,
        ..CodegenOptions::default()
    };
    let weaver = Weaver::new().with_options(options);
    let output = weaver
        .compile_workload("fpqa", &workload)
        .expect("fixture compiles");
    (output.artifact.print_wqasm(), output.metrics)
}

#[test]
fn batch_matches_sequential_single_shot_runs() {
    let jobs = fixture_jobs(false);
    let paths: Vec<std::path::PathBuf> = jobs
        .iter()
        .map(|j| match &j.source {
            weaver::engine::JobSource::Path(p) => p.clone(),
            other => panic!("expected path source, got {other:?}"),
        })
        .collect();
    let report = engine_with(2).run(jobs);
    assert_eq!(report.succeeded(), paths.len());
    for (result, path) in report.results.iter().zip(&paths) {
        let (expected_qasm, expected_metrics) = single_shot(path);
        let artifact = result.artifact.as_ref().expect("artifact");
        assert_eq!(
            artifact.wqasm,
            expected_qasm,
            "batch wQasm must be byte-identical to the single-shot run for {}",
            path.display()
        );
        assert_eq!(
            stable_metrics(&artifact.metrics),
            stable_metrics(&expected_metrics),
            "metrics must match modulo wall-clock for {}",
            path.display()
        );
    }
}

#[test]
fn cold_warm_and_thread_counts_agree_byte_for_byte() {
    let jobs = fixture_jobs(true);
    let one = engine_with(1);
    let cold_1 = one.run(jobs.clone());
    let warm_1 = one.run(jobs.clone());
    let cold_4 = engine_with(4).run(jobs.clone());
    assert_eq!(cold_1.cache_hits(), 0);
    assert_eq!(warm_1.cache_hits(), jobs.len());
    assert_eq!(cold_4.cache_hits(), 0);
    for ((a, b), c) in cold_1
        .results
        .iter()
        .zip(&warm_1.results)
        .zip(&cold_4.results)
    {
        let (aa, ba, ca) = (
            a.artifact.as_ref().unwrap(),
            b.artifact.as_ref().unwrap(),
            c.artifact.as_ref().unwrap(),
        );
        assert_eq!(aa.wqasm, ba.wqasm, "cold vs warm must be byte-identical");
        assert_eq!(aa.wqasm, ca.wqasm, "1 vs 4 workers must be byte-identical");
        assert_eq!(stable_metrics(&aa.metrics), stable_metrics(&ba.metrics));
        assert_eq!(stable_metrics(&aa.metrics), stable_metrics(&ca.metrics));
        assert_eq!(aa.check_passed, Some(true));
        assert_eq!(ba.check_passed, Some(true));
        assert_eq!(ca.check_passed, Some(true));
    }
    // Warm reruns are served from the artifact cache before the checker is
    // ever reached: the cold run recorded one device trace per job and the
    // warm run added nothing.
    assert_eq!(warm_1.core_stats.checker_misses, jobs.len() as u64);
    assert_eq!(warm_1.core_stats.checker_hits, 0);
}

#[test]
fn warm_cache_throughput_exceeds_cold_5x() {
    // The acceptance bar, measured the same way BENCH_engine.json is.
    let jobs = fixture_jobs(false);
    let engine = engine_with(0);
    let start = std::time::Instant::now();
    let cold = engine.run(jobs.clone());
    let cold_seconds = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let warm = engine.run(jobs.clone());
    let warm_seconds = start.elapsed().as_secs_f64();
    assert_eq!(cold.cache_hits(), 0);
    assert_eq!(warm.cache_hits(), jobs.len());
    let speedup = cold_seconds / warm_seconds.max(1e-9);
    assert!(
        speedup >= 5.0,
        "warm batch must be ≥ 5× cold, got {speedup:.1}× ({cold_seconds:.4}s vs {warm_seconds:.4}s)"
    );
}

#[test]
fn mixed_target_batch_is_deterministic_and_ordered() {
    // ISSUE 4: one manifest mixing all three registered targets must
    // compile in one batch with deterministic submission-order results.
    let formulas: Vec<Formula> = (1..=3).map(|v| generator::instance(10, v)).collect();
    let jobs: Vec<CompileJob> = formulas
        .iter()
        .enumerate()
        .flat_map(|(i, f)| {
            Target::ALL.into_iter().map(move |target| {
                let mut job =
                    CompileJob::from_formula(format!("uf10-{:02}@{target}", i + 1), f.clone());
                job.target = target;
                job
            })
        })
        .collect();
    let submitted: Vec<(String, Target)> =
        jobs.iter().map(|j| (j.name(), j.target.clone())).collect();

    let engine = engine_with(3);
    let cold = engine.run(jobs.clone());
    assert_eq!(cold.succeeded(), jobs.len());
    // Results come back in submission order regardless of worker count.
    let received: Vec<(String, Target)> = cold
        .results
        .iter()
        .map(|r| (r.name.clone(), r.target.clone()))
        .collect();
    assert_eq!(received, submitted);

    for result in &cold.results {
        let artifact = result.artifact.as_ref().expect("artifact");
        match &result.target {
            Target::Fpqa => {
                assert!(artifact.num_colors.is_some());
                assert!(artifact.wqasm.contains("@rydberg"));
            }
            Target::Superconducting => {
                assert!(artifact.swap_count.is_some());
                assert!(!artifact.wqasm.contains("@rydberg"));
            }
            Target::Simulator => {
                assert!(artifact.metrics.eps > 0.0 && artifact.metrics.eps <= 1.0);
                assert_eq!(artifact.metrics.motion_ops, 0);
                assert_eq!(artifact.metrics.execution_micros, 0.0);
            }
            Target::ScDevice(name) => unreachable!("no {name} job was submitted"),
        }
    }

    // A single-worker rerun on a fresh engine agrees byte for byte, and a
    // warm rerun on the same engine hits the cache for every target.
    let sequential = engine_with(1).run(jobs.clone());
    for (a, b) in cold.results.iter().zip(&sequential.results) {
        let (aa, ba) = (a.artifact.as_ref().unwrap(), b.artifact.as_ref().unwrap());
        assert_eq!(aa.wqasm, ba.wqasm, "{}", a.name);
        assert_eq!(stable_metrics(&aa.metrics), stable_metrics(&ba.metrics));
    }
    let warm = engine.run(jobs.clone());
    assert_eq!(warm.cache_hits(), jobs.len());
}

#[test]
fn devices_manifest_batch_covers_the_family() {
    // ISSUE 5 satellite: tests/fixtures/devices.manifest mixes built-in
    // devices, a parameterized grid, an alias, and the simulator.
    let manifest = fixtures_dir().join("devices.manifest");
    let jobs = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).expect("manifest");
    let targets: Vec<&str> = jobs.iter().map(|j| j.target.name()).collect();
    assert_eq!(
        targets,
        vec![
            "sc:eagle",
            "sc:heron",
            "simulator",
            "sc:line",
            "sc:grid:4x5",
            "sc:eagle", // sc:washington canonicalizes
        ]
    );
    let engine = engine_with(2);
    let report = engine.run(jobs.clone());
    assert_eq!(report.succeeded(), jobs.len(), "{:?}", report.results);
    for result in &report.results {
        let artifact = result.artifact.as_ref().unwrap();
        match &result.target {
            Target::ScDevice(_) => assert!(artifact.swap_count.is_some(), "{}", result.name),
            Target::Simulator => assert_eq!(artifact.metrics.motion_ops, 0),
            other => panic!("unexpected target {other} in devices.manifest"),
        }
    }
    // sc:eagle and sc:heron on *different* workloads obviously differ; the
    // key property is that the same workload keys differently per device —
    // uf20-01 on eagle (index 0) vs uf20-01 on eagle again via the
    // sc:washington alias (index 5) must share a key and hit the cache.
    assert_eq!(report.results[0].key, report.results[5].key);
    let warm = engine.run(jobs);
    assert_eq!(warm.cache_hits(), warm.results.len());
}

#[test]
fn jsonl_records_carry_per_pass_timings_for_every_target_family() {
    // ISSUE 5 satellite: `CompileOutput.passes` flows into the engine's
    // JSONL records; pass names match each backend's declared pipeline and
    // durations are non-negative for every target-family member.
    let f = generator::instance(10, 4);
    let mut targets = vec![Target::Fpqa, Target::Superconducting, Target::Simulator];
    targets.extend(Target::builtin_devices());
    targets.push(Target::ScDevice("sc:grid:4x5".to_string()));
    let jobs: Vec<CompileJob> = targets
        .iter()
        .map(|target| {
            let mut job = CompileJob::from_formula(format!("uf10@{target}"), f.clone());
            job.target = target.clone();
            job
        })
        .collect();
    let report = engine_with(2).run(jobs);
    assert_eq!(report.succeeded(), targets.len());
    let registry = weaver::core::BackendRegistry::global();
    for result in &report.results {
        let declared = registry
            .resolve(result.target.name())
            .expect("every batch target resolves")
            .passes();
        let artifact = result.artifact.as_ref().unwrap();
        let ran: Vec<&str> = artifact.passes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(ran, declared, "{}", result.name);
        assert!(
            artifact.passes.iter().all(|p| p.seconds >= 0.0),
            "{}: pass durations must be non-negative",
            result.name
        );
        assert!(
            artifact.passes.iter().any(|p| p.steps > 0),
            "{}: at least one pass reports steps",
            result.name
        );
        // The JSONL record carries the same trace.
        let record = weaver::engine::job_record(result);
        assert!(record.contains("\"passes\":[{\"name\":"), "{record}");
        for name in &declared {
            assert!(record.contains(&format!("\"name\":\"{name}\"")), "{record}");
        }
    }
}

/// A compact random Max-3SAT workload for the determinism property.
fn arb_formula() -> impl Strategy<Value = Formula> {
    (4usize..10, 1usize..500).prop_map(|(vars, variant)| generator::instance(vars, variant))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism property (ISSUE 3 satellite): compiling the same
    /// instance twice — cold vs warm cache, 1 vs N worker threads — yields
    /// byte-identical wQasm and identical `Metrics` modulo wall-clock.
    #[test]
    fn compiling_twice_is_deterministic(formula in arb_formula()) {
        let job = {
            let mut job = CompileJob::from_formula("prop", formula);
            job.options.check = true;
            job
        };
        let sequential = engine_with(1);
        let cold = sequential.run(vec![job.clone()]);
        let warm = sequential.run(vec![job.clone()]);
        let parallel = engine_with(3).run(vec![job.clone(), job.clone(), job]);
        let base = cold.results[0].artifact.as_ref().unwrap();
        prop_assert!(cold.results[0].succeeded());
        prop_assert_eq!(warm.cache_hits(), 1);
        for other in warm.results.iter().chain(&parallel.results) {
            let artifact = other.artifact.as_ref().unwrap();
            prop_assert_eq!(&artifact.wqasm, &base.wqasm);
            prop_assert_eq!(
                stable_metrics(&artifact.metrics),
                stable_metrics(&base.metrics)
            );
            prop_assert_eq!(artifact.check_passed, Some(true));
        }
    }
}
