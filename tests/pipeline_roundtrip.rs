//! Cross-crate integration: formula → QAOA → Weaver FPQA compilation →
//! wQasm print/parse → wChecker → unitary equivalence, end to end.

use weaver::prelude::*;
use weaver::sat::{qaoa, Clause, Formula, Lit};

fn paper_formula() -> Formula {
    // The running example of paper Fig. 5.
    Formula::new(
        6,
        vec![
            Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
            Clause::new(vec![Lit::pos(3), Lit::neg(4), Lit::pos(5)]),
            Clause::new(vec![Lit::pos(2), Lit::pos(4), Lit::neg(5)]),
        ],
    )
}

#[test]
fn fpqa_compile_verify_roundtrip() {
    let formula = paper_formula();
    let weaver = Weaver::new();
    let result = weaver.compile_fpqa(&formula);

    // Printing and reparsing is stable after one round (the parser may
    // legally re-attach standalone setup annotations to the next gate) and
    // passes static semantics.
    let text = weaver::wqasm::print(&result.compiled.program);
    let reparsed = weaver::wqasm::parse(&text).expect("reparse");
    let text2 = weaver::wqasm::print(&reparsed);
    let reparsed2 = weaver::wqasm::parse(&text2).expect("reparse twice");
    assert_eq!(reparsed2, reparsed, "print/parse must be idempotent");
    assert_eq!(
        reparsed.pulse_count(),
        result.compiled.program.pulse_count()
    );
    assert_eq!(
        reparsed.motion_count(),
        result.compiled.program.motion_count()
    );
    assert!(weaver::wqasm::semantics::validate(&reparsed, &Default::default()).is_empty());

    // wChecker accepts the reparsed text program too.
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    let report = weaver::core::checker::check(&reparsed, &FpqaParams::default(), Some(&reference));
    assert!(report.passed(), "{:?}", report.errors);
    assert!(report.unitary_checked);
}

#[test]
fn logical_circuit_equals_qaoa_reference() {
    let formula = paper_formula();
    let weaver = Weaver::new();
    let result = weaver.compile_fpqa(&formula);
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    // Drop measurements for the unitary comparison.
    let logical = &result.compiled.logical;
    let e = weaver::simulator::equiv::compare(&logical.unitary(), &reference.unitary(), 1e-8);
    assert!(e.is_equivalent(), "{e:?}");
}

#[test]
fn retargeting_both_paths_same_workload() {
    let formula = generator::instance(20, 5);
    let weaver = Weaver::new();
    let fpqa = weaver.compile_fpqa(&formula);
    let sc = weaver.compile_superconducting(&formula, &CouplingMap::ibm_washington());
    // Paper headline directions at 20 variables.
    assert!(fpqa.metrics.eps > sc.metrics.eps, "FPQA fidelity advantage");
    assert!(
        sc.metrics.execution_micros < fpqa.metrics.execution_micros,
        "superconducting gates are faster"
    );
    assert!(weaver.verify(&fpqa, &formula).passed());
}

#[test]
fn all_uf20_variants_compile_and_check() {
    let weaver = Weaver::new();
    for variant in 1..=10 {
        let formula = generator::instance(20, variant);
        let result = weaver.compile_fpqa(&formula);
        let report = weaver.verify(&result, &formula);
        assert!(
            report.passed(),
            "uf20-{variant:02} failed: {:?}",
            report.errors
        );
        assert!(result.metrics.eps > 0.0);
    }
}

#[test]
fn larger_sizes_compile_without_check_reference() {
    let weaver = Weaver::new();
    for &size in &[50usize, 75] {
        let formula = generator::instance(size, 1);
        let result = weaver.compile_fpqa(&formula);
        // Pulse/motion-level verification still runs (no unitary at 50+).
        let report = weaver.verify(&result, &formula);
        assert!(report.passed(), "size {size}: {:?}", report.errors);
        assert!(!report.unitary_checked);
    }
}

#[test]
fn ablation_directions_hold() {
    let formula = generator::instance(20, 1);
    let base = Weaver::new().compile_fpqa(&formula);

    // Sequential shuttles cost execution time.
    let seq = Weaver::new()
        .with_options(CodegenOptions {
            parallel_shuttling: false,
            ..CodegenOptions::default()
        })
        .compile_fpqa(&formula);
    assert!(seq.metrics.execution_micros > base.metrics.execution_micros);

    // First-fit coloring never uses fewer colors than DSatur.
    let greedy = Weaver::new()
        .with_options(CodegenOptions {
            dsatur: false,
            ..CodegenOptions::default()
        })
        .compile_fpqa(&formula);
    assert!(greedy.compiled.coloring.num_colors >= base.compiled.coloring.num_colors);

    // Disabling compression removes all CCZ pulses.
    let ladder = Weaver::new()
        .with_options(CodegenOptions {
            compression: false,
            ..CodegenOptions::default()
        })
        .compile_fpqa(&formula);
    let has_ccz =
        ladder.compiled.schedule.ops().iter().any(
            |o| matches!(o, PulseOp::Rydberg { groups } if groups.iter().any(|g| g.len() == 3)),
        );
    assert!(!has_ccz);
}
