//! Concurrency properties of the artifact cache's paged disk tier.
//!
//! Property: N threads hammering `put`/`lookup` — both same-key and
//! distinct-key — never observe a torn or cross-keyed artifact, and the
//! final store passes a full checksum scan. Artifacts are self-validating:
//! the wQasm body encodes its (tag, version) identity and the whole
//! artifact is a deterministic function of it, so any mixed, torn, or
//! stale-beyond-written value fails regeneration.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use weaver::core::cache::{Digest, Fingerprint};
use weaver::core::Metrics;
use weaver::engine::cache::DiskFormat;
use weaver::engine::store::StoreTuning;
use weaver::engine::{ArtifactCache, CacheConfig, CacheOutcome, PassTiming};

type Artifact = weaver::engine::Artifact;

fn key(tag: u64) -> Digest {
    let mut fp = Fingerprint::new();
    fp.u64(0xCAFE);
    fp.u64(tag);
    fp.digest()
}

/// The one true artifact for (tag, version): identity in the first wQasm
/// line, deterministic filler sized to span multiple store pages.
fn sample(tag: u64, version: u64) -> Artifact {
    let mut rng = StdRng::seed_from_u64(tag.rotate_left(32) ^ version);
    let mut wqasm = format!("// tag {tag} version {version}\n");
    for _ in 0..rng.gen_range(0usize..40) {
        wqasm.push_str(&format!("// filler {:016x}\n", rng.next_u64()));
    }
    Artifact {
        wqasm,
        metrics: Metrics {
            compilation_seconds: tag as f64 * 0.5,
            execution_micros: version as f64,
            eps: 0.25,
            pulses: tag as usize + 1,
            motion_ops: (version % 7) as usize,
            steps: version,
        },
        passes: vec![PassTiming {
            name: "synthetic".to_string(),
            seconds: 0.125,
            steps: version,
        }],
        swap_count: None,
        num_colors: Some((tag % 5) as usize + 1),
        check_passed: None,
        check_errors: Vec::new(),
    }
}

/// Decodes the identity line; `None` for anything malformed.
fn identity(artifact: &Artifact) -> Option<(u64, u64)> {
    let line = artifact.wqasm.lines().next()?;
    let rest = line.strip_prefix("// tag ")?;
    let (tag, version) = rest.split_once(" version ")?;
    Some((tag.parse().ok()?, version.parse().ok()?))
}

/// Asserts an observed artifact is exactly some committed (tag, version)
/// value for the key it was looked up under.
fn check_observed(tag: u64, artifact: &Artifact, max_version: u64) {
    let (t, v) = identity(artifact).expect("artifact carries its identity");
    assert_eq!(t, tag, "cross-keyed artifact observed");
    assert!(
        v <= max_version,
        "version {v} was never written for tag {tag}"
    );
    assert_eq!(
        *artifact,
        sample(t, v),
        "torn artifact observed for tag {tag} version {v}"
    );
}

fn open_cache(dir: &std::path::Path) -> ArtifactCache {
    ArtifactCache::new(CacheConfig {
        // A tiny memory tier forces most lookups through to disk.
        memory_capacity: 2,
        disk_dir: Some(dir.to_path_buf()),
        disk_format: DiskFormat::Paged,
        store: StoreTuning {
            page_size: 256,
            buffer_pages: 8,
            wal_checkpoint_bytes: 8192,
            fault: None,
        },
    })
    .expect("open paged cache")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn hammering_threads_never_observe_torn_artifacts(
        seed in 0u64..1_000_000_000,
        threads in 2usize..=4,
        ops in 8usize..=24,
        tags in 1u64..=3,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "weaver-store-conc-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = open_cache(&dir);
        // One global version counter per tag: versions are unique, and the
        // high-water mark bounds what a reader may legitimately see.
        let version_counter: Vec<AtomicU64> = (0..=tags).map(|_| AtomicU64::new(0)).collect();

        std::thread::scope(|scope| {
            for thread in 0..threads {
                let cache = &cache;
                let version_counter = &version_counter;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ thread as u64);
                    for _ in 0..ops {
                        // Tag 0 is hammered by every thread (same-key
                        // contention); the rest spread out (distinct keys).
                        let tag = if rng.gen_bool(0.4) {
                            0
                        } else {
                            rng.gen_range(0..=tags)
                        };
                        if rng.gen_bool(0.6) {
                            let version = version_counter[tag as usize]
                                .fetch_add(1, Ordering::SeqCst) + 1;
                            cache.store(key(tag), Arc::new(sample(tag, version)));
                        } else if let Some((artifact, _)) = cache.lookup(&key(tag)) {
                            let max = version_counter[tag as usize].load(Ordering::SeqCst);
                            check_observed(tag, &artifact, max);
                        }
                    }
                });
            }
        });

        // The final store passes a full checksum scan...
        let scan = cache.verify_disk().expect("paged tier present");
        prop_assert!(scan.consistent(), "final checksum scan found damage");
        prop_assert_eq!(cache.stats().disk_write_errors, 0);
        drop(cache);

        // ...and a fresh open (cold memory) still serves only intact,
        // correctly-keyed values.
        let reopened = open_cache(&dir);
        for tag in 0..=tags {
            let max = version_counter[tag as usize].load(Ordering::SeqCst);
            if let Some((artifact, outcome)) = reopened.lookup(&key(tag)) {
                assert_eq!(outcome, CacheOutcome::DiskHit);
                check_observed(tag, &artifact, max);
            }
        }
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
