//! Differential suite for the clause-coloring overhaul: the deduplicated
//! CSR conflict graph must describe exactly the edge set of the reference
//! adjacency-list construction, and the heap-based DSatur must stay a valid
//! coloring that never uses more colors than the reference argmax
//! implementation (on this codebase it is identical, which the unit tests
//! in `weaver-core` already pin; here we assert the contract).

use proptest::prelude::*;
use std::collections::BTreeSet;
use weaver::core::coloring::{
    conflict_graph, conflict_graph_reference, dsatur, dsatur_reference, is_valid_coloring,
};
use weaver::sat::{generator, Clause, Formula, Lit};

/// Undirected edge set of the CSR graph.
fn csr_edges(g: &weaver::core::coloring::ConflictGraph) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    for v in 0..g.len() {
        for &u in g.neighbors(v) {
            edges.insert((v.min(u), v.max(u)));
        }
    }
    edges
}

/// Undirected edge set of the reference adjacency lists.
fn reference_edges(adjacency: &[Vec<usize>]) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    for (v, row) in adjacency.iter().enumerate() {
        for &u in row {
            edges.insert((v.min(u), v.max(u)));
        }
    }
    edges
}

fn arb_clause(num_vars: usize) -> impl Strategy<Value = Clause> {
    prop::collection::hash_set(0..num_vars, 1..=3.min(num_vars)).prop_flat_map(|vars| {
        let vars: Vec<usize> = vars.into_iter().collect();
        prop::collection::vec(any::<bool>(), vars.len()).prop_map(move |signs| {
            Clause::new(
                vars.iter()
                    .zip(&signs)
                    .map(|(&v, &neg)| if neg { Lit::neg(v) } else { Lit::pos(v) })
                    .collect(),
            )
        })
    })
}

fn arb_formula(num_vars: usize, max_clauses: usize) -> impl Strategy<Value = Formula> {
    prop::collection::vec(arb_clause(num_vars), 1..max_clauses)
        .prop_map(move |clauses| Formula::new(num_vars, clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR adjacency ≡ reference adjacency as undirected edge sets, with
    /// sorted, duplicate-free rows.
    #[test]
    fn csr_graph_matches_reference_edge_set(f in arb_formula(12, 30)) {
        let csr = conflict_graph(&f);
        let reference = conflict_graph_reference(&f);
        prop_assert_eq!(csr.len(), reference.len());
        prop_assert_eq!(csr_edges(&csr), reference_edges(&reference));
        for v in 0..csr.len() {
            let row = csr.neighbors(v);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]),
                "row {} must be sorted and deduplicated", v);
            prop_assert_eq!(row.len(), csr.degree(v));
        }
    }

    /// Heap DSatur stays valid and never spends more colors than the
    /// reference implementation.
    #[test]
    fn heap_dsatur_is_valid_and_no_worse(f in arb_formula(12, 30)) {
        let csr = conflict_graph(&f);
        let fast = dsatur(&csr);
        let slow = dsatur_reference(&conflict_graph_reference(&f));
        prop_assert!(is_valid_coloring(&csr, &fast));
        prop_assert!(fast.num_colors <= slow.num_colors,
            "heap DSatur used {} colors, reference {}", fast.num_colors, slow.num_colors);
        // Precomputed color groups partition the clause set.
        let mut seen = vec![false; f.clauses().len()];
        for group in fast.groups() {
            for &ci in group {
                prop_assert!(!seen[ci], "clause {} appears in two groups", ci);
                seen[ci] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

/// The SATLIB-style generator instances — the actual benchmark inputs —
/// color identically under both implementations at several sizes.
#[test]
fn generator_instances_color_identically() {
    for (size, variant) in [(20, 1), (20, 5), (50, 1), (75, 3)] {
        let f = generator::instance(size, variant);
        let fast = dsatur(&conflict_graph(&f));
        let slow = dsatur_reference(&conflict_graph_reference(&f));
        assert_eq!(
            fast.colors, slow.colors,
            "uf{size}-{variant:02}: per-clause colors diverged"
        );
        assert_eq!(fast.num_colors, slow.num_colors);
    }
}
