//! Conformance tests for the `weaver-obs` observability layer (ISSUE 8
//! acceptance criteria): span nesting across the work-stealing pool with
//! worker-thread attribution, Chrome-trace export shape (validated with a
//! hand-written mini JSON parser — no serde in this workspace), metrics
//! snapshot round-trips, disabled-tracing overhead, and a differential
//! test proving tracing does not change artifact bytes.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use weaver::engine::{CompileJob, Engine, EngineConfig};
use weaver::obs::{metrics, span};
use weaver::sat::generator;

/// The span collector and the enabled flag are process-global, and the
/// test harness runs tests on parallel threads — every test that toggles
/// tracing or drains the collector serializes on this lock (and tolerates
/// a poisoned lock from an earlier failed test).
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn batch(prefix: &str, n: usize) -> Vec<CompileJob> {
    (1..=n)
        .map(|v| CompileJob::from_formula(format!("{prefix}-{v:02}"), generator::instance(10, v)))
        .collect()
}

fn engine(workers: usize, use_cache: bool) -> Engine {
    Engine::new(EngineConfig {
        jobs: workers,
        use_cache,
        ..EngineConfig::default()
    })
}

// ---------------------------------------------------------------------------
// Span nesting + worker-thread attribution across the pool
// ---------------------------------------------------------------------------

#[test]
fn pass_spans_nest_under_job_spans_with_worker_attribution() {
    let _guard = obs_lock();
    span::set_enabled(true);
    let _ = span::take(); // drop residue from other tests
    let report = engine(2, false).run(batch("obsconf-nest", 8));
    span::set_enabled(false);
    let trace = span::take();
    assert_eq!(report.succeeded(), 8);

    let jobs: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.cat == "job" && s.name.starts_with("obsconf-nest"))
        .collect();
    assert_eq!(jobs.len(), 8, "one job span per submitted job");
    let job_ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();

    // Every per-pass span recorded during this batch is a child of one of
    // its job spans (same worker thread, opened while the job span was on
    // the thread-local stack).
    let passes: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.cat == "pass" && job_ids.contains(&s.parent))
        .collect();
    assert!(
        passes.len() >= 8,
        "expected at least one nested pass span per job, got {}",
        passes.len()
    );
    for p in &passes {
        let job = jobs.iter().find(|j| j.id == p.parent).unwrap();
        assert_eq!(p.tid, job.tid, "a pass runs on its job's worker thread");
        assert!(p.start_us >= job.start_us, "child starts inside the parent");
    }

    // Thread attribution: the job spans name at least one pool worker.
    let names: BTreeMap<u64, &str> = trace
        .threads
        .iter()
        .map(|(tid, name)| (*tid, name.as_str()))
        .collect();
    let worker_jobs = jobs
        .iter()
        .filter(|j| {
            names
                .get(&j.tid)
                .is_some_and(|n| n.starts_with("weaver-worker-"))
        })
        .count();
    assert!(
        worker_jobs >= 1,
        "job spans must be attributed to named pool workers, threads: {:?}",
        trace.threads
    );
}

// ---------------------------------------------------------------------------
// Chrome trace export shape (mini JSON parser, no serde)
// ---------------------------------------------------------------------------

/// A minimal JSON value for validating the Chrome export.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Hand-written recursive-descent JSON parser — enough to validate the
/// trace export without pulling a serde dependency into the workspace.
fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("non-string key {other:?}")),
                };
                expect(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                                    .map_err(|e| e.to_string())?;
                                let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                                out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                                *pos += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Multi-byte UTF-8 passes through untouched.
                        let len = match c {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        out.push_str(
                            std::str::from_utf8(&b[*pos..*pos + len]).map_err(|e| e.to_string())?,
                        );
                        *pos += len;
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        None => Err("empty input".into()),
    }
}

#[test]
fn chrome_trace_is_valid_json_with_required_event_fields() {
    let _guard = obs_lock();
    span::set_enabled(true);
    let _ = span::take();
    {
        let _outer = span::span("obsconf-chrome", "outer \"quoted\" name");
        let _inner = span::span("obsconf-chrome", "inner").with_arg("k", 42);
    }
    span::set_enabled(false);
    let trace = span::take();
    let doc = parse_json(&trace.chrome_json()).expect("chrome export parses as JSON");

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("top-level traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("cat").and_then(Json::as_str) == Some("obsconf-chrome")
        })
        .collect();
    assert_eq!(complete.len(), 2, "both spans exported as complete events");
    for event in &complete {
        assert!(event.get("ts").and_then(Json::as_num).is_some(), "ts");
        assert!(event.get("dur").and_then(Json::as_num).is_some(), "dur");
        assert!(event.get("tid").and_then(Json::as_num).is_some(), "tid");
        assert!(event.get("pid").and_then(Json::as_num).is_some(), "pid");
        assert!(event.get("name").and_then(Json::as_str).is_some(), "name");
    }
    let outer = complete
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("outer \"quoted\" name"))
        .expect("escaped name round-trips through the export");
    let inner = complete
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("inner"))
        .expect("inner event");
    assert_eq!(
        inner
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(Json::as_str),
        outer
            .get("id")
            .and_then(Json::as_num)
            .map(|id| id.to_string())
            .as_deref(),
        "args.parent links the child to its parent span id"
    );
    assert_eq!(
        inner
            .get("args")
            .and_then(|a| a.get("k"))
            .and_then(Json::as_str),
        Some("42")
    );
    // Metadata events name the process and at least one thread.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Json::as_str) == Some("M")
            && e.get("name").and_then(Json::as_str) == Some("process_name")
    }));
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Json::as_str) == Some("M")
            && e.get("name").and_then(Json::as_str) == Some("thread_name")
    }));
}

#[test]
fn jsonl_export_is_one_json_object_per_line() {
    let _guard = obs_lock();
    span::set_enabled(true);
    let _ = span::take();
    {
        let _a = span::span("obsconf-jsonl", "alpha");
    }
    {
        let _b = span::span("obsconf-jsonl", "beta");
    }
    span::set_enabled(false);
    let trace = span::take();
    let mut seen = 0;
    for line in trace.to_jsonl().lines() {
        let obj = parse_json(line).expect("every JSONL line parses");
        if obj.get("cat").and_then(Json::as_str) == Some("obsconf-jsonl") {
            assert!(obj.get("start_us").and_then(Json::as_num).is_some());
            assert!(obj.get("dur_us").and_then(Json::as_num).is_some());
            seen += 1;
        }
    }
    assert_eq!(seen, 2);
}

// ---------------------------------------------------------------------------
// Metrics snapshot round-trip
// ---------------------------------------------------------------------------

#[test]
fn metrics_snapshot_round_trips_through_the_text_format() {
    let counter = metrics::counter_with(
        "obsconf_roundtrip_total",
        "conformance-test counter",
        &[("kind", "demo")],
    );
    counter.add(7);
    let gauge = metrics::gauge("obsconf_roundtrip_gauge", "conformance-test gauge");
    gauge.set(2.5);
    let hist = metrics::histogram_with(
        "obsconf_roundtrip_seconds",
        "conformance-test histogram",
        &[],
        &[0.1, 1.0],
    );
    hist.observe(0.05);
    hist.observe(0.5);
    hist.observe(5.0);

    let text = metrics::snapshot();
    let parsed = metrics::parse_snapshot(&text);
    assert_eq!(
        parsed.get("obsconf_roundtrip_total{kind=\"demo\"}"),
        Some(&7.0)
    );
    assert_eq!(parsed.get("obsconf_roundtrip_gauge"), Some(&2.5));
    // Histogram expands to cumulative buckets plus _sum and _count.
    assert_eq!(
        parsed.get("obsconf_roundtrip_seconds_bucket{le=\"0.1\"}"),
        Some(&1.0)
    );
    assert_eq!(
        parsed.get("obsconf_roundtrip_seconds_bucket{le=\"1\"}"),
        Some(&2.0)
    );
    assert_eq!(
        parsed.get("obsconf_roundtrip_seconds_bucket{le=\"+Inf\"}"),
        Some(&3.0)
    );
    assert_eq!(parsed.get("obsconf_roundtrip_seconds_count"), Some(&3.0));
    let sum = parsed
        .get("obsconf_roundtrip_seconds_sum")
        .copied()
        .unwrap();
    assert!((sum - 5.55).abs() < 1e-9);
    // The exposition text itself is well-formed: HELP/TYPE precede the
    // series of each family exactly once.
    assert_eq!(text.matches("# TYPE obsconf_roundtrip_seconds ").count(), 1);
}

// ---------------------------------------------------------------------------
// Disabled-tracing overhead
// ---------------------------------------------------------------------------

#[test]
fn disabled_tracing_costs_nothing_measurable() {
    let _guard = obs_lock();
    span::set_enabled(false);

    // Micro: a disabled span() is one relaxed atomic load; even on a
    // loaded CI box 200k calls stay far under 100 ms.
    let start = std::time::Instant::now();
    for _ in 0..200_000 {
        let _s = span::span("obsconf-noise", "disabled");
    }
    let per_call = start.elapsed().as_secs_f64() / 200_000.0;
    assert!(
        per_call < 5e-7,
        "disabled span() took {per_call:.2e} s/call — instrumentation is no longer free"
    );

    // Macro: two identical 8-fixture batches with tracing disabled (cache
    // off, so both compile everything) agree within noise — a generous
    // bound, but it catches instrumentation accidentally doing per-pass
    // work while disabled.
    let e = engine(2, false);
    let warmup = e.run(batch("obsconf-noise-w", 8));
    assert_eq!(warmup.succeeded(), 8);
    let a = e.run(batch("obsconf-noise-a", 8)).wall_seconds;
    let b = e.run(batch("obsconf-noise-b", 8)).wall_seconds;
    let ratio = a.max(b) / a.min(b).max(1e-9);
    assert!(
        ratio < 10.0,
        "disabled-tracing batch times diverge beyond noise: {a:.4}s vs {b:.4}s"
    );
}

// ---------------------------------------------------------------------------
// Differential: tracing does not change artifact bytes
// ---------------------------------------------------------------------------

#[test]
fn tracing_does_not_change_artifact_bytes() {
    let _guard = obs_lock();

    let wqasm_of = |report: &weaver::engine::BatchReport| -> Vec<String> {
        report
            .results
            .iter()
            .map(|r| r.artifact.as_ref().expect("job succeeds").wqasm.clone())
            .collect()
    };

    span::set_enabled(false);
    let plain = engine(2, false).run(batch("obsconf-diff", 6));
    span::set_enabled(true);
    let _ = span::take();
    let traced = engine(2, false).run(batch("obsconf-diff", 6));
    span::set_enabled(false);
    let trace = span::take();

    assert_eq!(plain.succeeded(), 6);
    assert_eq!(traced.succeeded(), 6);
    assert!(
        trace.spans.iter().any(|s| s.cat == "pass"),
        "the traced run actually recorded spans"
    );
    assert_eq!(
        wqasm_of(&plain),
        wqasm_of(&traced),
        "artifact bytes are identical with and without tracing"
    );
}
