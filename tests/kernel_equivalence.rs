//! Differential property tests for the simulator's specialized kernels.
//!
//! `State::apply` dispatches 1q/2q/(multi-)controlled gates to closed-form
//! stride kernels; these properties assert that every dispatch decision
//! agrees with the seed's generic matrix path (`State::apply_reference`) on
//! random gates, targets, and register sizes, that norms survive, and that
//! the contiguous `UnitaryBuilder` matches per-column simulation.

use proptest::prelude::*;
use proptest::strategy::OneOf;
use weaver::simulator::{gates, Complex, Matrix, State, UnitaryBuilder};

const TOL: f64 = 1e-9;

fn max_amp_diff(a: &State, b: &State) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

/// A random normalized state on `n` qubits.
fn arb_state(n: usize) -> impl Strategy<Value = State> {
    prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1usize << n).prop_map(|parts| {
        let mut amps: Vec<Complex> = parts
            .into_iter()
            .map(|(re, im)| Complex::new(re, im))
            .collect();
        let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let scale = if norm > 1e-9 { 1.0 / norm } else { 1.0 };
        for a in &mut amps {
            *a = a.scale(scale);
        }
        if norm <= 1e-9 {
            amps[0] = Complex::ONE; // astronomically unlikely all-zero draw
        }
        State::from_amplitudes(amps)
    })
}

/// A dense 2-qubit unitary with no controlled structure.
fn dense_2q(angles: [f64; 6]) -> Matrix {
    let pre = gates::u3(angles[0], angles[1], 0.3).kron(&gates::u3(angles[2], -0.2, 0.7));
    let post = gates::u3(angles[3], 0.1, angles[4]).kron(&gates::u3(angles[5], 0.5, -1.1));
    post.matmul(&gates::cx()).matmul(&pre)
}

/// A random gate applicable to an `n`-qubit register, together with its
/// targets: arbitrary-angle 1q gates, controlled and dense 2q gates, 3q
/// controlled/dense gates, and a 4-qubit `CⁿZ` — every kernel dispatch arm.
fn arb_gate(n: usize) -> BoxedStrategy<(Matrix, Vec<usize>)> {
    let angle = || -3.2f64..3.2;
    let mut arms: Vec<BoxedStrategy<(Matrix, Vec<usize>)>> =
        vec![(0..n, (angle(), angle(), angle()))
            .prop_map(|(q, (t, p, l))| (gates::u3(t, p, l), vec![q]))
            .boxed()];
    if n >= 2 {
        let pair =
            || (0..n, 0..n).prop_filter_map("distinct qubits", |(a, b)| (a != b).then_some((a, b)));
        arms.push(
            (pair(), angle())
                .prop_map(|((a, b), t)| (gates::crz(t), vec![a, b]))
                .boxed(),
        );
        arms.push(pair().prop_map(|(a, b)| (gates::cx(), vec![a, b])).boxed());
        arms.push(
            (
                pair(),
                (angle(), angle(), angle()),
                (angle(), angle(), angle()),
            )
                .prop_map(|((a, b), (t0, t1, t2), (t3, t4, t5))| {
                    (dense_2q([t0, t1, t2, t3, t4, t5]), vec![a, b])
                })
                .boxed(),
        );
    }
    if n >= 3 {
        let triple = || {
            (0..n, 0..n, 0..n).prop_filter_map("distinct qubits", |(a, b, c)| {
                (a != b && b != c && a != c).then_some(vec![a, b, c])
            })
        };
        arms.push(triple().prop_map(|qs| (gates::ccz(), qs)).boxed());
        arms.push(triple().prop_map(|qs| (gates::ccx(), qs)).boxed());
        // Dense 3-qubit gate: exercises the generic fallback.
        arms.push(
            (triple(), angle())
                .prop_map(|(qs, t)| {
                    let wall = gates::rx(t).kron(&gates::h()).kron(&gates::ry(0.4));
                    (wall.matmul(&gates::ccx()), qs)
                })
                .boxed(),
        );
    }
    if n >= 4 {
        arms.push(
            (0..n, 0..n, 0..n, 0..n)
                .prop_filter_map("distinct qubits", |(a, b, c, d)| {
                    let qs = vec![a, b, c, d];
                    let mut sorted = qs.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    (sorted.len() == 4).then_some(qs)
                })
                .prop_map(|qs| (gates::cnz(3), qs))
                .boxed(),
        );
    }
    OneOf::new(arms).boxed()
}

/// A register size, a random state on it, and a random gate sequence.
fn arb_case(
    max_qubits: usize,
    max_gates: usize,
) -> impl Strategy<Value = (State, Vec<(Matrix, Vec<usize>)>)> {
    (1usize..=max_qubits).prop_flat_map(move |n| {
        (
            arb_state(n),
            prop::collection::vec(arb_gate(n), 1..max_gates),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_agree_with_generic_matrix_path(case in arb_case(7, 8)) {
        let (state, ops) = case;
        let mut fast = state.clone();
        let mut slow = state;
        for (gate, targets) in &ops {
            fast.apply(gate, targets);
            slow.apply_reference(gate, targets);
            let d = max_amp_diff(&fast, &slow);
            prop_assert!(d <= TOL, "kernel diverged from reference by {d}");
        }
    }

    #[test]
    fn kernels_preserve_norm(case in arb_case(7, 8)) {
        let (state, ops) = case;
        let mut s = state;
        for (gate, targets) in &ops {
            s.apply(gate, targets);
        }
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-8, "norm drifted to {}", s.norm_sqr());
    }

    #[test]
    fn unitary_builder_matches_per_column_reference(case in arb_case(5, 6)) {
        let (state, ops) = case;
        let n = state.num_qubits();
        let mut b = UnitaryBuilder::new(n);
        for (gate, targets) in &ops {
            b.apply(gate, targets);
        }
        let u = b.finish();
        prop_assert!(u.is_unitary(1e-8));
        for j in 0..1usize << n {
            let mut col = State::basis(n, j);
            for (gate, targets) in &ops {
                col.apply_reference(gate, targets);
            }
            for (i, &amp) in col.amplitudes().iter().enumerate() {
                prop_assert!(
                    u[(i, j)].approx_eq(amp, TOL),
                    "column {j} row {i}: {} vs {amp}",
                    u[(i, j)]
                );
            }
        }
    }
}

/// Crossing the scoped-thread size threshold must not change results: a
/// 16-qubit register (2¹⁶ amplitudes) runs the chunked dispatch path.
#[test]
fn threshold_register_full_dispatch_matches_reference() {
    let n = 16;
    let mut fast = State::zero(n);
    let mut slow = State::zero(n);
    let ops: Vec<(Matrix, Vec<usize>)> = vec![
        (gates::h(), vec![0]),
        (gates::h(), vec![8]),
        (gates::h(), vec![15]),
        (gates::u3(0.3, 1.0, -0.5), vec![4]),
        (dense_2q([0.1, 0.2, 0.3, 0.4, 0.5, 0.6]), vec![2, 12]),
        (gates::cx(), vec![0, 15]),
        (gates::ccz(), vec![1, 8, 14]),
    ];
    for (gate, targets) in &ops {
        fast.apply(gate, targets);
        slow.apply_reference(gate, targets);
    }
    let d = max_amp_diff(&fast, &slow);
    assert!(d <= TOL, "kernel diverged from reference by {d}");
    assert!((fast.norm_sqr() - 1.0).abs() < 1e-10);
}
