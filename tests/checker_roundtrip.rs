//! The wChecker workflow of paper Fig. 9, plus randomized fault injection:
//! every mutation of a valid program must either be caught by the checker
//! or be semantically harmless (which the unitary check decides).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use weaver::core::checker;
use weaver::prelude::*;
use weaver::sat::{qaoa, Formula};
use weaver::wqasm::{Annotation, Statement};

fn compile_small(variant: usize) -> (Formula, weaver::core::FpqaResult) {
    // 8 variables keeps the full unitary check in play.
    let formula = weaver::sat::generator::instance(8, variant);
    let weaver = Weaver::new();
    let result = weaver.compile_fpqa(&formula);
    (formula, result)
}

#[test]
fn fig9_style_reconstruction() {
    let (formula, result) = compile_small(1);
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    let report = checker::check(
        &result.compiled.program,
        &FpqaParams::default(),
        Some(&reference),
    );
    assert!(report.passed(), "{:?}", report.errors);

    // Pulse-to-gate output contains the CZ/CCZ gates the Rydberg pulses
    // implement, reconstructed purely from simulated atom positions.
    let reconstructed = report.reconstructed.expect("reconstruction");
    let ccz_count = reconstructed
        .instructions()
        .filter(|i| i.gate == weaver::circuit::Gate::Ccz)
        .count();
    let three_lit_clauses = formula
        .clauses()
        .iter()
        .filter(|c| c.lits().len() == 3)
        .count();
    assert_eq!(
        ccz_count,
        2 * three_lit_clauses,
        "two CCZ per 3-literal clause (the compression gadget)"
    );
}

#[test]
fn random_angle_perturbations_are_caught() {
    let (formula, result) = compile_small(2);
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    let mut rng = StdRng::seed_from_u64(11);
    let mut caught = 0;
    let mut attempts = 0;
    for _ in 0..12 {
        let mut program = result.compiled.program.clone();
        // Pick a random raman-local annotation and perturb one angle.
        let mut raman_positions = Vec::new();
        for (si, stmt) in program.statements.iter().enumerate() {
            if let Statement::GateCall { annotations, .. } = stmt {
                for (ai, a) in annotations.iter().enumerate() {
                    if matches!(a, Annotation::RamanLocal { .. }) {
                        raman_positions.push((si, ai));
                    }
                }
            }
        }
        if raman_positions.is_empty() {
            break;
        }
        let (si, ai) = raman_positions[rng.gen_range(0..raman_positions.len())];
        let delta = rng.gen_range(0.2..1.0_f64) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        if let Statement::GateCall { annotations, .. } = &mut program.statements[si] {
            if let Annotation::RamanLocal { x, .. } = &mut annotations[ai] {
                *x += delta;
            }
        }
        attempts += 1;
        let report = checker::check(&program, &FpqaParams::default(), Some(&reference));
        if !report.passed() {
            caught += 1;
        }
    }
    assert!(attempts > 0);
    assert_eq!(
        caught, attempts,
        "every angle perturbation ≥ 0.2 rad must be caught"
    );
}

#[test]
fn transfer_index_corruption_is_caught() {
    let (formula, result) = compile_small(3);
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    let mut program = result.compiled.program.clone();
    let mut corrupted = false;
    for stmt in &mut program.statements {
        if let Statement::GateCall { annotations, .. } = stmt {
            for a in annotations {
                if let Annotation::Transfer { slm_index, .. } = a {
                    *slm_index += 1; // wrong trap
                    corrupted = true;
                    break;
                }
            }
        }
        if corrupted {
            break;
        }
    }
    assert!(corrupted);
    let report = checker::check(&program, &FpqaParams::default(), Some(&reference));
    assert!(!report.passed());
}

#[test]
fn swapped_rydberg_operands_still_pass() {
    // CZ/CCZ are symmetric: permuting operand order in the *statement* must
    // NOT trip the checker (sets are compared, not sequences).
    let (formula, result) = compile_small(4);
    let reference = qaoa::build_circuit(&formula, &QaoaParams::default(), false);
    let mut program = result.compiled.program.clone();
    for stmt in &mut program.statements {
        if let Statement::GateCall { name, qubits, .. } = stmt {
            if (name == "cz" || name == "ccz") && qubits.len() >= 2 {
                qubits.reverse();
            }
        }
    }
    let report = checker::check(&program, &FpqaParams::default(), Some(&reference));
    assert!(report.passed(), "{:?}", report.errors);
}

#[test]
fn checker_complexity_matches_program_size() {
    // §6: O(N²·M) — more clauses means proportionally more checks, and the
    // checker must stay fast enough to run on every compilation.
    let weaver = Weaver::new();
    let f_small = weaver::sat::generator::instance(8, 1);
    let f_large = weaver::sat::generator::instance(20, 1);
    let small = weaver.compile_fpqa(&f_small);
    let large = weaver.compile_fpqa(&f_large);
    let r_small = checker::check(&small.compiled.program, &FpqaParams::default(), None);
    let r_large = checker::check(&large.compiled.program, &FpqaParams::default(), None);
    assert!(r_small.passed() && r_large.passed());
    assert!(r_large.pulses_checked > r_small.pulses_checked);
    assert!(r_large.motions_checked > r_small.motions_checked);
}
