//! Device-family conformance suite (ISSUE 5 acceptance criteria).
//!
//! The `sc:*` family turns retargetability into an open-ended axis, so the
//! tests here are generic over *every* registered device (plus arbitrary
//! `sc:grid:<w>x<h>` instances) instead of hand-written per target:
//!
//! * routed circuits respect the device's coupling map,
//! * connectivity / qubit-count preconditions are structured errors, never
//!   panics,
//! * compilation is deterministic across threads,
//! * artifact-cache keys are distinct per device (`sc:eagle` and
//!   `sc:heron` can never collide),
//! * and the family mechanism is differentially pinned to the pre-existing
//!   `superconducting` target: `sc:eagle` (same Washington coupling map)
//!   is byte-identical to it, and `sc:line` is byte-identical to the
//!   pre-existing `SuperconductingBackend` handed the same line coupling.
//!
//! The SABRE router itself is additionally property-tested against
//! randomly generated *connected* coupling maps — not just the fixed
//! devices — checking coupling legality and layout bijectivity.

use proptest::prelude::*;
use weaver::core::backend::{
    Backend, BackendErrorKind, BackendRegistry, CompiledArtifact, SuperconductingBackend,
};
use weaver::core::Weaver;
use weaver::engine::{CompileJob, Engine, EngineConfig, Target};
use weaver::sat::{generator, Formula};
use weaver::superconducting::{sabre, CouplingMap, DeviceSpec};
use weaver_circuit::Circuit;

/// Every device the suite proves: the registered `sc:*` family plus a few
/// parameterized grid instances minted from names.
fn family() -> Vec<String> {
    let mut names: Vec<String> = BackendRegistry::global()
        .names()
        .into_iter()
        .filter(|n| n.starts_with("sc:"))
        .collect();
    names.extend(["sc:grid:4x5", "sc:grid:2x10", "sc:grid:3x7"].map(String::from));
    assert!(names.len() >= 7, "family under test: {names:?}");
    names
}

fn compile(device: &str, formula: &Formula) -> (String, usize) {
    let out = Weaver::new()
        .compile_target(device, formula)
        .unwrap_or_else(|e| panic!("{device}: {e}"));
    assert_eq!(out.backend, device, "canonical name flows into the output");
    let swaps = out.artifact.swap_count().expect("routed artifact");
    (out.artifact.print_wqasm(), swaps)
}

#[test]
fn every_device_routes_legally() {
    let formula = generator::instance(10, 1);
    for device in family() {
        let spec = DeviceSpec::resolve(&device).unwrap();
        let out = Weaver::new().compile_target(&device, &formula).unwrap();
        let CompiledArtifact::Superconducting { circuit, .. } = &out.artifact else {
            panic!("{device}: expected a routed circuit");
        };
        assert!(
            sabre::respects_coupling(circuit, &spec.coupling()),
            "{device}: routed circuit must respect the coupling map"
        );
        assert_eq!(circuit.num_qubits(), spec.num_qubits(), "{device}");
        assert!(out.metrics.eps >= 0.0 && out.metrics.eps <= 1.0, "{device}");
        // The declared pass pipeline ran, timed and in order.
        let ran: Vec<&str> = out.passes.iter().map(|p| p.name).collect();
        assert_eq!(ran, vec!["qaoa-lower", "sabre-transpile"], "{device}");
        assert!(out.passes.iter().all(|p| p.seconds >= 0.0), "{device}");
    }
}

#[test]
fn preconditions_are_structured_errors_not_panics() {
    let weaver = Weaver::new();
    // Too many qubits for every small device: a typed Unsupported error.
    let wide = generator::instance(50, 1);
    for device in ["sc:grid:2x2", "sc:grid:4x5", "sc:grid:7x7"] {
        let err = weaver.compile_target(device, &wide).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Unsupported, "{device}");
        assert!(err.message.contains("exceed"), "{device}: {err}");
    }
    // Unknown devices and malformed grids: typed UnknownTarget errors.
    for bad in ["sc:osprey", "sc:grid:0x4", "sc:grid:4x", "sc:grid:900x900"] {
        let err = weaver.compile_target(bad, &wide).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::UnknownTarget, "{bad}");
    }
    // A disconnected custom coupling map is a typed routing error through
    // the same backend type the family uses.
    let disconnected = CouplingMap::new(20, &[(0, 1), (2, 3)]);
    let err = SuperconductingBackend::with_coupling(disconnected)
        .compile(&weaver, &generator::instance(10, 1), None)
        .expect_err("disconnected map must fail");
    assert_eq!(err.kind, BackendErrorKind::Unsupported);
    assert!(err.message.contains("disconnected"), "{err}");
}

#[test]
fn compilation_is_deterministic_across_threads() {
    let formula = generator::instance(10, 2);
    for device in family() {
        let reference = compile(&device, &formula);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let device = device.clone();
                let formula = formula.clone();
                std::thread::spawn(move || compile(&device, &formula))
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().unwrap(),
                reference,
                "{device}: threads must agree byte for byte"
            );
        }
    }
}

#[test]
fn engine_batch_over_the_family_is_deterministic_and_cached() {
    let formula = generator::instance(10, 3);
    let jobs: Vec<CompileJob> = family()
        .into_iter()
        .map(|device| {
            let mut job = CompileJob::from_formula(format!("uf10@{device}"), formula.clone());
            job.target = Target::parse(&device).unwrap();
            job
        })
        .collect();
    let engine = Engine::new(EngineConfig {
        jobs: 3,
        ..EngineConfig::default()
    });
    let cold = engine.run(jobs.clone());
    assert_eq!(cold.succeeded(), jobs.len());
    // Distinct artifact keys: no two devices may share a cache entry.
    let keys: std::collections::HashSet<&str> =
        cold.results.iter().map(|r| r.key.as_str()).collect();
    assert_eq!(keys.len(), jobs.len(), "per-device keys must be distinct");
    // A warm rerun hits for every device; a single-worker rerun agrees
    // byte for byte.
    let warm = engine.run(jobs.clone());
    assert_eq!(warm.cache_hits(), jobs.len());
    let sequential = Engine::new(EngineConfig {
        jobs: 1,
        ..EngineConfig::default()
    })
    .run(jobs);
    let stable_passes = |a: &weaver::engine::Artifact| -> Vec<(String, u64)> {
        a.passes.iter().map(|p| (p.name.clone(), p.steps)).collect()
    };
    for (a, b) in cold.results.iter().zip(&sequential.results) {
        let (aa, ba) = (a.artifact.as_ref().unwrap(), b.artifact.as_ref().unwrap());
        assert_eq!(aa.wqasm, ba.wqasm, "{}", a.name);
        // Wall-clock per pass varies; names, order, and step counts do not.
        assert_eq!(
            stable_passes(aa),
            stable_passes(ba),
            "{}: pass names/steps agree",
            a.name
        );
    }
}

#[test]
fn device_keys_separate_from_core_targets() {
    let formula = generator::instance(10, 1);
    let mut keys = std::collections::HashSet::new();
    let mut targets = vec![Target::Fpqa, Target::Superconducting, Target::Simulator];
    targets.extend(Target::builtin_devices());
    targets.push(Target::ScDevice("sc:grid:4x5".to_string()));
    let workload = weaver::core::Workload::MaxSat(formula.clone());
    for target in targets {
        let mut job = CompileJob::from_formula("key-probe", formula.clone());
        job.target = target.clone();
        assert!(
            keys.insert(job.artifact_key(&workload)),
            "{target} collides with another target's key"
        );
    }
}

#[test]
fn eagle_is_byte_identical_to_the_legacy_superconducting_target() {
    // sc:eagle models the same 127-qubit Washington chip as the
    // pre-existing `superconducting` target; with the same coupling map
    // the family path must be the same code path, byte for byte.
    for variant in 1..=3 {
        let formula = generator::instance(20, variant);
        let weaver = Weaver::new();
        let legacy = weaver.compile_target("superconducting", &formula).unwrap();
        let eagle = weaver.compile_target("sc:eagle", &formula).unwrap();
        assert_eq!(
            eagle.artifact.print_wqasm(),
            legacy.artifact.print_wqasm(),
            "uf20-{variant:02}"
        );
        assert_eq!(eagle.artifact.swap_count(), legacy.artifact.swap_count());
        assert_eq!(eagle.metrics.eps.to_bits(), legacy.metrics.eps.to_bits());
        assert_eq!(eagle.metrics.steps, legacy.metrics.steps);
    }
}

#[test]
fn line_is_byte_identical_to_the_preexisting_backend_with_line_coupling() {
    // sc:line through the family resolution vs the pre-existing
    // SuperconductingBackend handed the same coupling map directly.
    let weaver = Weaver::new();
    for variant in 1..=3 {
        let formula = generator::instance(20, variant);
        let family_out = weaver.compile_target("sc:line", &formula).unwrap();
        let direct = SuperconductingBackend::with_coupling(CouplingMap::line(127))
            .compile(&weaver, &formula, None)
            .unwrap();
        assert_eq!(
            family_out.artifact.print_wqasm(),
            direct.artifact.print_wqasm(),
            "uf20-{variant:02}"
        );
        assert_eq!(
            family_out.artifact.swap_count(),
            direct.artifact.swap_count()
        );
        assert_eq!(
            family_out.metrics.eps.to_bits(),
            direct.metrics.eps.to_bits()
        );
    }
}

// ---------------------------------------------------------------------------
// sabre::route property tests over random connected coupling maps
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random connected coupling map: a random spanning tree (every node i
/// attaches to a random earlier node) plus `extra` random chords.
fn random_connected_map(n: usize, extra: usize, seed: u64) -> CouplingMap {
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    let mut edges = Vec::new();
    for i in 1..n {
        let j = (splitmix(&mut state) % i as u64) as usize;
        edges.push((j, i));
    }
    for _ in 0..extra {
        let a = (splitmix(&mut state) % n as u64) as usize;
        let b = (splitmix(&mut state) % n as u64) as usize;
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    CouplingMap::new(n, &edges)
}

/// A random ≤2q circuit over `qubits` wires.
fn random_circuit(qubits: usize, gates: usize, seed: u64) -> Circuit {
    let mut state = seed | 1;
    let mut c = Circuit::new(qubits);
    for _ in 0..gates {
        let a = (splitmix(&mut state) % qubits as u64) as usize;
        let b = (splitmix(&mut state) % qubits as u64) as usize;
        match splitmix(&mut state) % 4 {
            0 => {
                c.h(a);
            }
            1 => {
                c.rz(0.25 + (splitmix(&mut state) % 7) as f64 * 0.125, a);
            }
            2 if a != b => {
                c.cz(a, b);
            }
            _ if a != b => {
                c.cx(a, b);
            }
            _ => {
                c.h(a);
            }
        }
    }
    c
}

/// `final_layout`/`initial_layout` must stay logical↔physical bijections:
/// every logical qubit maps to a distinct in-range physical qubit.
fn assert_bijective(layout: &[usize], physical: usize, what: &str) {
    let mut seen = std::collections::HashSet::new();
    for (logical, &p) in layout.iter().enumerate() {
        assert!(p < physical, "{what}: logical {logical} → out-of-range {p}");
        assert!(seen.insert(p), "{what}: physical {p} mapped twice");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ISSUE 5 satellite: `sabre::route` directly against random connected
    /// coupling maps (not just the fixed devices): coupling legality holds
    /// and the layouts stay bijections.
    #[test]
    fn route_respects_random_connected_maps(
        n in 2usize..14,
        extra in 0usize..8,
        gates in 1usize..24,
        seed in 1u64..u64::MAX,
    ) {
        let coupling = random_connected_map(n, extra, seed);
        prop_assert!(coupling.is_connected());
        let circuit = random_circuit(n, gates, seed);
        let routed = sabre::route(&circuit, &coupling).unwrap();
        prop_assert!(
            sabre::respects_coupling(&routed.circuit, &coupling),
            "routing must be coupling-legal on n={n} extra={extra} seed={seed}"
        );
        assert_bijective(&routed.initial_layout, n, "initial_layout");
        assert_bijective(&routed.final_layout, n, "final_layout");
    }

    /// Bad inputs against random maps are typed errors, never panics.
    #[test]
    fn route_preconditions_hold_on_random_maps(
        n in 2usize..10,
        seed in 1u64..u64::MAX,
    ) {
        let coupling = random_connected_map(n, 2, seed);
        // Wider circuit than the map: TooManyQubits.
        let wide = random_circuit(n + 3, 4, seed);
        prop_assert_eq!(
            sabre::route(&wide, &coupling).unwrap_err(),
            sabre::RouteError::TooManyQubits { needed: n + 3, available: n }
        );
        // Two disjoint copies of the map: Disconnected.
        let mut edges = coupling.edges();
        edges.extend(coupling.edges().iter().map(|&(a, b)| (a + n, b + n)));
        let split = CouplingMap::new(2 * n, &edges);
        prop_assert!(!split.is_connected());
        let circuit = random_circuit(2 * n, 4, seed);
        prop_assert_eq!(
            sabre::route(&circuit, &split).unwrap_err(),
            sabre::RouteError::Disconnected
        );
    }
}
