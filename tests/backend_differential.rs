//! Differential suite for the `Backend` trait refactor (ISSUE 4 acceptance
//! criteria): trait-dispatched compilation through the `BackendRegistry`
//! must be byte-identical to the pre-refactor direct call paths for both
//! original targets — the wQasm text for FPQA, the routed circuit's program
//! text for superconducting — and identical in every deterministic
//! `Metrics` field. The pre-refactor paths are reconstructed inline here
//! from the same building blocks the old `Weaver::compile_fpqa` /
//! `Weaver::compile_superconducting` bodies used.

use weaver::core::backend::{BackendRegistry, CompiledArtifact};
use weaver::core::{codegen, compress, plan, CodegenOptions, Metrics, Weaver};
use weaver::sat::{generator, qaoa, Formula};
use weaver::superconducting::CouplingMap;

/// The deterministic `Metrics` fields (everything but wall-clock time).
fn stable_metrics(m: &Metrics) -> (u64, u64, usize, usize, u64) {
    (
        m.execution_micros.to_bits(),
        m.eps.to_bits(),
        m.pulses,
        m.motion_ops,
        m.steps,
    )
}

/// The pre-refactor FPQA path, inlined: layout from device parameters, the
/// §5.4 compression profitability gate, then direct codegen.
fn direct_fpqa(weaver: &Weaver, formula: &Formula) -> (String, Metrics) {
    let mut options = weaver.options.clone();
    options.layout = plan::SiteLayout::for_params(&weaver.fpqa_params);
    let typical_move = options.layout.home_spacing;
    if options.compression && !compress::compression_beneficial(&weaver.fpqa_params, typical_move) {
        options.compression = false;
    }
    let compiled = codegen::compile_formula(formula, &weaver.fpqa_params, &options);
    let metrics = Metrics::for_schedule(
        &compiled.schedule,
        &weaver.fpqa_params,
        formula.num_vars(),
        0.0,
        compiled.steps,
    );
    (weaver::wqasm::print(&compiled.program), metrics)
}

/// The pre-refactor superconducting path, inlined: QAOA lowering + SABRE
/// transpilation, program text via the circuit converter.
fn direct_superconducting(weaver: &Weaver, formula: &Formula) -> (String, usize, Metrics) {
    let circuit = qaoa::build_circuit(formula, &weaver.options.qaoa, weaver.options.measure);
    let result = weaver::superconducting::transpile(
        &circuit,
        &CouplingMap::ibm_washington(),
        &weaver.superconducting_params,
    )
    .expect("washington holds the uf20 workloads");
    let program = weaver::wqasm::convert::circuit_to_program(&result.circuit);
    let metrics = Metrics::for_transpiled(&result, 0.0);
    (weaver::wqasm::print(&program), result.swap_count, metrics)
}

#[test]
fn fpqa_dispatch_is_byte_identical_to_direct_path() {
    for variant in 1..=3 {
        let formula = generator::instance(20, variant);
        let weaver = Weaver::new();
        let (expected_qasm, expected_metrics) = direct_fpqa(&weaver, &formula);
        let output = weaver
            .compile_target("fpqa", &formula)
            .expect("fpqa compiles");
        let CompiledArtifact::Fpqa(compiled) = &output.artifact else {
            panic!("fpqa artifact expected");
        };
        assert_eq!(
            weaver::wqasm::print(&compiled.program),
            expected_qasm,
            "uf20-{variant:02}: registry wQasm must match the direct path byte for byte"
        );
        assert_eq!(
            stable_metrics(&output.metrics),
            stable_metrics(&expected_metrics),
            "uf20-{variant:02}"
        );
    }
}

#[test]
fn fpqa_dispatch_matches_under_nondefault_options() {
    let formula = generator::instance(20, 4);
    let weaver = Weaver::new()
        .with_fpqa_params(weaver::fpqa::FpqaParams::default().with_ccz_fidelity(0.90))
        .with_options(CodegenOptions {
            compression: true, // gated off by the low CCZ fidelity
            dsatur: false,
            qaoa: qaoa::QaoaParams::single(0.9, 0.2),
            ..CodegenOptions::default()
        });
    let (expected_qasm, expected_metrics) = direct_fpqa(&weaver, &formula);
    let output = weaver
        .compile_target("fpqa", &formula)
        .expect("fpqa compiles");
    let CompiledArtifact::Fpqa(compiled) = &output.artifact else {
        panic!("fpqa artifact expected");
    };
    assert_eq!(weaver::wqasm::print(&compiled.program), expected_qasm);
    assert_eq!(
        stable_metrics(&output.metrics),
        stable_metrics(&expected_metrics)
    );
}

#[test]
fn superconducting_dispatch_is_byte_identical_to_direct_path() {
    for variant in 1..=3 {
        let formula = generator::instance(20, variant);
        let weaver = Weaver::new();
        let (expected_qasm, expected_swaps, expected_metrics) =
            direct_superconducting(&weaver, &formula);
        let output = weaver
            .compile_target("superconducting", &formula)
            .expect("sc compiles");
        let CompiledArtifact::Superconducting {
            circuit,
            swap_count,
        } = &output.artifact
        else {
            panic!("superconducting artifact expected");
        };
        let program = weaver::wqasm::convert::circuit_to_program(circuit);
        assert_eq!(
            weaver::wqasm::print(&program),
            expected_qasm,
            "uf20-{variant:02}: registry circuit must match the direct path byte for byte"
        );
        assert_eq!(*swap_count, expected_swaps, "uf20-{variant:02}");
        assert_eq!(
            stable_metrics(&output.metrics),
            stable_metrics(&expected_metrics),
            "uf20-{variant:02}"
        );
    }
}

#[test]
fn shims_equal_registry_dispatch() {
    let formula = generator::instance(20, 5);
    let weaver = Weaver::new();
    // The surviving compile_fpqa / compile_superconducting shims are the
    // same trait-dispatched path.
    let shim = weaver.compile_fpqa(&formula);
    let output = weaver.compile_target("fpqa", &formula).unwrap();
    let CompiledArtifact::Fpqa(compiled) = &output.artifact else {
        panic!("fpqa artifact expected");
    };
    assert_eq!(
        weaver::wqasm::print(&shim.compiled.program),
        weaver::wqasm::print(&compiled.program)
    );
    assert_eq!(
        stable_metrics(&shim.metrics),
        stable_metrics(&output.metrics)
    );
    let sc_shim = weaver.compile_superconducting(&formula, &CouplingMap::ibm_washington());
    let sc_out = weaver.compile_target("sc", &formula).unwrap();
    assert_eq!(Some(sc_shim.swap_count), sc_out.artifact.swap_count());
    assert_eq!(
        stable_metrics(&sc_shim.metrics),
        stable_metrics(&sc_out.metrics)
    );
}

#[test]
fn simulator_target_compiles_through_the_registry() {
    let formula = generator::instance(10, 1);
    let weaver = Weaver::new();
    let output = weaver
        .compile_target("simulator", &formula)
        .expect("sim compiles");
    let CompiledArtifact::Simulator(run) = &output.artifact else {
        panic!("simulator artifact expected");
    };
    assert!(run.optimal_probability > 0.0 && run.optimal_probability <= 1.0);
    assert_eq!(output.metrics.eps, run.optimal_probability);
    assert!(run.max_satisfied <= formula.num_clauses() as u64);
    // The alias resolves to the same backend and the run is deterministic.
    let aliased = weaver.compile_target("sim", &formula).unwrap();
    assert_eq!(
        stable_metrics(&aliased.metrics),
        stable_metrics(&output.metrics)
    );
    // The emitted program is plain OpenQASM (no pulse annotations).
    let program = output.artifact.to_program();
    assert_eq!(program.pulse_count(), 0);
    let text = weaver::wqasm::print(&program);
    assert!(text.contains("OPENQASM"));
    // The ideal EPS matches an independent exhaustive computation.
    let circuit = qaoa::build_circuit(&formula, &weaver.options.qaoa, false);
    let state = circuit.statevector();
    let best = (0..state.dim())
        .map(|i| formula.count_satisfied_by_index(i))
        .max()
        .unwrap();
    let expected: f64 = state
        .probabilities()
        .iter()
        .enumerate()
        .filter(|(i, _)| formula.count_satisfied_by_index(*i) == best)
        .map(|(_, p)| p)
        .sum();
    assert_eq!(run.max_satisfied, best as u64);
    assert!((run.optimal_probability - expected).abs() < 1e-12);
}

#[test]
fn every_pass_is_named_and_instrumented() {
    let formula = generator::instance(10, 2);
    let weaver = Weaver::new();
    let registry = BackendRegistry::global();
    for backend in registry.backends() {
        let declared = backend.passes();
        let output = backend.compile(&weaver, &formula, None).unwrap();
        let ran: Vec<&str> = output.passes.iter().map(|p| p.name).collect();
        assert_eq!(ran, declared, "{}", backend.info().name);
        assert!(
            output.passes.iter().any(|p| p.steps > 0),
            "{}: at least one pass reports steps",
            backend.info().name
        );
    }
}

#[test]
fn unknown_targets_are_structured_errors() {
    let formula = generator::instance(10, 1);
    let err = Weaver::new()
        .compile_target("ion-trap", &formula)
        .unwrap_err();
    assert_eq!(
        err.kind,
        weaver::core::backend::BackendErrorKind::UnknownTarget
    );
    assert!(
        err.message
            .contains("known targets: fpqa, superconducting, simulator"),
        "{}",
        err.message
    );
}
