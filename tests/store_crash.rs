//! Crash-injection harness for the durable paged artifact store.
//!
//! Three layers of attack, all against the same invariant — *a committed
//! put survives a crash at any byte, and a lookup never returns torn
//! data*:
//!
//! 1. **Fault-point trials** (`crash_at_every_budget_recovers_committed_state`):
//!    a deterministic op script runs against a store whose file layer is
//!    armed with a byte budget; the write that crosses the budget is torn
//!    (a prefix lands, the call fails), exactly as if the process died
//!    mid-syscall. Budgets are swept over randomized offsets covering
//!    WAL appends, page applies, and checkpoints. After each simulated
//!    crash the directory is reopened and checked against an oracle model
//!    of the committed ops.
//! 2. **Differential vs cold compile**
//!    (`recovered_artifacts_match_cold_compiles`): a batch engine writes
//!    its artifact cache through a fault-armed store; after the injected
//!    crash, a fresh engine on the same directory must produce results
//!    byte-identical to a cold compile — disk hits and recompiles alike.
//! 3. **Child-process kill harness** (`kill9_mid_write_recovers`,
//!    gated behind `WEAVER_CRASH_HARNESS=1`): a real child process
//!    hammers puts until it is SIGKILLed at a randomized time, and the
//!    parent reopens and fully verifies the store. Repeats on the same
//!    directory so damage can compound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use weaver::core::cache::{Digest, Fingerprint};
use weaver::engine::store::fault::FaultState;
use weaver::engine::store::{Store, StoreTuning};

/// Small pages force multi-page chains so faults land mid-chain too.
const PAGE: u32 = 256;

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weaver-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tuning(fault: Option<std::sync::Arc<FaultState>>) -> StoreTuning {
    StoreTuning {
        page_size: PAGE,
        // A small threshold makes the script cross checkpoints mid-run.
        wal_checkpoint_bytes: 4096,
        fault,
        ..StoreTuning::default()
    }
}

fn key(tag: u64) -> Digest {
    let mut fp = Fingerprint::new();
    fp.u64(tag);
    fp.digest()
}

/// Deterministic payload for (tag, version): the first 16 bytes encode the
/// identity, the rest is a seeded random stream — so any byte corruption
/// or cross-key mixup is detectable by regeneration.
fn payload(tag: u64, version: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(tag.wrapping_mul(1_000_003) ^ version);
    let len = rng.gen_range(16usize..1100);
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    while out.len() < len {
        out.push(rng.gen_range(0u8..=255));
    }
    out
}

/// Parses a payload's identity header back out.
fn decode_payload(bytes: &[u8]) -> Option<(u64, u64)> {
    if bytes.len() < 16 {
        return None;
    }
    let tag = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let version = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    Some((tag, version))
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Put(u64, u64),
    Delete(u64),
}

/// The deterministic op script every fault trial replays: interleaved
/// puts (overwrites included) and deletes over a handful of keys.
fn script() -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut version = [0u64; 6];
    let mut ops = Vec::new();
    for _ in 0..28 {
        let tag = rng.gen_range(0u64..6);
        if rng.gen_bool(0.2) {
            ops.push(Op::Delete(tag));
        } else {
            version[tag as usize] += 1;
            ops.push(Op::Put(tag, version[tag as usize]));
        }
    }
    ops
}

/// Runs the script against `store`, maintaining the oracle of committed
/// state. Returns the op that failed mid-flight, if any.
fn run_script(store: &mut Store, model: &mut HashMap<u64, Vec<u8>>) -> Option<Op> {
    for op in script() {
        let result = match op {
            Op::Put(tag, version) => store.put(&key(tag), &payload(tag, version)),
            Op::Delete(tag) => store.delete(&key(tag)).map(|_| ()),
        };
        match result {
            Ok(()) => match op {
                Op::Put(tag, version) => {
                    model.insert(tag, payload(tag, version));
                }
                Op::Delete(tag) => {
                    model.remove(&tag);
                }
            },
            Err(_) => return Some(op),
        }
    }
    None
}

/// After reopening, every key must hold exactly its last committed value;
/// the one in-flight op may have either happened completely or not at all.
fn check_recovered(store: &mut Store, model: &HashMap<u64, Vec<u8>>, inflight: Option<Op>) {
    for tag in 0..6u64 {
        let got = store.get(&key(tag)).expect("reads never fail after reopen");
        let committed = model.get(&tag);
        let ok = match inflight {
            Some(Op::Put(t, v)) if t == tag => {
                got.as_deref() == committed.map(Vec::as_slice)
                    || got.as_deref() == Some(payload(t, v).as_slice())
            }
            Some(Op::Delete(t)) if t == tag => {
                got.as_deref() == committed.map(Vec::as_slice) || got.is_none()
            }
            _ => got.as_deref() == committed.map(Vec::as_slice),
        };
        assert!(
            ok,
            "tag {tag}: recovered value is neither the committed nor the in-flight one \
             (inflight {inflight:?}, got {} bytes, committed {} bytes)",
            got.as_ref().map_or(0, Vec::len),
            committed.map_or(0, Vec::len),
        );
        // Whatever is visible must be internally consistent, never torn.
        if let Some(bytes) = got {
            let (t, v) = decode_payload(&bytes).expect("identity header");
            assert_eq!(t, tag, "cross-keyed artifact");
            assert_eq!(bytes, payload(t, v), "torn artifact bytes");
        }
    }
    let verify = store.verify().unwrap();
    assert!(verify.consistent(), "post-recovery scan found damage");
}

/// Measures the script's total write cost in fault-budget units by running
/// it with a budget too large to trip. The budget is armed only after
/// open, so open-time writes don't count.
fn script_cost() -> u64 {
    const HUGE: u64 = 1 << 40;
    let dir = tdir("cost");
    let fault = FaultState::disarmed();
    let mut store = Store::open(&dir, tuning(Some(fault.clone()))).unwrap();
    fault.rearm(HUGE);
    let mut model = HashMap::new();
    assert!(run_script(&mut store, &mut model).is_none());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(fault.trips(), 0);
    HUGE - fault.remaining() as u64
}

#[test]
fn crash_at_every_budget_recovers_committed_state() {
    let cost = script_cost();
    assert!(cost > 0);
    let mut rng = StdRng::seed_from_u64(42);
    // Dense coverage of the first op's WAL append + page writes, then
    // randomized byte offsets across the whole script.
    let mut budgets: Vec<u64> = (1..24).map(|i| i * 37).collect();
    budgets.extend((0..36).map(|_| rng.gen_range(1..cost)));
    for budget in budgets {
        let dir = tdir(&format!("trial-{budget}"));
        let fault = FaultState::disarmed();
        let mut store = Store::open(&dir, tuning(Some(fault.clone()))).unwrap();
        fault.rearm(budget);
        let mut model = HashMap::new();
        let inflight = run_script(&mut store, &mut model);
        assert!(
            inflight.is_some(),
            "budget {budget} < cost {cost} must trip"
        );
        drop(store); // the simulated crash: no checkpoint, no cleanup

        let mut store = Store::open(&dir, tuning(None)).expect("recovery-on-open never fails");
        check_recovered(&mut store, &model, inflight);
        // The recovered store is fully writable again.
        store.put(&key(99), &payload(99, 1)).unwrap();
        assert_eq!(store.get(&key(99)).unwrap(), Some(payload(99, 1)));
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_during_checkpoint_and_compact_preserves_artifacts() {
    // Write cleanly, then arm the fault so the very next writes — the
    // checkpoint's header write / fsync / WAL truncate, then compaction —
    // tear.
    for budget in [0u64, 1, 2, PAGE as u64 / 2, 3 * PAGE as u64] {
        let dir = tdir(&format!("ckpt-{budget}"));
        let mut model = HashMap::new();
        let fault = FaultState::disarmed();
        {
            let mut store = Store::open(&dir, tuning(Some(fault.clone()))).unwrap();
            for tag in 0..4u64 {
                store.put(&key(tag), &payload(tag, 7)).unwrap();
                model.insert(tag, payload(tag, 7));
            }
            fault.rearm(budget);
            let _ = store.checkpoint();
            let _ = store.compact();
            // crash
        }
        let mut store = Store::open(&dir, tuning(None)).unwrap();
        check_recovered(&mut store, &model, None);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovered_artifacts_match_cold_compiles() {
    use weaver::engine::{CacheConfig, CompileJob, Engine, EngineConfig};
    use weaver::sat::generator;

    let jobs = || -> Vec<CompileJob> {
        (1..=4)
            .map(|v| CompileJob::from_formula(format!("uf10-{v:02}"), generator::instance(10, v)))
            .collect()
    };
    // Reference: cold compiles with no disk tier at all.
    let reference = Engine::new(EngineConfig {
        jobs: 1,
        ..EngineConfig::default()
    })
    .run(jobs());

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..6 {
        let dir = tdir("diff");
        let budget = rng.gen_range(1..8192u64);
        {
            // This engine's disk tier dies mid-batch at a random byte
            // (armed only after the store opened cleanly).
            let fault = FaultState::disarmed();
            let crashing = Engine::new(EngineConfig {
                jobs: 1,
                cache: CacheConfig {
                    disk_dir: Some(dir.clone()),
                    store: tuning(Some(fault.clone())),
                    ..CacheConfig::default()
                },
                ..EngineConfig::default()
            });
            fault.rearm(budget);
            let report = crashing.run(jobs());
            assert_eq!(report.succeeded(), 4, "disk faults never fail compiles");
        }
        // A fresh engine on the crashed directory: every artifact it serves
        // — recovered disk hit or recompile — must equal the cold compile.
        let recovered = Engine::new(EngineConfig {
            jobs: 1,
            cache: CacheConfig {
                disk_dir: Some(dir.clone()),
                store: tuning(None),
                ..CacheConfig::default()
            },
            ..EngineConfig::default()
        });
        let report = recovered.run(jobs());
        assert_eq!(report.succeeded(), 4);
        for (r, c) in report.results.iter().zip(&reference.results) {
            let (ra, ca) = (r.artifact.as_ref().unwrap(), c.artifact.as_ref().unwrap());
            assert_eq!(
                ra.wqasm, ca.wqasm,
                "recovered artifact differs from cold compile"
            );
            // Everything but wall-clock compile time is deterministic.
            assert_eq!(ra.metrics.execution_micros, ca.metrics.execution_micros);
            assert_eq!(ra.metrics.eps, ca.metrics.eps);
            assert_eq!(ra.metrics.pulses, ca.metrics.pulses);
            assert_eq!(ra.metrics.motion_ops, ca.metrics.motion_ops);
            assert_eq!(ra.metrics.steps, ca.metrics.steps);
        }
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Child-process kill harness (WEAVER_CRASH_HARNESS=1)
// ---------------------------------------------------------------------------

/// Not a test of its own: when spawned by `kill9_mid_write_recovers` with
/// `WEAVER_CRASH_ROLE=writer` it hammers puts until killed. Without the
/// env var it returns immediately (so plain `cargo test` ignores it).
#[test]
fn crash_child_writer_loop() {
    if std::env::var("WEAVER_CRASH_ROLE").as_deref() != Ok("writer") {
        return;
    }
    let dir = PathBuf::from(std::env::var("WEAVER_CRASH_DIR").expect("parent sets the dir"));
    let base: u64 = std::env::var("WEAVER_CRASH_BASE").unwrap().parse().unwrap();
    let mut store = Store::open(&dir, tuning(None)).expect("child opens the store");
    let mut version = base;
    loop {
        for tag in 0..6u64 {
            version += 1;
            store
                .put(&key(tag), &payload(tag, version))
                .expect("real put");
        }
    }
}

#[test]
fn kill9_mid_write_recovers() {
    if std::env::var("WEAVER_CRASH_HARNESS").is_err() {
        eprintln!("kill9_mid_write_recovers: set WEAVER_CRASH_HARNESS=1 to run");
        return;
    }
    let dir = tdir("kill");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let mut rng = StdRng::seed_from_u64(1234);
    for round in 0..8u64 {
        let mut child = std::process::Command::new(&exe)
            .args(["crash_child_writer_loop", "--exact", "--nocapture"])
            .env("WEAVER_CRASH_ROLE", "writer")
            .env("WEAVER_CRASH_DIR", &dir)
            .env("WEAVER_CRASH_BASE", (round * 1_000_000).to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn writer child");
        // Let it write for a randomized slice, then kill it mid-syscall.
        std::thread::sleep(std::time::Duration::from_millis(rng.gen_range(20..250u64)));
        child.kill().expect("kill writer");
        let _ = child.wait();

        // The dead child's lock file is stale (its PID is gone): open must
        // succeed, recover, and hand back a fully consistent store.
        let mut store = Store::open(&dir, tuning(None)).expect("recovery after SIGKILL");
        assert!(store.verify().unwrap().consistent(), "round {round}");
        for tag in 0..6u64 {
            if let Some(bytes) = store.get(&key(tag)).unwrap() {
                let (t, v) = decode_payload(&bytes).expect("identity header");
                assert_eq!(t, tag, "cross-keyed artifact after kill");
                assert_eq!(bytes, payload(t, v), "torn artifact after kill");
            }
        }
        // Still writable between rounds.
        store
            .put(&key(100 + round), &payload(100 + round, 1))
            .unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
