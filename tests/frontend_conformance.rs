//! Frontend conformance suite: every registered front end honors the
//! `Frontend` contract (parse→print→parse roundtrips, position-carrying
//! errors), the new frontend path is a byte-identical superset of the old
//! DIMACS-only path (the differential proof for weight-1 workloads), and
//! mixed-frontend batches stay deterministic under the engine.

use std::path::Path;
use weaver::core::{FrontendRegistry, Weaver, Workload};
use weaver::engine::{discover_jobs, CompileJob, Engine, EngineConfig, JobOptions, Target};
use weaver::sat::dimacs;

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).to_path_buf()
}

fn read_fixture(name: &str) -> String {
    std::fs::read_to_string(fixtures_dir().join(name)).unwrap()
}

#[test]
fn every_frontend_roundtrips_through_its_printer() {
    let registry = FrontendRegistry::global();
    let samples = [
        ("dimacs", read_fixture("uf20-01.cnf")),
        ("dimacs", read_fixture("sample.wcnf")),
        ("maxcut", read_fixture("triangle.mc")),
        ("wqasm", read_fixture("bell.wq")),
    ];
    for (name, text) in &samples {
        let front = registry.get(name).expect(name);
        let workload = front.parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = front
            .print(&workload)
            .unwrap_or_else(|| panic!("{name} must print its own workloads"));
        let reparsed = front
            .parse(&printed)
            .unwrap_or_else(|e| panic!("{name} reparse: {e}\n{printed}"));
        assert_eq!(workload, reparsed, "{name}: parse→print→parse must fix");
        assert_eq!(
            workload.canonical_bytes(),
            reparsed.canonical_bytes(),
            "{name}: canonical bytes must survive the roundtrip"
        );
    }
}

#[test]
fn every_frontend_reports_positions_on_garbage() {
    let registry = FrontendRegistry::global();
    for (name, bad) in [
        ("dimacs", "p cnf 2 1\n1 99 0\n"),
        ("maxcut", "p mc 3 1\n1 1\n"),
        ("wqasm", "qreg q[2];\nh q[\n"),
    ] {
        let err = registry
            .get(name)
            .unwrap()
            .parse(bad)
            .map(|w| w.describe())
            .unwrap_err();
        assert_eq!(err.frontend, name);
        assert!(err.line > 0, "{name}: {err}");
        assert!(err.to_string().contains("line"), "{name}: {err}");
    }
}

/// The differential proof: every existing `.cnf` fixture compiles
/// byte-identically whether the formula takes the legacy path
/// (`dimacs::parse` + `compile_target`) or the frontend path
/// (registry-resolved parse + `compile_workload`), on every registered
/// core target — same wQasm, same metrics, same artifact key inputs.
#[test]
fn cnf_fixtures_compile_identically_through_the_frontend_path() {
    let registry = FrontendRegistry::global();
    let weaver = Weaver::new();
    let mut checked = 0;
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|x| x.to_str()) != Some("cnf") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let legacy = dimacs::parse(&text).unwrap();
        let front = registry.resolve(None, Some(&path), &text).unwrap();
        assert_eq!(front.info().name, "dimacs");
        let workload = front.parse(&text).unwrap();
        // Identical parse and identical cache-key bytes ⇒ identical
        // engine artifact keys for every pre-existing workload.
        assert_eq!(workload, Workload::MaxSat(legacy.clone()));
        assert_eq!(workload.canonical_bytes(), legacy.canonical_bytes());
        for target in ["fpqa", "superconducting", "simulator"] {
            let old = weaver.compile_target(target, &legacy).unwrap();
            let new = weaver.compile_workload(target, &workload).unwrap();
            assert_eq!(
                old.artifact.print_wqasm(),
                new.artifact.print_wqasm(),
                "{}@{target}",
                path.display()
            );
            assert_eq!(old.metrics.eps, new.metrics.eps);
            assert_eq!(old.metrics.pulses, new.metrics.pulses);
            assert_eq!(old.metrics.motion_ops, new.metrics.motion_ops);
            assert_eq!(old.metrics.execution_micros, new.metrics.execution_micros);
        }
        checked += 1;
    }
    assert!(checked >= 8, "only {checked} .cnf fixtures checked");
}

/// Weight-1 WCNF is byte-identical to plain CNF end to end: same formula,
/// same canonical bytes, same compiled artifact on every target.
#[test]
fn weight_one_wcnf_is_byte_identical_to_cnf() {
    let cnf = read_fixture("uf20-01.cnf");
    let front = FrontendRegistry::global().get("dimacs").unwrap();
    let plain = front.parse(&cnf).unwrap();
    let Workload::MaxSat(formula) = &plain else {
        panic!("dimacs produces formulas");
    };
    // Rewrite the same clauses as explicit weight-1 WCNF.
    let mut wcnf = format!(
        "p wcnf {} {} {}\n",
        formula.num_vars(),
        formula.num_clauses(),
        formula.hard_clause_weight()
    );
    for clause in formula.clauses() {
        wcnf.push('1');
        for lit in clause.lits() {
            wcnf.push_str(&format!(" {}", lit.to_dimacs()));
        }
        wcnf.push_str(" 0\n");
    }
    let weighted = front.parse(&wcnf).unwrap();
    assert_eq!(plain, weighted, "weight-1 clauses are unweighted clauses");
    assert_eq!(
        plain.canonical_bytes(),
        weighted.canonical_bytes(),
        "weight-1 canonical bytes gain no weights section"
    );
    let weaver = Weaver::new();
    for target in ["fpqa", "superconducting", "simulator"] {
        let a = weaver.compile_workload(target, &plain).unwrap();
        let b = weaver.compile_workload(target, &weighted).unwrap();
        assert_eq!(
            a.artifact.print_wqasm(),
            b.artifact.print_wqasm(),
            "{target}"
        );
        assert_eq!(a.metrics.eps, b.metrics.eps, "{target}");
    }
}

#[test]
fn distinct_workloads_get_distinct_artifact_keys() {
    let mut keys = std::collections::HashSet::new();
    for name in ["uf20-01.cnf", "sample.wcnf", "triangle.mc", "bell.wq"] {
        let path = fixtures_dir().join(name);
        let text = std::fs::read_to_string(&path).unwrap();
        let front = FrontendRegistry::global()
            .resolve(None, Some(&path), &text)
            .unwrap();
        let workload = front.parse(&text).unwrap();
        let job = CompileJob::from_workload(name, workload.clone());
        assert!(
            keys.insert(job.artifact_key(&workload)),
            "{name}: artifact key collides"
        );
    }
    // And a weighted variant of an unweighted formula re-keys.
    let unweighted = weaver::sat::generator::instance(10, 1);
    let weighted = weaver::sat::generator::weighted_instance(10, 1);
    let job = CompileJob::from_formula("w", unweighted.clone());
    assert_ne!(
        job.artifact_key(&Workload::MaxSat(unweighted)),
        job.artifact_key(&Workload::MaxSat(weighted))
    );
}

/// Mixed-frontend batches are deterministic: cold and warm runs, on one
/// worker and on four, all serve byte-identical artifacts per job, and
/// every workload keeps its own cache key.
#[test]
fn mixed_frontend_batches_are_deterministic() {
    let manifest = fixtures_dir().join("mixed-frontends.manifest");
    let jobs = discover_jobs(&manifest, Target::Fpqa, &JobOptions::default()).unwrap();
    assert_eq!(jobs.len(), 8);

    let reference_engine = Engine::new(EngineConfig {
        jobs: 1,
        ..EngineConfig::default()
    });
    let reference = reference_engine.run(jobs.clone());
    assert_eq!(
        reference.succeeded(),
        jobs.len(),
        "{:?}",
        reference
            .results
            .iter()
            .filter_map(|r| r.artifact.as_ref().err())
            .collect::<Vec<_>>()
    );
    assert_eq!(reference.cache_hits(), 0);

    for workers in [1, 4] {
        let engine = Engine::new(EngineConfig {
            jobs: workers,
            ..EngineConfig::default()
        });
        let cold = engine.run(jobs.clone());
        let warm = engine.run(jobs.clone());
        assert_eq!(cold.succeeded(), jobs.len(), "cold x{workers}");
        assert_eq!(warm.succeeded(), jobs.len(), "warm x{workers}");
        assert_eq!(warm.cache_hits(), jobs.len(), "warm x{workers} all hit");
        for ((r, c), w) in reference
            .results
            .iter()
            .zip(&cold.results)
            .zip(&warm.results)
        {
            let (ra, ca, wa) = (
                r.artifact.as_ref().unwrap(),
                c.artifact.as_ref().unwrap(),
                w.artifact.as_ref().unwrap(),
            );
            assert_eq!(ra.wqasm, ca.wqasm, "{} cold x{workers}", r.name);
            assert_eq!(ca.wqasm, wa.wqasm, "{} warm x{workers}", c.name);
            assert_eq!(r.key, c.key);
            assert_eq!(c.key, w.key);
        }
    }

    // Per-workload-distinct cache keys: jobs over different inputs (or the
    // same input on different targets) never share an artifact entry.
    let mut seen = std::collections::HashSet::new();
    for r in &reference.results {
        assert!(
            seen.insert(r.key.clone()),
            "{}: cache key collides in the mixed manifest",
            r.name
        );
    }
}

/// Circuits route only to circuit-capable targets inside the engine too:
/// an `fpqa` job over a `.wq` file fails structurally, without aborting
/// the rest of the batch.
#[test]
fn engine_rejects_circuits_on_formula_only_targets() {
    let mut circuit_job = CompileJob::from_path(fixtures_dir().join("bell.wq"));
    circuit_job.target = Target::Fpqa;
    let good_job = CompileJob::from_path(fixtures_dir().join("uf20-01.cnf"));
    let engine = Engine::new(EngineConfig {
        jobs: 2,
        ..EngineConfig::default()
    });
    let report = engine.run(vec![circuit_job, good_job]);
    assert_eq!(report.succeeded(), 1);
    let err = report.results[0].artifact.as_ref().unwrap_err();
    assert_eq!(err.kind.name(), "unsupported-workload");
    assert!(err.message.contains("circuit-capable"), "{err}");
    assert!(report.results[1].artifact.is_ok());
}
