//! Regression suite for store-lock liveness (the `store.lock` PID
//! protocol): a lock held by a **live** process must never be evicted,
//! while a lock left behind by a **dead** process must be reclaimed
//! instead of wedging the directory forever. The live holder is a real
//! child process (blocked on its stdin pipe) whose PID is planted in the
//! lock file; the dead holder is a child that has already been reaped, so
//! its `/proc/<pid>` entry is provably gone.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use weaver::engine::store::{is_locked, Store, StoreTuning, LOCK_FILE, STORE_FILE};

fn tdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weaver-lock-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn live_holder_is_never_evicted_dead_holder_is_reclaimed() {
    let dir = tdir("liveness");

    // A child that stays alive exactly as long as we hold its stdin pipe:
    // `cat` blocks on read until the far end drops.
    let mut child = Command::new("cat")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn cat");
    let live_pid = child.id();
    std::fs::write(dir.join(LOCK_FILE), format!("{live_pid}\n")).unwrap();

    // Live holder: open must refuse, with a lock error naming the holder,
    // and must not touch the lock file.
    let err = match Store::open(&dir, StoreTuning::default()) {
        Ok(_) => panic!("store held by a live process must not open"),
        Err(e) => e,
    };
    assert!(is_locked(&err), "lock refusal classifies as locked: {err}");
    assert!(
        err.to_string().contains(&live_pid.to_string()),
        "error names the holder pid: {err}"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join(LOCK_FILE)).unwrap().trim(),
        live_pid.to_string(),
        "a live holder's lock file is left untouched"
    );

    // Kill and reap the holder; its PID now provably dead, the stale lock
    // must be reclaimed and the store must open.
    drop(child.stdin.take());
    child.kill().ok();
    child.wait().expect("reap cat");
    let store = Store::open(&dir, StoreTuning::default())
        .expect("a dead holder's stale lock must be reclaimed");
    assert_eq!(
        std::fs::read_to_string(dir.join(LOCK_FILE)).unwrap().trim(),
        std::process::id().to_string(),
        "reclaiming rewrites the lock with the new holder's pid"
    );
    drop(store);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reaped_child_pid_counts_as_dead() {
    let dir = tdir("reaped");

    // `true` exits immediately; after wait() the PID is reaped and (modulo
    // astronomically unlikely reuse) /proc/<pid> is gone.
    let mut child = Command::new("true").spawn().expect("spawn true");
    let dead_pid = child.id();
    child.wait().expect("reap true");
    std::fs::write(dir.join(LOCK_FILE), format!("{dead_pid}\n")).unwrap();

    let mut store = Store::open(&dir, StoreTuning::default())
        .expect("a reaped holder's lock must be reclaimed");
    // The reclaimed store is fully usable.
    let key = {
        let mut fp = weaver::core::cache::Fingerprint::new();
        fp.u64(1);
        fp.digest()
    };
    store.put(&key, b"payload").unwrap();
    assert_eq!(store.get(&key).unwrap().as_deref(), Some(&b"payload"[..]));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unparseable_lock_file_is_stolen() {
    let dir = tdir("garbage");
    std::fs::write(dir.join(LOCK_FILE), "not-a-pid\n").unwrap();
    let store = Store::open(&dir, StoreTuning::default())
        .expect("a lock file no weaver holder wrote must not wedge the dir");
    assert!(dir.join(STORE_FILE).exists());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn same_process_reopen_is_refused_while_held() {
    let dir = tdir("same-process");
    let store = Store::open(&dir, StoreTuning::default()).unwrap();
    let err = match Store::open(&dir, StoreTuning::default()) {
        Ok(_) => panic!("second in-process open must be refused"),
        Err(e) => e,
    };
    assert!(is_locked(&err), "{err}");
    drop(store);
    // Releasing the first handle frees the directory.
    Store::open(&dir, StoreTuning::default()).expect("reopen after drop");
    let _ = std::fs::remove_dir_all(&dir);
}
