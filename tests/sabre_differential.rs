//! Seeded differential suite proving the optimized SABRE router
//! (`sabre::route` — cached distance matrix, reusable flat buffers,
//! incremental front maintenance, clone-free candidate scoring) emits
//! byte-identical output to the preserved reference implementation
//! (`sabre::route_reference`) on real device topologies and on random
//! connected coupling maps.

use proptest::prelude::*;
use weaver::circuit::{native, Circuit, NativeBasis};
use weaver::sat::{generator, qaoa};
use weaver::superconducting::sabre::{self, RoutedCircuit};
use weaver::superconducting::{CouplingMap, DeviceSpec};

/// Full structural equality: circuit operations, SWAP count, both layouts,
/// and the heuristic step counter (Fig. 10a instrumentation) must all agree
/// — any divergence in FP accumulation order, tie-breaking, or decay
/// bookkeeping shows up in at least one of these.
fn assert_identical(new: &RoutedCircuit, old: &RoutedCircuit, context: &str) {
    assert_eq!(
        new.circuit, old.circuit,
        "{context}: routed circuit differs"
    );
    assert_eq!(
        new.swap_count, old.swap_count,
        "{context}: swap count differs"
    );
    assert_eq!(
        new.initial_layout, old.initial_layout,
        "{context}: initial layout differs"
    );
    assert_eq!(
        new.final_layout, old.final_layout,
        "{context}: final layout differs"
    );
    assert_eq!(new.steps, old.steps, "{context}: step counter differs");
}

fn qaoa_circuit(vars: usize, variant: usize) -> Circuit {
    let f = generator::instance(vars, variant);
    native::nativize(
        &qaoa::build_circuit(&f, &Default::default(), false),
        NativeBasis::U3Cz,
    )
}

#[test]
fn route_matches_reference_on_eagle() {
    let coupling = DeviceSpec::eagle().coupling();
    for (vars, variant) in [(20, 1), (20, 7), (50, 1), (75, 2)] {
        let c = qaoa_circuit(vars, variant);
        let new = sabre::route(&c, &coupling).unwrap();
        let old = sabre::route_reference(&c, &coupling).unwrap();
        assert_identical(&new, &old, &format!("uf{vars}-{variant:02} on sc:eagle"));
    }
}

#[test]
fn route_matches_reference_on_heron() {
    let coupling = DeviceSpec::heron().coupling();
    for (vars, variant) in [(20, 3), (50, 2)] {
        let c = qaoa_circuit(vars, variant);
        let new = sabre::route(&c, &coupling).unwrap();
        let old = sabre::route_reference(&c, &coupling).unwrap();
        assert_identical(&new, &old, &format!("uf{vars}-{variant:02} on sc:heron"));
    }
}

#[test]
fn route_matches_reference_on_line_and_grid() {
    for coupling in [
        CouplingMap::line(12),
        CouplingMap::grid(3, 4),
        CouplingMap::grid(4, 5),
    ] {
        let c = qaoa_circuit(10, 4);
        let new = sabre::route(&c, &coupling).unwrap();
        let old = sabre::route_reference(&c, &coupling).unwrap();
        assert_identical(&new, &old, "uf10-04 on small topology");
    }
}

// ---- randomized maps and circuits -------------------------------------------

/// A random connected coupling map: a random spanning tree (connectivity)
/// plus extra random chords (routing choice).
fn arb_connected_map(max_qubits: usize) -> impl Strategy<Value = CouplingMap> {
    (4..=max_qubits)
        .prop_flat_map(|n| {
            let tree = prop::collection::vec(0usize..usize::MAX, n - 1);
            let chords = prop::collection::vec((0..n, 0..n), 0..2 * n);
            (Just(n), tree, chords)
        })
        .prop_map(|(n, tree, chords)| {
            let mut edges: Vec<(usize, usize)> = tree
                .iter()
                .enumerate()
                .map(|(i, &r)| (i + 1, r % (i + 1)))
                .collect();
            edges.extend(chords.into_iter().filter(|&(a, b)| a != b));
            CouplingMap::new(n, &edges)
        })
}

/// A random two-qubit-heavy circuit on `n` logical qubits.
fn arb_routable_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec((0..n, 0..n, any::<bool>()), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (a, b, one_q) in gates {
            if one_q {
                c.h(a);
            } else if a != b {
                c.cz(a, b);
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Byte-identity on random connected maps with random circuits.
    #[test]
    fn route_matches_reference_on_random_maps(
        coupling in arb_connected_map(16),
        seed in 1usize..64,
    ) {
        // The spanning-tree construction makes every generated map connected.
        prop_assert!(coupling.is_connected());
        let n = coupling.num_qubits().min(12);
        let c = {
            let f = generator::instance(n, seed);
            native::nativize(
                &qaoa::build_circuit(&f, &Default::default(), false),
                NativeBasis::U3Cz,
            )
        };
        let new = sabre::route(&c, &coupling).unwrap();
        let old = sabre::route_reference(&c, &coupling).unwrap();
        assert_identical(&new, &old, "random map");
        prop_assert!(sabre::respects_coupling(&new.circuit, &coupling));
    }

    /// Byte-identity on random gate sequences (not just QAOA shapes).
    #[test]
    fn route_matches_reference_on_random_circuits(
        c in arb_routable_circuit(9, 40),
    ) {
        let coupling = CouplingMap::grid(3, 3);
        let new = sabre::route(&c, &coupling).unwrap();
        let old = sabre::route_reference(&c, &coupling).unwrap();
        assert_identical(&new, &old, "random circuit on grid(3,3)");
    }
}
