//! Native gate synthesis (paper §3a / §7).
//!
//! Weaver lowers every input circuit to a *native circuit* over the basis
//! `B = {U3, CZ}` shared by superconducting and FPQA technologies; the FPQA
//! path may additionally keep `CCZ`, which Rydberg pulses implement natively.
//! Runs of single-qubit gates are fused into a single `U3` via Euler
//! decomposition, so the native circuit is canonical and minimal in 1-qubit
//! gate count.

use crate::euler::{decompose_u3, is_identity_u3};
use crate::{decompose::decompose_circuit, Circuit, Gate, Operation};
use weaver_simulator::Matrix;

/// The target native basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum NativeBasis {
    /// `{U3, CZ}` — the common denominator of both technologies.
    #[default]
    U3Cz,
    /// `{U3, CZ, CCZ}` — FPQA path, keeping native 3-qubit gates.
    U3CzCcz,
}

impl NativeBasis {
    /// Whether a gate is native in this basis.
    pub fn contains(self, gate: &Gate) -> bool {
        match gate {
            Gate::U3(..) => true,
            Gate::Cz => true,
            Gate::Ccz => self == NativeBasis::U3CzCcz,
            _ => false,
        }
    }
}

/// Lowers `circuit` to the chosen native basis, fusing single-qubit runs
/// into canonical `U3` gates and cancelling identity rotations.
///
/// # Examples
///
/// ```
/// use weaver_circuit::{native, Circuit, NativeBasis};
/// let mut c = Circuit::new(2);
/// c.h(0).t(0).cx(0, 1);
/// let n = native::nativize(&c, NativeBasis::U3Cz);
/// assert!(n
///     .instructions()
///     .all(|i| matches!(i.gate, weaver_circuit::Gate::U3(..) | weaver_circuit::Gate::Cz)));
/// ```
pub fn nativize(circuit: &Circuit, basis: NativeBasis) -> Circuit {
    // Step 1: decompose to the elementary set {1q, CX, CZ, (CCZ)}.
    let keep_ccz = basis == NativeBasis::U3CzCcz;
    let elementary = decompose_circuit(circuit, keep_ccz);

    // Step 2: replace CX with H-conjugated CZ so only CZ/CCZ remain as
    // entanglers, then fuse single-qubit runs.
    let mut fuser = SingleQubitFuser::new(elementary.num_qubits());
    let mut out = Circuit::new(elementary.num_qubits());

    for op in elementary.operations() {
        match op {
            Operation::Gate(instr) => match instr.gate {
                ref g if g.num_qubits() == 1 => {
                    fuser.absorb(instr.qubits[0], &g.matrix());
                }
                Gate::Cx => {
                    let (c, t) = (instr.qubits[0], instr.qubits[1]);
                    fuser.absorb(t, &Gate::H.matrix());
                    fuser.flush(c, &mut out);
                    fuser.flush(t, &mut out);
                    out.push(Gate::Cz, &[c, t]);
                    fuser.absorb(t, &Gate::H.matrix());
                }
                Gate::Cz | Gate::Ccz => {
                    for &q in &instr.qubits {
                        fuser.flush(q, &mut out);
                    }
                    out.push(instr.gate.clone(), &instr.qubits);
                }
                ref g => unreachable!("non-elementary gate {g} after decomposition"),
            },
            Operation::Measure(q) => {
                fuser.flush(*q, &mut out);
                out.measure(*q);
            }
            Operation::Barrier(scope) => {
                if scope.is_empty() {
                    fuser.flush_all(&mut out);
                } else {
                    for &q in scope {
                        fuser.flush(q, &mut out);
                    }
                }
                out.push_op(Operation::Barrier(scope.clone()));
            }
        }
    }
    fuser.flush_all(&mut out);
    out
}

/// Accumulates pending single-qubit unitaries per wire and emits them as
/// fused `U3` gates on demand.
struct SingleQubitFuser {
    pending: Vec<Option<Matrix>>,
}

impl SingleQubitFuser {
    fn new(num_qubits: usize) -> Self {
        SingleQubitFuser {
            pending: vec![None; num_qubits],
        }
    }

    /// Multiplies a new gate onto the pending unitary of `qubit`.
    fn absorb(&mut self, qubit: usize, gate: &Matrix) {
        let acc = match self.pending[qubit].take() {
            Some(prev) => gate * &prev,
            None => gate.clone(),
        };
        self.pending[qubit] = Some(acc);
    }

    /// Emits the pending unitary of `qubit` (if non-identity) as one `U3`.
    fn flush(&mut self, qubit: usize, out: &mut Circuit) {
        if let Some(m) = self.pending[qubit].take() {
            let a = decompose_u3(&m);
            if !is_identity_u3(a.theta, a.phi, a.lambda, 1e-12) {
                out.push(Gate::U3(a.theta, a.phi, a.lambda), &[qubit]);
            }
        }
    }

    fn flush_all(&mut self, out: &mut Circuit) {
        for q in 0..self.pending.len() {
            self.flush(q, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::equiv;

    const TOL: f64 = 1e-9;

    fn assert_equiv(a: &Circuit, b: &Circuit) {
        let e = equiv::compare(&a.unitary(), &b.unitary(), TOL);
        assert!(e.is_equivalent(), "nativization changed semantics: {e:?}");
    }

    fn assert_native(c: &Circuit, basis: NativeBasis) {
        for i in c.instructions() {
            assert!(basis.contains(&i.gate), "gate {} not in basis", i.gate);
        }
    }

    #[test]
    fn fuses_single_qubit_runs() {
        let mut c = Circuit::new(1);
        c.h(0).rz(0.3, 0).rx(-0.9, 0).h(0);
        let n = nativize(&c, NativeBasis::U3Cz);
        assert_eq!(n.gate_count(), 1, "four 1q gates must fuse to one U3");
        assert_equiv(&c, &n);
    }

    #[test]
    fn identity_runs_vanish() {
        let mut c = Circuit::new(1);
        c.h(0).h(0).x(0).x(0);
        let n = nativize(&c, NativeBasis::U3Cz);
        assert_eq!(n.gate_count(), 0);
    }

    #[test]
    fn cx_lowered_to_cz() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let n = nativize(&c, NativeBasis::U3Cz);
        assert_native(&n, NativeBasis::U3Cz);
        assert_eq!(n.two_qubit_count(), 1);
        assert_equiv(&c, &n);
    }

    #[test]
    fn back_to_back_cx_fuse_hadamards() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let n = nativize(&c, NativeBasis::U3Cz);
        // The inner H·H cancels; two CZs remain with no 1q gates between.
        assert_eq!(n.two_qubit_count(), 2);
        assert_equiv(&c, &n);
    }

    #[test]
    fn ccz_kept_in_fpqa_basis_lowered_otherwise() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let fpqa = nativize(&c, NativeBasis::U3CzCcz);
        assert_eq!(fpqa.gate_count(), 1);
        assert_native(&fpqa, NativeBasis::U3CzCcz);

        let sc = nativize(&c, NativeBasis::U3Cz);
        assert_native(&sc, NativeBasis::U3Cz);
        assert_equiv(&c, &sc);
    }

    #[test]
    fn toffoli_roundtrip_both_bases() {
        let mut c = Circuit::new(3);
        c.ccx(2, 0, 1);
        for basis in [NativeBasis::U3Cz, NativeBasis::U3CzCcz] {
            let n = nativize(&c, basis);
            assert_native(&n, basis);
            assert_equiv(&c, &n);
        }
    }

    #[test]
    fn measurements_and_barriers_preserved() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.barrier();
        c.cx(0, 1).measure_all();
        let n = nativize(&c, NativeBasis::U3Cz);
        let measures = n
            .operations()
            .iter()
            .filter(|o| matches!(o, Operation::Measure(_)))
            .count();
        assert_eq!(measures, 2);
        assert!(n
            .operations()
            .iter()
            .any(|o| matches!(o, Operation::Barrier(_))));
    }

    #[test]
    fn qaoa_like_fragment() {
        // RZ ladder for a quadratic term, as in the paper's Fig. 6a.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.8, 1).cx(0, 1);
        let n = nativize(&c, NativeBasis::U3Cz);
        assert_native(&n, NativeBasis::U3Cz);
        assert_equiv(&c, &n);
    }

    #[test]
    fn wider_random_circuit_equivalence() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        c.ccx(0, 1, 2).swap(1, 3).rz(0.3, 2).cx(3, 0);
        c.push(Gate::Crz(1.1), &[2, 3]);
        for basis in [NativeBasis::U3Cz, NativeBasis::U3CzCcz] {
            let n = nativize(&c, basis);
            assert_native(&n, basis);
            assert_equiv(&c, &n);
        }
    }
}
