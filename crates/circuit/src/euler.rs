//! Euler-angle extraction: writes an arbitrary single-qubit unitary as
//! `e^{iα}·U3(θ, φ, λ)`. This is the workhorse of single-qubit gate fusion in
//! the nativizer — any run of 1-qubit gates collapses to a single `U3`.

use weaver_simulator::{gates, Complex, Matrix};

/// The result of decomposing a `2 × 2` unitary into `e^{iα}·U3(θ, φ, λ)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EulerAngles {
    /// Polar rotation θ.
    pub theta: f64,
    /// First phase angle φ.
    pub phi: f64,
    /// Second phase angle λ.
    pub lambda: f64,
    /// Global phase α (unobservable, but tracked so reconstruction is exact).
    pub global_phase: f64,
}

impl EulerAngles {
    /// Rebuilds the exact matrix `e^{iα}·U3(θ, φ, λ)`.
    pub fn to_matrix(self) -> Matrix {
        gates::u3(self.theta, self.phi, self.lambda).scale(Complex::from_polar(self.global_phase))
    }
}

/// Decomposes a single-qubit unitary into [`EulerAngles`].
///
/// # Panics
///
/// Panics if `m` is not `2 × 2` or is not unitary to within `1e-8`.
///
/// # Examples
///
/// ```
/// use weaver_circuit::euler::decompose_u3;
/// use weaver_simulator::gates;
/// let angles = decompose_u3(&gates::h());
/// let rebuilt = angles.to_matrix();
/// assert!(rebuilt.approx_eq(&gates::h(), 1e-10));
/// ```
pub fn decompose_u3(m: &Matrix) -> EulerAngles {
    assert_eq!(m.rows(), 2, "expected a single-qubit matrix");
    assert_eq!(m.cols(), 2, "expected a single-qubit matrix");
    assert!(m.is_unitary(1e-8), "matrix is not unitary");

    let m00 = m[(0, 0)];
    let m01 = m[(0, 1)];
    let m10 = m[(1, 0)];
    let m11 = m[(1, 1)];

    let cos_half = m00.abs().min(1.0);
    let sin_half = m10.abs().min(1.0);
    let theta = 2.0 * sin_half.atan2(cos_half);

    const EPS: f64 = 1e-12;
    let (global_phase, phi, lambda) = if cos_half > EPS && sin_half > EPS {
        let g = m00.arg();
        let phi = m10.arg() - g;
        let lambda = (-m01).arg() - g;
        (g, phi, lambda)
    } else if sin_half <= EPS {
        // θ ≈ 0: only the diagonal is populated; φ is a free parameter.
        let g = m00.arg();
        let lambda = m11.arg() - g;
        (g, 0.0, lambda)
    } else {
        // θ ≈ π: only the anti-diagonal is populated; put everything in λ.
        let g = m10.arg();
        let lambda = (-m01).arg() - g;
        (g, 0.0, lambda)
    };

    EulerAngles {
        theta,
        phi: normalize_angle(phi),
        lambda: normalize_angle(lambda),
        global_phase: normalize_angle(global_phase),
    }
}

/// The result of decomposing a `2 × 2` unitary into
/// `e^{iα}·RZ(z)·RY(y)·RX(x)` — the native form of an FPQA Raman pulse,
/// whose wQasm annotation carries the three axis angles `(x, y, z)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZyxAngles {
    /// Rotation about X (applied first).
    pub x: f64,
    /// Rotation about Y (applied second).
    pub y: f64,
    /// Rotation about Z (applied last).
    pub z: f64,
    /// Global phase α.
    pub global_phase: f64,
}

impl ZyxAngles {
    /// Rebuilds the exact matrix `e^{iα}·RZ(z)·RY(y)·RX(x)`.
    pub fn to_matrix(self) -> Matrix {
        let m = &(&gates::rz(self.z) * &gates::ry(self.y)) * &gates::rx(self.x);
        m.scale(Complex::from_polar(self.global_phase))
    }
}

/// Decomposes a single-qubit unitary into ZYX Euler angles
/// (`U = e^{iα}·RZ(z)·RY(y)·RX(x)`), via the adjoint SO(3) rotation.
///
/// # Panics
///
/// Panics if `m` is not `2 × 2` or not unitary to within `1e-8`.
///
/// # Examples
///
/// ```
/// use weaver_circuit::euler::decompose_zyx;
/// use weaver_simulator::gates;
/// let a = decompose_zyx(&gates::h());
/// assert!(a.to_matrix().approx_eq(&gates::h(), 1e-9));
/// ```
pub fn decompose_zyx(m: &Matrix) -> ZyxAngles {
    assert_eq!(m.rows(), 2, "expected a single-qubit matrix");
    assert_eq!(m.cols(), 2, "expected a single-qubit matrix");
    assert!(m.is_unitary(1e-8), "matrix is not unitary");

    // Adjoint representation: R[i][j] = ½ Tr(σᵢ · M · σⱼ · M†).
    let paulis = [gates::x(), gates::y(), gates::z()];
    let mdag = m.adjoint();
    let mut r = [[0.0f64; 3]; 3];
    for (i, si) in paulis.iter().enumerate() {
        for (j, sj) in paulis.iter().enumerate() {
            let prod = &(&(si * m) * sj) * &mdag;
            r[i][j] = 0.5 * prod.trace().re;
        }
    }

    // ZYX (yaw-pitch-roll) extraction from R = Rz(z)·Ry(y)·Rx(x).
    let (x, y, z) = if r[2][0].abs() < 1.0 - 1e-12 {
        let y = (-r[2][0]).asin();
        let x = r[2][1].atan2(r[2][2]);
        let z = r[1][0].atan2(r[0][0]);
        (x, y, z)
    } else {
        // Gimbal lock: y = ±π/2; fold the x rotation into z.
        let y = if r[2][0] < 0.0 {
            std::f64::consts::FRAC_PI_2
        } else {
            -std::f64::consts::FRAC_PI_2
        };
        let x = 0.0;
        let z = (-r[0][1]).atan2(r[1][1]);
        (x, y, z)
    };

    // Normalize angles *before* phase recovery: RZ/RY/RX have period 4π in
    // matrix form, so shifting an angle by 2π flips the matrix sign, which
    // must be absorbed into the recovered global phase.
    let x = normalize_angle(x);
    let y = normalize_angle(y);
    let z = normalize_angle(z);
    // Recover the global phase by comparing against the reconstruction.
    let bare = &(&gates::rz(z) * &gates::ry(y)) * &gates::rx(x);
    // Use the largest-magnitude entry for numerical stability.
    let mut best = (0, 0);
    let mut mag = -1.0;
    for rr in 0..2 {
        for cc in 0..2 {
            if bare[(rr, cc)].norm_sqr() > mag {
                mag = bare[(rr, cc)].norm_sqr();
                best = (rr, cc);
            }
        }
    }
    let global_phase = (m[best] / bare[best]).arg();
    ZyxAngles {
        x,
        y,
        z,
        global_phase: normalize_angle(global_phase),
    }
}

/// Maps an angle into `(-π, π]`.
pub fn normalize_angle(a: f64) -> f64 {
    use std::f64::consts::{PI, TAU};
    let mut x = a.rem_euclid(TAU);
    if x > PI {
        x -= TAU;
    }
    x
}

/// Whether `U3(θ, φ, λ)` is the identity up to global phase within `tol`.
pub fn is_identity_u3(theta: f64, phi: f64, lambda: f64, tol: f64) -> bool {
    normalize_angle(theta).abs() <= tol && normalize_angle(phi + lambda).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::gates;

    const TOL: f64 = 1e-10;

    fn roundtrip(m: &Matrix) {
        let angles = decompose_u3(m);
        assert!(
            angles.to_matrix().approx_eq(m, TOL),
            "roundtrip failed: {angles:?} for {m:?}"
        );
    }

    #[test]
    fn named_gates_roundtrip() {
        for m in [
            gates::id(),
            gates::x(),
            gates::y(),
            gates::z(),
            gates::h(),
            gates::s(),
            gates::sdg(),
            gates::t(),
            gates::tdg(),
        ] {
            roundtrip(&m);
        }
    }

    #[test]
    fn rotations_roundtrip() {
        for k in 0..24 {
            let a = k as f64 * 0.53 - 6.0;
            roundtrip(&gates::rx(a));
            roundtrip(&gates::ry(a));
            roundtrip(&gates::rz(a));
            roundtrip(&gates::u3(a, 0.9 * a, -1.3 * a));
        }
    }

    #[test]
    fn products_roundtrip() {
        let m = &(&gates::h() * &gates::t()) * &gates::rx(0.77);
        roundtrip(&m);
        let m2 = &(&gates::rz(2.1) * &gates::ry(-0.4)) * &gates::s();
        roundtrip(&m2);
    }

    #[test]
    fn theta_zero_and_pi_edge_cases() {
        roundtrip(&gates::rz(1.0)); // θ = 0 family
        roundtrip(&gates::x()); // θ = π family
        let xish = &gates::x() * &gates::p(0.6);
        roundtrip(&xish);
    }

    fn zyx_roundtrip(m: &Matrix) {
        let a = decompose_zyx(m);
        assert!(
            a.to_matrix().approx_eq(m, 1e-9),
            "zyx roundtrip failed: {a:?} for {m:?}"
        );
    }

    #[test]
    fn zyx_named_gates_roundtrip() {
        for m in [
            gates::id(),
            gates::x(),
            gates::y(),
            gates::z(),
            gates::h(),
            gates::s(),
            gates::t(),
            gates::sdg(),
        ] {
            zyx_roundtrip(&m);
        }
    }

    #[test]
    fn zyx_rotations_and_products_roundtrip() {
        for k in 0..24 {
            let a = k as f64 * 0.47 - 5.5;
            zyx_roundtrip(&gates::rx(a));
            zyx_roundtrip(&gates::ry(a));
            zyx_roundtrip(&gates::rz(a));
            zyx_roundtrip(&gates::u3(a, 0.6 * a, -1.1 * a));
        }
        zyx_roundtrip(&(&(&gates::h() * &gates::t()) * &gates::rx(0.9)));
    }

    #[test]
    fn zyx_gimbal_lock_cases() {
        use std::f64::consts::FRAC_PI_2;
        zyx_roundtrip(&gates::ry(FRAC_PI_2));
        zyx_roundtrip(&gates::ry(-FRAC_PI_2));
        zyx_roundtrip(&(&gates::ry(FRAC_PI_2) * &gates::rz(0.8)));
    }

    #[test]
    fn zyx_pure_rotations_recover_axis_angle() {
        let a = decompose_zyx(&gates::rx(0.7));
        assert!((a.x - 0.7).abs() < 1e-9 && a.y.abs() < 1e-9 && a.z.abs() < 1e-9);
        let a = decompose_zyx(&gates::rz(-1.2));
        assert!((a.z + 1.2).abs() < 1e-9 && a.x.abs() < 1e-9 && a.y.abs() < 1e-9);
    }

    #[test]
    fn normalize_angle_range() {
        use std::f64::consts::PI;
        assert!((normalize_angle(3.0 * PI) - PI).abs() < TOL);
        assert!((normalize_angle(-3.0 * PI) - PI).abs() < TOL);
        assert!(normalize_angle(0.5).abs() - 0.5 < TOL);
    }

    #[test]
    fn identity_detection() {
        assert!(is_identity_u3(0.0, 0.3, -0.3, 1e-9));
        assert!(!is_identity_u3(0.1, 0.0, 0.0, 1e-9));
        assert!(is_identity_u3(std::f64::consts::TAU, 0.0, 0.0, 1e-9));
    }
}
