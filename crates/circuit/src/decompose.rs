//! Standard gate decompositions.
//!
//! These are the textbook identities the nativizer chains together:
//! `CX = (I⊗H)·CZ·(I⊗H)`, the 6-CNOT Toffoli, `SWAP = 3×CX`, and the
//! 2-CNOT controlled-RZ. Every decomposition is unit-tested for exact
//! unitary equivalence (up to global phase).

use crate::{Circuit, Gate, Instruction};

/// Expands one instruction into an equivalent sequence over simpler gates.
/// Gates that are already elementary are returned unchanged.
pub fn decompose_instruction(instr: &Instruction) -> Vec<Instruction> {
    let q = &instr.qubits;
    match instr.gate {
        Gate::Cx => vec![
            Instruction::new(Gate::H, vec![q[1]]),
            Instruction::new(Gate::Cz, vec![q[0], q[1]]),
            Instruction::new(Gate::H, vec![q[1]]),
        ],
        Gate::Swap => vec![
            Instruction::new(Gate::Cx, vec![q[0], q[1]]),
            Instruction::new(Gate::Cx, vec![q[1], q[0]]),
            Instruction::new(Gate::Cx, vec![q[0], q[1]]),
        ],
        Gate::Crz(theta) => vec![
            Instruction::new(Gate::Rz(theta / 2.0), vec![q[1]]),
            Instruction::new(Gate::Cx, vec![q[0], q[1]]),
            Instruction::new(Gate::Rz(-theta / 2.0), vec![q[1]]),
            Instruction::new(Gate::Cx, vec![q[0], q[1]]),
        ],
        Gate::Ccx => ccx_to_cx(q[0], q[1], q[2]),
        Gate::Ccz => {
            // CCZ = (I⊗I⊗H) · CCX · (I⊗I⊗H)
            let mut seq = vec![Instruction::new(Gate::H, vec![q[2]])];
            seq.extend(ccx_to_cx(q[0], q[1], q[2]));
            seq.push(Instruction::new(Gate::H, vec![q[2]]));
            seq
        }
        Gate::CnZ(n) => cnz_to_elementary(q, n),
        _ => vec![instr.clone()],
    }
}

/// The standard 6-CNOT Toffoli decomposition (Nielsen & Chuang Fig. 4.9).
fn ccx_to_cx(a: usize, b: usize, c: usize) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::H, vec![c]),
        Instruction::new(Gate::Cx, vec![b, c]),
        Instruction::new(Gate::Tdg, vec![c]),
        Instruction::new(Gate::Cx, vec![a, c]),
        Instruction::new(Gate::T, vec![c]),
        Instruction::new(Gate::Cx, vec![b, c]),
        Instruction::new(Gate::Tdg, vec![c]),
        Instruction::new(Gate::Cx, vec![a, c]),
        Instruction::new(Gate::T, vec![b]),
        Instruction::new(Gate::T, vec![c]),
        Instruction::new(Gate::H, vec![c]),
        Instruction::new(Gate::Cx, vec![a, b]),
        Instruction::new(Gate::T, vec![a]),
        Instruction::new(Gate::Tdg, vec![b]),
        Instruction::new(Gate::Cx, vec![a, b]),
    ]
}

/// Recursive multi-controlled-Z lowering: `CⁿZ` on `n+1` qubits becomes
/// `CRZ`-ladder style phase gadgets. For `n ≤ 2` the native decompositions
/// apply; larger `n` uses the standard recursion
/// `CⁿZ = (CRZ chain)` via controlled-phase splitting.
fn cnz_to_elementary(q: &[usize], n: usize) -> Vec<Instruction> {
    match n {
        1 => vec![Instruction::new(Gate::Cz, vec![q[0], q[1]])],
        2 => vec![Instruction::new(Gate::Ccz, vec![q[0], q[1], q[2]])],
        _ => {
            // C^nZ(q0..qn) = phase-gadget recursion:
            //   C^nZ = (I ⊗ C^{n-1}P(π/2-gadget)) using
            //   CP(θ) split: CP on (a, rest) = P(θ/2) a; CX; P(-θ/2); CX; ...
            // We use the textbook linear recursion with CRZ-like splitting:
            //   C^nZ = C^{n-1}P(π) on the last n qubits controlled by q0
            // implemented as:
            //   C^{n-1}RZ(π/2) [on q1..qn]
            //   CX q0,q1-chain conjugation
            // For practical purposes here (n ≤ a few), expand via the
            // standard identity:
            //   C^nZ = C^{n-1}Z-controlled phase using one ancilla-free
            //   quadratic construction of Barenco et al.
            barenco_cnz(q)
        }
    }
}

/// Ancilla-free recursive construction for `CⁿZ` with `n ≥ 3`, via the
/// textbook controlled-phase split
/// `CᵏP(θ) = CP_{cₖ,t}(θ/2) · C^{k-1}X(c₁..cₖ₋₁→cₖ) · CP_{cₖ,t}(-θ/2) ·
/// C^{k-1}X(c₁..cₖ₋₁→cₖ) · C^{k-1}P_{c₁..cₖ₋₁,t}(θ/2)`, with
/// `CᵏX = H·CᵏP(π)·H`. Exponential in `n` but only exercised for the small
/// `n` appearing in tests — Max-3SAT needs at most `n = 2`.
fn barenco_cnz(q: &[usize]) -> Vec<Instruction> {
    /// Controlled-phase of angle θ on `target` with the given controls.
    fn emit_cp(controls: &[usize], target: usize, theta: f64, out: &mut Vec<Instruction>) {
        match controls.len() {
            0 => out.push(Instruction::new(Gate::P(theta), vec![target])),
            1 => {
                // CP(θ) = P(θ/2) t; CX c,t; P(-θ/2) t; CX c,t; P(θ/2) c
                let c = controls[0];
                out.push(Instruction::new(Gate::P(theta / 2.0), vec![target]));
                out.push(Instruction::new(Gate::Cx, vec![c, target]));
                out.push(Instruction::new(Gate::P(-theta / 2.0), vec![target]));
                out.push(Instruction::new(Gate::Cx, vec![c, target]));
                out.push(Instruction::new(Gate::P(theta / 2.0), vec![c]));
            }
            _ => {
                let (last, rest) = controls.split_last().expect("non-empty");
                emit_cp(&[*last], target, theta / 2.0, out);
                emit_mcx(rest, *last, out);
                emit_cp(&[*last], target, -theta / 2.0, out);
                emit_mcx(rest, *last, out);
                emit_cp(rest, target, theta / 2.0, out);
            }
        }
    }

    /// Multi-controlled X.
    fn emit_mcx(controls: &[usize], target: usize, out: &mut Vec<Instruction>) {
        match controls.len() {
            0 => out.push(Instruction::new(Gate::X, vec![target])),
            1 => out.push(Instruction::new(Gate::Cx, vec![controls[0], target])),
            2 => out.push(Instruction::new(
                Gate::Ccx,
                vec![controls[0], controls[1], target],
            )),
            _ => {
                // CᵏX = H t · CᵏP(π) · H t; emit_cp recurses with k-1
                // controls in its mcx calls, so this terminates.
                out.push(Instruction::new(Gate::H, vec![target]));
                emit_cp(controls, target, std::f64::consts::PI, out);
                out.push(Instruction::new(Gate::H, vec![target]));
            }
        }
    }

    let (target, controls) = q.split_last().expect("CnZ has at least two qubits");
    let mut out = Vec::new();
    emit_cp(controls, *target, std::f64::consts::PI, &mut out);
    out
}

/// Applies [`decompose_instruction`] across a circuit until it reaches a
/// fixpoint over the elementary set `{1-qubit, CZ, CX}` (keeping `CCZ` if
/// `keep_ccz` is set, as the FPQA backend supports it natively).
pub fn decompose_circuit(circuit: &Circuit, keep_ccz: bool) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.operations() {
        match op {
            crate::Operation::Gate(instr) => {
                let mut stack = vec![instr.clone()];
                while let Some(i) = stack.pop() {
                    let elementary = match i.gate {
                        Gate::Cx | Gate::Cz => true,
                        Gate::Ccz if keep_ccz => true,
                        ref g => g.num_qubits() == 1,
                    };
                    if elementary {
                        out.push(i.gate.clone(), &i.qubits);
                    } else {
                        // push expansion in reverse so it pops in order
                        for e in decompose_instruction(&i).into_iter().rev() {
                            stack.push(e);
                        }
                    }
                }
            }
            other => {
                out.push_op(other.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::equiv;

    const TOL: f64 = 1e-9;

    fn assert_equiv(original: &Circuit, decomposed: &Circuit) {
        let e = equiv::compare(&original.unitary(), &decomposed.unitary(), TOL);
        assert!(e.is_equivalent(), "decomposition changed semantics: {e:?}");
    }

    #[test]
    fn cx_via_cz() {
        let instr = Instruction::new(Gate::Cx, vec![0, 1]);
        let seq = decompose_instruction(&instr);
        assert!(seq.iter().all(|i| matches!(i.gate, Gate::H | Gate::Cz)));
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let mut d = Circuit::new(2);
        for i in seq {
            d.push(i.gate.clone(), &i.qubits);
        }
        assert_equiv(&c, &d);
    }

    #[test]
    fn swap_via_cx() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let d = decompose_circuit(&c, false);
        assert_equiv(&c, &d);
    }

    #[test]
    fn crz_via_cx() {
        let mut c = Circuit::new(2);
        c.push(Gate::Crz(0.77), &[0, 1]);
        let d = decompose_circuit(&c, false);
        assert_equiv(&c, &d);
    }

    #[test]
    fn ccx_six_cnot() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let d = decompose_circuit(&c, false);
        assert_eq!(
            d.instructions()
                .filter(|i| i.gate.num_qubits() == 2)
                .count(),
            6,
            "standard Toffoli decomposition uses exactly 6 CNOTs"
        );
        assert_equiv(&c, &d);
    }

    #[test]
    fn ccz_with_and_without_native_support() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let native = decompose_circuit(&c, true);
        assert_eq!(native.gate_count(), 1);
        let lowered = decompose_circuit(&c, false);
        assert!(lowered.gate_count() > 1);
        assert_equiv(&c, &lowered);
    }

    #[test]
    fn ccx_on_permuted_qubits() {
        let mut c = Circuit::new(4);
        c.ccx(3, 1, 0);
        let d = decompose_circuit(&c, false);
        assert_equiv(&c, &d);
    }

    #[test]
    fn c3z_lowering_is_correct() {
        let mut c = Circuit::new(4);
        c.push(Gate::CnZ(3), &[0, 1, 2, 3]);
        let d = decompose_circuit(&c, true);
        assert!(d.instructions().all(|i| i.gate.num_qubits() <= 3));
        assert_equiv(&c, &d);
    }

    #[test]
    fn nested_decomposition_terminates() {
        let mut c = Circuit::new(3);
        c.swap(0, 2).ccx(0, 1, 2).cx(1, 2);
        let d = decompose_circuit(&c, false);
        assert!(d
            .instructions()
            .all(|i| i.gate.num_qubits() == 1 || matches!(i.gate, Gate::Cx | Gate::Cz)));
        assert_equiv(&c, &d);
    }
}
