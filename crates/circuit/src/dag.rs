//! Dependency-DAG view of a circuit.
//!
//! wQasm's logical-gate instructions "can be executed in parallel if their
//! dependencies are met and they do not share qubits, following the order
//! dictated by a dependency graph" (paper §4.2). This module computes that
//! graph and its ASAP layering, which the schedulers and the parallelism
//! analysis use.

use crate::{Circuit, Instruction, Operation};

/// A dependency DAG over the unitary instructions of a circuit.
#[derive(Clone, Debug)]
pub struct DependencyDag {
    nodes: Vec<Instruction>,
    /// `preds[i]` lists node indices that must run before node `i`.
    preds: Vec<Vec<usize>>,
    /// `succs[i]` lists node indices that depend on node `i`.
    succs: Vec<Vec<usize>>,
}

impl DependencyDag {
    /// Builds the DAG of a circuit: instruction B depends on the closest
    /// earlier instruction A touching any common qubit. Barriers introduce
    /// dependencies across their scope; measurements are excluded (they
    /// terminate a wire).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut nodes = Vec::new();
        let mut preds: Vec<Vec<usize>> = Vec::new();
        let mut succs: Vec<Vec<usize>> = Vec::new();
        // Last node to touch each qubit; barriers reset to a synthetic "all"
        // dependency by pointing every wire at the latest frontier.
        let mut last_on: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

        for op in circuit.operations() {
            match op {
                Operation::Gate(instr) => {
                    let id = nodes.len();
                    nodes.push(instr.clone());
                    preds.push(Vec::new());
                    succs.push(Vec::new());
                    for &q in &instr.qubits {
                        if let Some(p) = last_on[q] {
                            if !preds[id].contains(&p) {
                                preds[id].push(p);
                                succs[p].push(id);
                            }
                        }
                        last_on[q] = Some(id);
                    }
                }
                Operation::Barrier(scope) => {
                    // A barrier makes every later op on covered wires depend
                    // on all earlier ops on covered wires. We conservatively
                    // model it by making all covered wires point at every
                    // frontier node in the scope.
                    let covered: Vec<usize> = if scope.is_empty() {
                        (0..circuit.num_qubits()).collect()
                    } else {
                        scope.clone()
                    };
                    let frontier: Vec<usize> = covered.iter().filter_map(|&q| last_on[q]).collect();
                    if let Some(&max) = frontier.iter().max() {
                        for &q in &covered {
                            last_on[q] = Some(max);
                        }
                        // Ensure the chosen representative depends on the
                        // rest of the frontier so ordering is preserved.
                        for &fnode in &frontier {
                            if fnode != max && !preds[max].contains(&fnode) {
                                preds[max].push(fnode);
                                succs[fnode].push(max);
                            }
                        }
                    }
                }
                Operation::Measure(_) => {}
            }
        }
        DependencyDag {
            nodes,
            preds,
            succs,
        }
    }

    /// Number of nodes (unitary instructions).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The instruction at a node index.
    pub fn instruction(&self, id: usize) -> &Instruction {
        &self.nodes[id]
    }

    /// Direct predecessors of a node.
    pub fn predecessors(&self, id: usize) -> &[usize] {
        &self.preds[id]
    }

    /// Direct successors of a node.
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.succs[id]
    }

    /// ASAP layering: each layer is a set of node indices that can execute
    /// simultaneously (no shared qubits, all dependencies satisfied).
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut level = vec![0usize; n];
        for id in 0..n {
            // preds always have smaller indices (circuit order), so a single
            // forward pass computes longest-path levels.
            level[id] = self.preds[id]
                .iter()
                .map(|&p| level[p] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut layers = vec![Vec::new(); depth];
        for id in 0..n {
            layers[level[id]].push(id);
        }
        layers
    }

    /// Longest dependency chain length (the DAG's critical path = circuit
    /// depth restricted to unitary instructions).
    pub fn critical_path_len(&self) -> usize {
        self.layers().len()
    }

    /// Average number of instructions per layer — the parallelism the
    /// hardware could exploit with unlimited simultaneous gates.
    pub fn average_parallelism(&self) -> f64 {
        let layers = self.layers();
        if layers.is_empty() {
            return 0.0;
        }
        self.len() as f64 / layers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Circuit;

    #[test]
    fn independent_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.layers(), vec![vec![0, 1, 2, 3]]);
        assert_eq!(dag.average_parallelism(), 4.0);
    }

    #[test]
    fn chained_gates_stack_layers() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.critical_path_len(), 3);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn disjoint_two_qubit_gates_parallelize() {
        let mut c = Circuit::new(4);
        c.cz(0, 1).cz(2, 3).cz(1, 2);
        let dag = DependencyDag::from_circuit(&c);
        let layers = dag.layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0], vec![0, 1]);
        assert_eq!(layers[1], vec![2]);
    }

    #[test]
    fn barrier_orders_across_wires() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.barrier();
        c.h(1);
        let dag = DependencyDag::from_circuit(&c);
        // h(1) must come after h(0) because of the barrier.
        assert_eq!(dag.predecessors(1), &[0]);
    }

    #[test]
    fn measurements_are_not_nodes() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let dag = DependencyDag::from_circuit(&c);
        assert_eq!(dag.len(), 1);
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let dag = DependencyDag::from_circuit(&Circuit::new(3));
        assert!(dag.is_empty());
        assert_eq!(dag.layers().len(), 0);
        assert_eq!(dag.average_parallelism(), 0.0);
    }
}
