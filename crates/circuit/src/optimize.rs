//! Peephole optimizations on native circuits.
//!
//! These run after nativization and before backend-specific passes:
//! cancellation of adjacent self-inverse entanglers (`CZ·CZ = I`,
//! `CCZ·CCZ = I`) and removal of identity `U3` rotations. Single-qubit
//! fusion already happens during nativization; this pass catches the
//! cancellations fusion exposes.

use crate::euler::is_identity_u3;
use crate::{Circuit, Gate, Operation};

/// Statistics reported by [`peephole`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Entangler pairs removed (each removes two instructions).
    pub cancelled_pairs: usize,
    /// Identity single-qubit rotations dropped.
    pub dropped_identities: usize,
}

/// Applies peephole rules until fixpoint, returning the optimized circuit
/// and statistics.
///
/// # Examples
///
/// ```
/// use weaver_circuit::{optimize, Circuit};
/// let mut c = Circuit::new(2);
/// c.cz(0, 1).cz(1, 0); // CZ is symmetric: this pair cancels
/// let (opt, stats) = optimize::peephole(&c);
/// assert_eq!(opt.gate_count(), 0);
/// assert_eq!(stats.cancelled_pairs, 1);
/// ```
pub fn peephole(circuit: &Circuit) -> (Circuit, OptStats) {
    let mut stats = OptStats::default();
    let mut ops: Vec<Operation> = circuit.operations().to_vec();

    loop {
        let mut changed = false;

        // Drop identity U3 / zero-angle rotations.
        ops.retain(|op| {
            if let Operation::Gate(i) = op {
                let drop = match i.gate {
                    Gate::U3(t, p, l) => is_identity_u3(t, p, l, 1e-12),
                    Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::P(a) | Gate::Crz(a) => {
                        crate::euler::normalize_angle(a).abs() <= 1e-12
                    }
                    _ => false,
                };
                if drop {
                    stats.dropped_identities += 1;
                    changed = true;
                    return false;
                }
            }
            true
        });

        // Cancel adjacent self-inverse entanglers on the same qubit set with
        // no intervening operation touching those qubits.
        let mut to_remove: Vec<usize> = Vec::new();
        'outer: for idx in 0..ops.len() {
            if to_remove.contains(&idx) {
                continue;
            }
            let Operation::Gate(a) = &ops[idx] else {
                continue;
            };
            if !matches!(a.gate, Gate::Cz | Gate::Ccz | Gate::Cx | Gate::Swap) {
                continue;
            }
            for (jdx, op) in ops.iter().enumerate().skip(idx + 1) {
                if to_remove.contains(&jdx) {
                    continue;
                }
                let blocks = match op {
                    Operation::Gate(b) => {
                        let same_set = b.gate == a.gate
                            && if a.gate.is_symmetric() {
                                let mut x = a.qubits.clone();
                                let mut y = b.qubits.clone();
                                x.sort_unstable();
                                y.sort_unstable();
                                x == y
                            } else {
                                a.qubits == b.qubits
                            };
                        if same_set {
                            to_remove.push(idx);
                            to_remove.push(jdx);
                            stats.cancelled_pairs += 1;
                            changed = true;
                            continue 'outer;
                        }
                        b.qubits.iter().any(|q| a.qubits.contains(q))
                    }
                    Operation::Measure(q) => a.qubits.contains(q),
                    Operation::Barrier(scope) => {
                        scope.is_empty() || scope.iter().any(|q| a.qubits.contains(q))
                    }
                };
                if blocks {
                    continue 'outer;
                }
            }
        }
        if !to_remove.is_empty() {
            to_remove.sort_unstable();
            for idx in to_remove.into_iter().rev() {
                ops.remove(idx);
            }
        }

        if !changed {
            break;
        }
    }

    let mut out = Circuit::new(circuit.num_qubits());
    for op in ops {
        out.push_op(op);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::{equiv, Matrix};

    const TOL: f64 = 1e-9;

    #[test]
    fn cancels_adjacent_cz() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let (o, s) = peephole(&c);
        assert_eq!(o.gate_count(), 0);
        assert_eq!(s.cancelled_pairs, 1);
    }

    #[test]
    fn symmetric_gate_cancel_with_swapped_operands() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2).ccz(2, 0, 1);
        let (o, _) = peephole(&c);
        assert_eq!(o.gate_count(), 0);
    }

    #[test]
    fn cx_requires_same_orientation() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let (o, s) = peephole(&c);
        assert_eq!(o.gate_count(), 2, "reversed CX must not cancel");
        assert_eq!(s.cancelled_pairs, 0);
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).h(0).cz(0, 1);
        let (o, s) = peephole(&c);
        assert_eq!(o.gate_count(), 3);
        assert_eq!(s.cancelled_pairs, 0);
    }

    #[test]
    fn unrelated_gate_does_not_block() {
        let mut c = Circuit::new(3);
        c.cz(0, 1).h(2).cz(1, 0);
        let (o, s) = peephole(&c);
        assert_eq!(o.gate_count(), 1);
        assert_eq!(s.cancelled_pairs, 1);
        let e = equiv::compare(&c.unitary(), &o.unitary(), TOL);
        assert!(e.is_equivalent());
    }

    #[test]
    fn drops_zero_rotations() {
        let mut c = Circuit::new(1);
        c.rz(0.0, 0).rx(std::f64::consts::TAU, 0).h(0);
        let (o, s) = peephole(&c);
        // rz(0) drops; rx(2π) = -I is identity up to phase, angle normalizes to 0.
        assert_eq!(o.gate_count(), 1);
        assert_eq!(s.dropped_identities, 2);
    }

    #[test]
    fn cascading_cancellation_via_fixpoint() {
        let mut c = Circuit::new(2);
        // cz cz cz cz -> all cancel across iterations
        c.cz(0, 1).cz(0, 1).cz(0, 1).cz(0, 1);
        let (o, s) = peephole(&c);
        assert_eq!(o.gate_count(), 0);
        assert_eq!(s.cancelled_pairs, 2);
    }

    #[test]
    fn preserves_semantics_on_mixed_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).cz(0, 1).ccz(0, 1, 2).rz(0.0, 1).cx(1, 2);
        let (o, _) = peephole(&c);
        let e = equiv::compare(&c.unitary(), &o.unitary(), TOL);
        assert!(e.is_equivalent());
        assert!(o.gate_count() < c.gate_count());
    }

    #[test]
    fn identity_on_empty_circuit() {
        let c = Circuit::new(2);
        let (o, s) = peephole(&c);
        assert_eq!(o.gate_count(), 0);
        assert_eq!(s, OptStats::default());
        assert!(equiv::compare(&o.unitary(), &Matrix::identity(4), TOL).is_equivalent());
    }
}
