//! Quantum circuit intermediate representation for the Weaver compiler
//! framework.
//!
//! This crate is the hardware-agnostic layer of the stack (paper §3a):
//!
//! * [`Gate`] — the gate vocabulary, including the FPQA-native `CⁿZ` family,
//! * [`Circuit`] / [`Instruction`] / [`Operation`] — the ordered IR,
//! * [`DependencyDag`] — the dependency graph that defines legal parallelism,
//! * [`euler`] — Euler-angle (`U3`) extraction for 1-qubit fusion,
//! * [`decompose`] — textbook gate decompositions,
//! * [`native`] — lowering to the native basis `{U3, CZ}` (± `CCZ`),
//! * [`optimize`] — peephole cleanup after lowering.
//!
//! # Example
//!
//! Build a QAOA-style fragment, nativize it for the FPQA path, and confirm
//! the lowering is equivalence-preserving:
//!
//! ```
//! use weaver_circuit::{native, Circuit, NativeBasis};
//! use weaver_simulator::equiv;
//!
//! let mut c = Circuit::new(3);
//! c.h(0).h(1).h(2);
//! c.ccz(0, 1, 2);
//! c.cx(0, 1).rz(0.8, 1).cx(0, 1);
//!
//! let nativized = native::nativize(&c, NativeBasis::U3CzCcz);
//! assert!(equiv::compare(&c.unitary(), &nativized.unitary(), 1e-9).is_equivalent());
//! ```

#![warn(missing_docs)]

mod circuit;
mod dag;
pub mod decompose;
pub mod euler;
mod gate;
pub mod native;
pub mod optimize;

pub use circuit::{Circuit, Instruction, Operation};
pub use dag::DependencyDag;
pub use gate::Gate;
pub use native::NativeBasis;
