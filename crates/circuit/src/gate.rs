//! The gate vocabulary of the Weaver IR.
//!
//! The set mirrors what the paper's toolchain manipulates: the nativization
//! basis `{U3, CZ}` (§7), the FPQA-native multi-controlled-Z family produced
//! by Rydberg pulses, and the common algorithm-level gates (`H`, rotations,
//! `CX`, `CCX`, …) that appear in QAOA circuits before lowering.

use std::fmt;
use weaver_simulator::{gates as mat, Matrix};

/// A quantum gate (unitary operation). Qubit arity is intrinsic to the
/// variant; the qubits it acts on live in
/// [`Instruction`](crate::Instruction).
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = √Z.
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T = √S.
    T,
    /// T†.
    Tdg,
    /// Rotation about X by the contained angle (radians).
    Rx(f64),
    /// Rotation about Y.
    Ry(f64),
    /// Rotation about Z.
    Rz(f64),
    /// Phase gate `P(λ) = diag(1, e^{iλ})`.
    P(f64),
    /// Generic single-qubit gate `U3(θ, φ, λ)` (OpenQASM convention).
    U3(f64, f64, f64),
    /// Controlled-X; qubit order `[control, target]`.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled-RZ; qubit order `[control, target]`.
    Crz(f64),
    /// SWAP.
    Swap,
    /// Toffoli; qubit order `[control, control, target]`.
    Ccx,
    /// Doubly-controlled Z (symmetric) — FPQA-native via Rydberg pulse.
    Ccz,
    /// `n`-controlled Z on `n + 1` qubits (`CnZ(1) ≡ Cz`, `CnZ(2) ≡ Ccz`).
    CnZ(usize),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::P(_)
            | Gate::U3(..) => 1,
            Gate::Cx | Gate::Cz | Gate::Crz(_) | Gate::Swap => 2,
            Gate::Ccx | Gate::Ccz => 3,
            Gate::CnZ(n) => n + 1,
        }
    }

    /// Lower-case OpenQASM-style mnemonic.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::P(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Crz(_) => "crz",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Ccz => "ccz",
            Gate::CnZ(_) => "cnz",
        }
    }

    /// The gate's unitary matrix (`2^k × 2^k`).
    pub fn matrix(&self) -> Matrix {
        match *self {
            Gate::X => mat::x(),
            Gate::Y => mat::y(),
            Gate::Z => mat::z(),
            Gate::H => mat::h(),
            Gate::S => mat::s(),
            Gate::Sdg => mat::sdg(),
            Gate::T => mat::t(),
            Gate::Tdg => mat::tdg(),
            Gate::Rx(t) => mat::rx(t),
            Gate::Ry(t) => mat::ry(t),
            Gate::Rz(t) => mat::rz(t),
            Gate::P(l) => mat::p(l),
            Gate::U3(t, p, l) => mat::u3(t, p, l),
            Gate::Cx => mat::cx(),
            Gate::Cz => mat::cz(),
            Gate::Crz(t) => mat::crz(t),
            Gate::Swap => mat::swap(),
            Gate::Ccx => mat::ccx(),
            Gate::Ccz => mat::ccz(),
            Gate::CnZ(n) => mat::cnz(n),
        }
    }

    /// The inverse gate, as a gate (not a matrix).
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::P(l) => Gate::P(-l),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            Gate::Crz(t) => Gate::Crz(-t),
            ref g => g.clone(), // self-inverse gates
        }
    }

    /// Whether the gate is diagonal in the computational basis (commutes
    /// with every other diagonal gate).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::P(_)
                | Gate::Cz
                | Gate::Crz(_)
                | Gate::Ccz
                | Gate::CnZ(_)
        )
    }

    /// Whether all qubit operands are interchangeable (e.g. `CZ`, `CCZ`).
    pub fn is_symmetric(&self) -> bool {
        matches!(self, Gate::Cz | Gate::Ccz | Gate::CnZ(_) | Gate::Swap)
    }

    /// The rotation/phase parameters of the gate, if any.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) | Gate::Crz(t) => vec![t],
            Gate::U3(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::P(t) | Gate::Crz(t) => {
                write!(f, "{}({:.6})", self.name(), t)
            }
            Gate::U3(t, p, l) => write!(f, "u3({t:.6},{p:.6},{l:.6})"),
            Gate::CnZ(n) => write!(f, "c{n}z"),
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::equiv;

    const TOL: f64 = 1e-10;

    #[test]
    fn arity_matches_matrix_dimension() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::Rz(0.3),
            Gate::U3(0.1, 0.2, 0.3),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ccx,
            Gate::Ccz,
            Gate::CnZ(3),
        ];
        for g in gates {
            assert_eq!(g.matrix().rows(), 1 << g.num_qubits(), "{g}");
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.9),
            Gate::P(0.4),
            Gate::U3(0.5, 1.5, -0.5),
            Gate::Cx,
            Gate::Crz(0.8),
            Gate::Ccz,
        ];
        for g in gates {
            let m = &g.matrix() * &g.inverse().matrix();
            let id = Matrix::identity(m.rows());
            assert!(
                equiv::compare(&m, &id, TOL).is_equivalent(),
                "inverse failed for {g}"
            );
        }
    }

    #[test]
    fn diagonal_gates_have_diagonal_matrices() {
        for g in [
            Gate::Z,
            Gate::T,
            Gate::Rz(0.6),
            Gate::Cz,
            Gate::Ccz,
            Gate::CnZ(3),
        ] {
            assert!(g.is_diagonal());
            let m = g.matrix();
            for r in 0..m.rows() {
                for c in 0..m.cols() {
                    if r != c {
                        assert!(m[(r, c)].is_zero(TOL), "{g} not diagonal at ({r},{c})");
                    }
                }
            }
        }
        assert!(!Gate::X.is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
    }

    #[test]
    fn cnz_generalizes_cz_and_ccz() {
        assert!(Gate::CnZ(1).matrix().approx_eq(&Gate::Cz.matrix(), TOL));
        assert!(Gate::CnZ(2).matrix().approx_eq(&Gate::Ccz.matrix(), TOL));
    }

    #[test]
    fn display_includes_parameters() {
        assert_eq!(Gate::X.to_string(), "x");
        assert!(Gate::Rz(0.5).to_string().starts_with("rz(0.5"));
        assert_eq!(Gate::CnZ(4).to_string(), "c4z");
    }
}
