//! The quantum circuit IR: an ordered list of operations over a register.

use crate::Gate;
use std::fmt;
use weaver_simulator::{Matrix, State, UnitaryBuilder};

/// A gate bound to concrete qubit operands.
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    /// Operand qubits, length equal to `gate.num_qubits()`. For controlled
    /// gates the controls come first.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, validating operand count and distinctness.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the gate arity or if a
    /// qubit repeats.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {gate} expects {} operands, got {}",
            gate.num_qubits(),
            qubits.len()
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(q),
                "duplicate operand qubit {q} for gate {gate}"
            );
        }
        Instruction { gate, qubits }
    }

    /// Whether this instruction shares a qubit with another.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.gate)?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q[{q}]")?;
        }
        Ok(())
    }
}

/// One element of a circuit: a unitary instruction, a measurement, or a
/// barrier (scheduling fence).
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// A unitary gate application.
    Gate(Instruction),
    /// Measurement of one qubit into a classical bit of the same index.
    Measure(usize),
    /// Scheduling barrier across the listed qubits (all if empty).
    Barrier(Vec<usize>),
}

impl Operation {
    /// Qubits touched by the operation.
    pub fn qubits(&self) -> &[usize] {
        match self {
            Operation::Gate(i) => &i.qubits,
            Operation::Measure(q) => std::slice::from_ref(q),
            Operation::Barrier(qs) => qs,
        }
    }
}

/// An ordered quantum circuit over a fixed-size register.
///
/// # Examples
///
/// ```
/// use weaver_circuit::{Circuit, Gate};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Register width.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// All operations in order.
    #[inline]
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterator over only the unitary instructions, in order.
    pub fn instructions(&self) -> impl Iterator<Item = &Instruction> {
        self.ops.iter().filter_map(|op| match op {
            Operation::Gate(i) => Some(i),
            _ => None,
        })
    }

    /// Appends a gate application.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range or repeated.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        for &q in qubits {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        self.ops
            .push(Operation::Gate(Instruction::new(gate, qubits.to_vec())));
        self
    }

    /// Appends an already-built operation.
    ///
    /// # Panics
    ///
    /// Panics if any referenced qubit is out of range.
    pub fn push_op(&mut self, op: Operation) -> &mut Self {
        for &q in op.qubits() {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        self.ops.push(op);
        self
    }

    /// Appends a measurement of `qubit`.
    pub fn measure(&mut self, qubit: usize) -> &mut Self {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        self.ops.push(Operation::Measure(qubit));
        self
    }

    /// Appends measurements on every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.ops.push(Operation::Measure(q));
        }
        self
    }

    /// Appends a full barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Operation::Barrier(Vec::new()));
        self
    }

    // ---- convenience builders -------------------------------------------

    /// Appends `H q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q])
    }
    /// Appends `X q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q])
    }
    /// Appends `Y q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q])
    }
    /// Appends `Z q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q])
    }
    /// Appends `RX(θ) q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rx(theta), &[q])
    }
    /// Appends `RY(θ) q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Ry(theta), &[q])
    }
    /// Appends `RZ(θ) q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rz(theta), &[q])
    }
    /// Appends `U3(θ, φ, λ) q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::U3(theta, phi, lambda), &[q])
    }
    /// Appends `S q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S, &[q])
    }
    /// Appends `T q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, &[q])
    }
    /// Appends `P(λ) q`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::P(lambda), &[q])
    }
    /// Appends `CX control, target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx, &[control, target])
    }
    /// Appends `CZ a, b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz, &[a, b])
    }
    /// Appends `SWAP a, b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, &[a, b])
    }
    /// Appends `CCX c0, c1, target`.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push(Gate::Ccx, &[c0, c1, target])
    }
    /// Appends `CCZ a, b, c`.
    pub fn ccz(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.push(Gate::Ccz, &[a, b, c])
    }

    // ---- composition -----------------------------------------------------

    /// Appends all operations of `other` (same register width required).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot extend: register widths differ"
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Returns the adjoint (inverse) circuit: reversed order, inverted gates.
    /// Measurements and barriers are dropped.
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for op in self.ops.iter().rev() {
            if let Operation::Gate(i) = op {
                out.push(i.gate.inverse(), &i.qubits);
            }
        }
        out
    }

    // ---- metrics ----------------------------------------------------------

    /// Number of unitary gate instructions.
    pub fn gate_count(&self) -> usize {
        self.instructions().count()
    }

    /// Number of instructions acting on at least `k` qubits.
    pub fn count_with_arity_at_least(&self, k: usize) -> usize {
        self.instructions()
            .filter(|i| i.gate.num_qubits() >= k)
            .count()
    }

    /// Number of two-qubit instructions.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions()
            .filter(|i| i.gate.num_qubits() == 2)
            .count()
    }

    /// Circuit depth counting every instruction as one time step; barriers
    /// synchronize the qubits they cover.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max_level = 0;
        for op in &self.ops {
            match op {
                Operation::Gate(i) => {
                    let l = i.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
                    for &q in &i.qubits {
                        level[q] = l;
                    }
                    max_level = max_level.max(l);
                }
                Operation::Measure(q) => {
                    level[*q] += 1;
                    max_level = max_level.max(level[*q]);
                }
                Operation::Barrier(qs) => {
                    let scope: Vec<usize> = if qs.is_empty() {
                        (0..self.num_qubits).collect()
                    } else {
                        qs.clone()
                    };
                    let l = scope.iter().map(|&q| level[q]).max().unwrap_or(0);
                    for &q in &scope {
                        level[q] = l;
                    }
                }
            }
        }
        max_level
    }

    // ---- simulation --------------------------------------------------------

    /// The circuit's unitary (ignoring measurements and barriers).
    ///
    /// # Panics
    ///
    /// Panics if the register exceeds [`UnitaryBuilder::MAX_QUBITS`] (see
    /// [`UnitaryBuilder::new`]).
    pub fn unitary(&self) -> Matrix {
        let mut b = UnitaryBuilder::new(self.num_qubits);
        for instr in self.instructions() {
            b.apply(&instr.gate.matrix(), &instr.qubits);
        }
        b.finish()
    }

    /// Simulates the circuit from `|0…0⟩` (ignoring measurements/barriers).
    ///
    /// # Panics
    ///
    /// Panics if the register exceeds 24 qubits.
    pub fn statevector(&self) -> State {
        let mut s = State::zero(self.num_qubits);
        for instr in self.instructions() {
            s.apply(&instr.gate.matrix(), &instr.qubits);
        }
        s
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit({} qubits) {{", self.num_qubits)?;
        for op in &self.ops {
            match op {
                Operation::Gate(i) => writeln!(f, "  {i};")?,
                Operation::Measure(q) => writeln!(f, "  measure q[{q}];")?,
                Operation::Barrier(qs) if qs.is_empty() => writeln!(f, "  barrier;")?,
                Operation::Barrier(qs) => writeln!(f, "  barrier {qs:?};")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::equiv;

    const TOL: f64 = 1e-10;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .ccz(0, 1, 2)
            .rz(0.5, 2)
            .barrier()
            .measure_all();
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_count(), 1);
        assert_eq!(c.count_with_arity_at_least(3), 1);
        assert_eq!(c.operations().len(), 4 + 1 + 3);
    }

    #[test]
    fn depth_of_parallel_vs_serial() {
        let mut parallel = Circuit::new(4);
        parallel.h(0).h(1).h(2).h(3);
        assert_eq!(parallel.depth(), 1);

        let mut serial = Circuit::new(2);
        serial.h(0).cx(0, 1).h(1);
        assert_eq!(serial.depth(), 3);
    }

    #[test]
    fn inverse_reverses_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.7, 0).cx(0, 1).rx(-0.3, 1);
        let mut composed = c.clone();
        composed.extend(&c.inverse());
        let u = composed.unitary();
        assert!(equiv::compare(&u, &Matrix::identity(4), TOL).is_equivalent());
    }

    #[test]
    fn ghz_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let s = c.statevector();
        assert!((s.probability_of(0) - 0.5).abs() < TOL);
        assert!((s.probability_of(7) - 0.5).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(1);
        c.cx(0, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate operand")]
    fn repeated_operand_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx, &[1, 1]);
    }

    #[test]
    fn display_round_readable() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).measure(0);
        let text = c.to_string();
        assert!(text.contains("h q[0]"));
        assert!(text.contains("cz q[0], q[1]"));
        assert!(text.contains("measure q[0]"));
    }

    #[test]
    fn overlap_detection() {
        let a = Instruction::new(Gate::Cx, vec![0, 1]);
        let b = Instruction::new(Gate::H, vec![1]);
        let c = Instruction::new(Gate::H, vec![2]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }
}
