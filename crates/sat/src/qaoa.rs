//! QAOA circuit construction for Max-3SAT (paper §2.1, §5, Fig. 6).
//!
//! The circuit has three parts: Hadamard initialization (mixer ground
//! state), the cost-Hamiltonian evolution `e^{-iγ H_C}` compiled term by
//! term from the [`PhasePolynomial`] via CNOT ladders, and the mixer
//! evolution `RX(2β)`. Weaver's optimization passes (crate `weaver-core`)
//! target the cost-evolution part.

use crate::{Formula, PhasePolynomial};
use weaver_circuit::Circuit;

/// QAOA hyper-parameters: one `(γ, β)` pair per layer.
#[derive(Clone, Debug, PartialEq)]
pub struct QaoaParams {
    /// Per-layer (γ, β) angles.
    pub layers: Vec<(f64, f64)>,
}

impl QaoaParams {
    /// Single-layer parameters (the paper's evaluation uses p = 1 circuits;
    /// the angle choice does not affect compilation metrics).
    pub fn single(gamma: f64, beta: f64) -> Self {
        QaoaParams {
            layers: vec![(gamma, beta)],
        }
    }

    /// Number of layers `p`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Default for QaoaParams {
    /// A conventional p = 1 starting point (γ, β) = (0.7, 0.3).
    fn default() -> Self {
        QaoaParams::single(0.7, 0.3)
    }
}

/// Appends the cost-evolution `e^{-iγ Σ w Z_S}` of a phase polynomial:
/// each term maps to an `RZ(2γw)` conjugated by a CNOT parity ladder
/// (Fig. 6a for quadratic, Fig. 6b for cubic terms).
pub fn append_cost_evolution(circuit: &mut Circuit, poly: &PhasePolynomial, gamma: f64) {
    for (vars, w) in poly.terms() {
        let angle = 2.0 * gamma * w;
        match vars {
            [q] => {
                circuit.rz(angle, *q);
            }
            [a, b] => {
                circuit.cx(*a, *b);
                circuit.rz(angle, *b);
                circuit.cx(*a, *b);
            }
            [a, b, c] => {
                circuit.cx(*a, *c);
                circuit.cx(*b, *c);
                circuit.rz(angle, *c);
                circuit.cx(*b, *c);
                circuit.cx(*a, *c);
            }
            longer => {
                // General parity ladder for degree > 3 (not produced by
                // Max-3SAT but supported for extensibility).
                let target = *longer.last().expect("non-empty term");
                for &q in &longer[..longer.len() - 1] {
                    circuit.cx(q, target);
                }
                circuit.rz(angle, target);
                for &q in longer[..longer.len() - 1].iter().rev() {
                    circuit.cx(q, target);
                }
            }
        }
    }
}

/// Builds the complete QAOA circuit for a Max-3SAT formula: `H`-layer, then
/// per layer the cost evolution and the `RX(2β)` mixer. Measurements are
/// appended when `measure` is set.
///
/// # Examples
///
/// ```
/// use weaver_sat::{generator, qaoa};
/// let f = generator::instance(20, 1);
/// let c = qaoa::build_circuit(&f, &qaoa::QaoaParams::default(), false);
/// assert_eq!(c.num_qubits(), 20);
/// assert!(c.gate_count() > f.num_clauses());
/// ```
pub fn build_circuit(formula: &Formula, params: &QaoaParams, measure: bool) -> Circuit {
    let poly = PhasePolynomial::from_formula(formula);
    let mut circuit = Circuit::new(formula.num_vars());
    for q in 0..formula.num_vars() {
        circuit.h(q);
    }
    for &(gamma, beta) in &params.layers {
        append_cost_evolution(&mut circuit, &poly, gamma);
        for q in 0..formula.num_vars() {
            circuit.rx(2.0 * beta, q);
        }
    }
    if measure {
        circuit.measure_all();
    }
    circuit
}

/// Builds only the cost-evolution circuit of a formula (no init/mixer):
/// the part Weaver's wOptimizer restructures.
pub fn build_cost_circuit(formula: &Formula, gamma: f64) -> Circuit {
    let poly = PhasePolynomial::from_formula(formula);
    let mut circuit = Circuit::new(formula.num_vars());
    append_cost_evolution(&mut circuit, &poly, gamma);
    circuit
}

/// Expected satisfied weight under the circuit's output distribution
/// (exact, via state-vector simulation; ≤ 20 qubits). For unweighted
/// formulas every clause weighs 1, so this is the expected number of
/// satisfied clauses — numerically identical to the pre-weights behavior.
pub fn expected_satisfied(formula: &Formula, circuit: &Circuit) -> f64 {
    let state = circuit.statevector();
    if formula.is_weighted() {
        state
            .probabilities()
            .iter()
            .enumerate()
            .map(|(index, p)| p * formula.weight_satisfied_by_index(index) as f64)
            .sum()
    } else {
        state
            .probabilities()
            .iter()
            .enumerate()
            .map(|(index, p)| p * formula.count_satisfied_by_index(index) as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator, Clause, Lit};
    use weaver_simulator::Complex;

    fn small_formula() -> Formula {
        Formula::new(
            3,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(0), Lit::pos(2)]),
            ],
        )
    }

    #[test]
    fn cost_circuit_is_diagonal_with_correct_phases() {
        let f = small_formula();
        let gamma = 0.37;
        let poly = PhasePolynomial::from_formula(&f);
        let c = build_cost_circuit(&f, gamma);
        let u = c.unitary();
        let dim = u.rows();
        for r in 0..dim {
            for col in 0..dim {
                if r != col {
                    assert!(u[(r, col)].is_zero(1e-10), "off-diagonal at ({r},{col})");
                }
            }
        }
        // Diagonal phase at basis |x⟩ must be e^{-iγ·(poly(x) − constant)}.
        for x in 0..dim {
            let a: Vec<bool> = (0..3).map(|q| (x >> (2 - q)) & 1 == 1).collect();
            let value = poly.eval_bool(&a) - poly.constant;
            let expected = Complex::from_polar(-gamma * value);
            assert!(
                u[(x, x)].approx_eq(expected, 1e-9),
                "phase mismatch at x={x}: {} vs {expected}",
                u[(x, x)]
            );
        }
    }

    #[test]
    fn qaoa_improves_over_uniform_guessing() {
        let f = small_formula();
        let uniform_expectation: f64 = (0..8)
            .map(|i| f.count_satisfied_by_index(i) as f64)
            .sum::<f64>()
            / 8.0;
        // Scan a small parameter grid; QAOA at its best must beat uniform.
        let mut best = 0.0f64;
        for gi in 1..8 {
            for bi in 1..8 {
                let params = QaoaParams::single(gi as f64 * 0.2, bi as f64 * 0.2);
                let c = build_circuit(&f, &params, false);
                best = best.max(expected_satisfied(&f, &c));
            }
        }
        assert!(
            best > uniform_expectation + 0.05,
            "QAOA best {best} did not beat uniform {uniform_expectation}"
        );
    }

    #[test]
    fn weighted_expectation_tracks_effective_weights() {
        // One heavy clause vs one light one: the weighted expectation of the
        // |++⟩ state (uniform distribution) is the average satisfied weight.
        let f = Formula::new(
            2,
            vec![
                Clause::weighted(vec![Lit::pos(0)], 6),
                Clause::weighted(vec![Lit::neg(1)], 2),
            ],
        );
        let mut uniform = Circuit::new(2);
        uniform.h(0).h(1);
        let expected: f64 = (0..4)
            .map(|i| f.weight_satisfied_by_index(i) as f64)
            .sum::<f64>()
            / 4.0;
        assert!((expected_satisfied(&f, &uniform) - expected).abs() < 1e-10);
        // A weighted cost circuit also stays consistent with the phase
        // polynomial: the diagonal phase encodes the weighted objective.
        let poly = PhasePolynomial::from_formula(&f);
        assert!((poly.eval_bool(&[true, false]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn gate_count_scales_with_clauses() {
        let f20 = generator::instance(20, 1);
        let c = build_circuit(&f20, &QaoaParams::default(), true);
        assert_eq!(c.num_qubits(), 20);
        // Each 3-variable clause contributes ≥ 7 terms; ladders add CXs.
        assert!(c.gate_count() > 7 * f20.num_clauses());
        assert!(c.two_qubit_count() > 0);
    }

    #[test]
    fn multi_layer_depth_grows() {
        let f = small_formula();
        let c1 = build_circuit(&f, &QaoaParams::single(0.5, 0.5), false);
        let c2 = build_circuit(
            &f,
            &QaoaParams {
                layers: vec![(0.5, 0.5), (0.3, 0.2)],
            },
            false,
        );
        assert!(c2.depth() > c1.depth());
        assert!(c2.gate_count() > c1.gate_count());
    }

    #[test]
    fn measurement_flag_controls_measures() {
        let f = small_formula();
        let with = build_circuit(&f, &QaoaParams::default(), true);
        let without = build_circuit(&f, &QaoaParams::default(), false);
        assert_eq!(with.operations().len(), without.operations().len() + 3);
    }
}
