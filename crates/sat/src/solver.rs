//! Reference Max-3SAT solvers.
//!
//! These stand in for the classical-side tooling the paper gets from PySAT:
//! an exact branch-and-bound/exhaustive solver for small instances (used to
//! score QAOA output distributions in the examples) and a WalkSAT-style
//! local search that scales to the 250-variable benchmarks.

use crate::Formula;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Max-3SAT solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxSatSolution {
    /// Best assignment found (indexed by variable).
    pub assignment: Vec<bool>,
    /// Number of clauses it satisfies.
    pub satisfied: usize,
    /// Whether the value is provably optimal.
    pub optimal: bool,
}

/// Exhaustively finds the optimum for formulas with at most 24 variables.
///
/// # Panics
///
/// Panics if the formula has more than 24 variables.
pub fn solve_exact(formula: &Formula) -> MaxSatSolution {
    let n = formula.num_vars();
    assert!(n <= 24, "exact solver limited to 24 variables, got {n}");
    let mut best_index = 0usize;
    let mut best = 0usize;
    for index in 0..(1usize << n) {
        // basis_index convention: variable 0 = MSB.
        let sat = formula.count_satisfied_by_index(index);
        if sat > best {
            best = sat;
            best_index = index;
            if best == formula.num_clauses() {
                break;
            }
        }
    }
    let assignment: Vec<bool> = (0..n)
        .map(|q| (best_index >> (n - 1 - q)) & 1 == 1)
        .collect();
    MaxSatSolution {
        assignment,
        satisfied: best,
        optimal: true,
    }
}

/// WalkSAT-style stochastic local search: random restarts, greedy flips with
/// probabilistic noise. Not guaranteed optimal (`optimal = false` unless all
/// clauses end up satisfied).
pub fn solve_walksat(formula: &Formula, max_flips: usize, seed: u64) -> MaxSatSolution {
    let n = formula.num_vars();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let mut best_assignment = assignment.clone();
    let mut best = formula.count_satisfied(&assignment);

    for _ in 0..max_flips {
        if best == formula.num_clauses() {
            break;
        }
        // Pick a random unsatisfied clause.
        let unsat: Vec<usize> = formula
            .clauses()
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.eval(&assignment))
            .map(|(i, _)| i)
            .collect();
        if unsat.is_empty() {
            best = formula.num_clauses();
            best_assignment = assignment.clone();
            break;
        }
        let clause = &formula.clauses()[unsat[rng.gen_range(0..unsat.len())]];
        // With probability p walk randomly; otherwise flip the literal that
        // maximizes the satisfied count.
        let flip_var = if rng.gen_bool(0.3) {
            let lits = clause.lits();
            lits[rng.gen_range(0..lits.len())].var
        } else {
            let mut best_var = clause.lits()[0].var;
            let mut best_gain = usize::MIN;
            for lit in clause.lits() {
                assignment[lit.var] = !assignment[lit.var];
                let score = formula.count_satisfied(&assignment);
                assignment[lit.var] = !assignment[lit.var];
                if score > best_gain {
                    best_gain = score;
                    best_var = lit.var;
                }
            }
            best_var
        };
        assignment[flip_var] = !assignment[flip_var];
        let score = formula.count_satisfied(&assignment);
        if score > best {
            best = score;
            best_assignment = assignment.clone();
        }
    }
    let optimal = best == formula.num_clauses();
    MaxSatSolution {
        assignment: best_assignment,
        satisfied: best,
        optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator, Clause, Formula, Lit};

    fn tiny_unsat() -> Formula {
        // (x0) ∧ (¬x0): max 1 of 2 clauses.
        Formula::new(
            1,
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::neg(0)]),
            ],
        )
    }

    #[test]
    fn exact_on_trivial_instances() {
        let sol = solve_exact(&tiny_unsat());
        assert_eq!(sol.satisfied, 1);
        assert!(sol.optimal);
    }

    #[test]
    fn exact_finds_satisfying_assignment() {
        let f = Formula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::neg(0), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(1), Lit::neg(2)]),
            ],
        );
        let sol = solve_exact(&f);
        assert_eq!(sol.satisfied, 3);
        assert_eq!(f.count_satisfied(&sol.assignment), 3);
    }

    #[test]
    fn exact_on_uf20() {
        let f = generator::instance(20, 1);
        let sol = solve_exact(&f);
        // Random 3-SAT at ratio 4.55 near the phase transition: the optimum
        // satisfies all or nearly all clauses.
        assert!(sol.satisfied >= f.num_clauses() - 3);
        assert_eq!(f.count_satisfied(&sol.assignment), sol.satisfied);
    }

    #[test]
    fn walksat_matches_exact_on_small() {
        let f = generator::instance(20, 2);
        let exact = solve_exact(&f);
        let walk = solve_walksat(&f, 20_000, 42);
        assert!(walk.satisfied <= exact.satisfied);
        assert!(
            walk.satisfied + 2 >= exact.satisfied,
            "walksat {} far below optimum {}",
            walk.satisfied,
            exact.satisfied
        );
    }

    #[test]
    fn walksat_scales_to_large() {
        let f = generator::instance(150, 1);
        let sol = solve_walksat(&f, 5_000, 7);
        assert!(sol.satisfied as f64 >= 0.9 * f.num_clauses() as f64);
        assert_eq!(f.count_satisfied(&sol.assignment), sol.satisfied);
    }

    #[test]
    fn walksat_unsat_never_claims_optimal() {
        let sol = solve_walksat(&tiny_unsat(), 100, 1);
        assert_eq!(sol.satisfied, 1);
        assert!(!sol.optimal);
    }
}
