//! Max-3SAT formula representation.

use std::fmt;

/// A literal: a variable index with optional negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Zero-based variable index.
    pub var: usize,
    /// Whether the literal is negated (`¬x`).
    pub negated: bool,
}

impl Lit {
    /// Positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Lit {
            var,
            negated: false,
        }
    }

    /// Negative literal `¬x_var`.
    pub fn neg(var: usize) -> Self {
        Lit { var, negated: true }
    }

    /// Converts from DIMACS encoding (1-based, sign = negation).
    ///
    /// # Panics
    ///
    /// Panics if `code == 0`.
    pub fn from_dimacs(code: i64) -> Self {
        assert!(code != 0, "DIMACS literal cannot be 0");
        Lit {
            var: (code.unsigned_abs() as usize) - 1,
            negated: code < 0,
        }
    }

    /// Converts to DIMACS encoding.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var + 1) as i64;
        if self.negated {
            -v
        } else {
            v
        }
    }

    /// Evaluates the literal under an assignment (indexed by variable).
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] ^ self.negated
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬x{}", self.var)
        } else {
            write!(f, "x{}", self.var)
        }
    }
}

/// A clause: a disjunction of up to three literals over distinct variables,
/// optionally weighted (weighted MAX-SAT) or hard (partial MAX-SAT).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
    weight: u64,
    hard: bool,
}

impl Clause {
    /// Creates a (soft, weight-1) clause from literals.
    ///
    /// # Panics
    ///
    /// Panics if empty, longer than 3, or if a variable repeats.
    pub fn new(lits: Vec<Lit>) -> Self {
        Self::weighted(lits, 1)
    }

    /// Creates a soft clause with the given weight.
    ///
    /// # Panics
    ///
    /// Panics on the literal conditions of [`Clause::new`], on `weight == 0`,
    /// and on `weight == u64::MAX` (reserved for the hard-clause sentinel in
    /// canonical byte encodings).
    pub fn weighted(lits: Vec<Lit>, weight: u64) -> Self {
        assert!(weight > 0, "clause weight must be positive");
        assert!(weight < u64::MAX, "clause weight u64::MAX is reserved");
        assert!(!lits.is_empty(), "clause cannot be empty");
        assert!(lits.len() <= 3, "Max-3SAT clauses have at most 3 literals");
        for (i, l) in lits.iter().enumerate() {
            assert!(
                !lits[..i].iter().any(|m| m.var == l.var),
                "variable x{} repeats within a clause",
                l.var
            );
        }
        Clause {
            lits,
            weight,
            hard: false,
        }
    }

    /// Creates a hard clause (partial MAX-SAT: must be satisfied).
    ///
    /// # Panics
    ///
    /// Panics on the literal conditions of [`Clause::new`].
    pub fn hard(lits: Vec<Lit>) -> Self {
        let mut c = Self::weighted(lits, 1);
        c.hard = true;
        c
    }

    /// The soft weight (1 unless built via [`Clause::weighted`]).
    /// Meaningless for hard clauses — see [`Formula::effective_weight`].
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Whether the clause is hard (must be satisfied).
    pub fn is_hard(&self) -> bool {
        self.hard
    }

    /// The literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// The distinct variables of the clause.
    pub fn vars(&self) -> impl Iterator<Item = usize> + '_ {
        self.lits.iter().map(|l| l.var)
    }

    /// Whether this clause shares a variable with another.
    pub fn intersects(&self, other: &Clause) -> bool {
        self.lits
            .iter()
            .any(|a| other.lits.iter().any(|b| a.var == b.var))
    }

    /// Evaluates the clause under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(assignment))
    }

    /// Number of negated literals.
    pub fn num_negated(&self) -> usize {
        self.lits.iter().filter(|l| l.negated).count()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A Max-3SAT formula: maximize the number of satisfied clauses.
#[derive(Clone, Debug, PartialEq)]
pub struct Formula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Formula {
    /// Creates a formula over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if any clause references a variable `≥ num_vars`.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for v in c.vars() {
                assert!(v < num_vars, "clause references x{v} ≥ num_vars {num_vars}");
            }
        }
        Formula { num_vars, clauses }
    }

    /// Number of variables (= qubits when compiled to QAOA).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Whether any clause carries a non-unit weight or is hard. Uniform
    /// (weight-1, all-soft) formulas — everything the paper evaluates —
    /// report `false` and behave exactly as before weights existed.
    pub fn is_weighted(&self) -> bool {
        self.clauses.iter().any(|c| c.is_hard() || c.weight() != 1)
    }

    /// Sum of the soft clause weights.
    pub fn soft_weight_sum(&self) -> u64 {
        self.clauses
            .iter()
            .filter(|c| !c.is_hard())
            .map(Clause::weight)
            .sum()
    }

    /// The weight that makes violating a hard clause dominate every soft
    /// trade-off: one more than the total soft weight (the standard partial
    /// MAX-SAT penalty encoding).
    pub fn hard_clause_weight(&self) -> u64 {
        self.soft_weight_sum() + 1
    }

    /// The weight clause `index` contributes to the objective: its soft
    /// weight, or [`Formula::hard_clause_weight`] if it is hard.
    pub fn effective_weight(&self, index: usize) -> u64 {
        let c = &self.clauses[index];
        if c.is_hard() {
            self.hard_clause_weight()
        } else {
            c.weight()
        }
    }

    /// The maximum achievable objective: sum of all effective weights.
    /// Equals [`Formula::num_clauses`] for unweighted formulas.
    pub fn total_weight(&self) -> u64 {
        (0..self.clauses.len())
            .map(|i| self.effective_weight(i))
            .sum()
    }

    /// Canonical byte serialization for content addressing (the batch
    /// engine's artifact-cache keys): the sizes followed by every clause's
    /// length and literals as little-endian DIMACS codes. Two formulas
    /// produce the same bytes iff they are structurally identical — clause
    /// order, literal order, and polarity included. Weighted formulas append
    /// a tagged weights section (hard clauses encode as `u64::MAX`);
    /// weight-1 formulas serialize byte-identically to the pre-weights
    /// format, so existing artifact-cache keys are preserved.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.clauses.len() * 32);
        out.extend((self.num_vars as u64).to_le_bytes());
        out.extend((self.clauses.len() as u64).to_le_bytes());
        for clause in &self.clauses {
            out.extend((clause.lits().len() as u64).to_le_bytes());
            for lit in clause.lits() {
                out.extend(lit.to_dimacs().to_le_bytes());
            }
        }
        if self.is_weighted() {
            out.extend(b"weights\0");
            for clause in &self.clauses {
                let code = if clause.is_hard() {
                    u64::MAX
                } else {
                    clause.weight()
                };
                out.extend(code.to_le_bytes());
            }
        }
        out
    }

    /// Number of clauses satisfied by an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn count_satisfied(&self, assignment: &[bool]) -> usize {
        assert_eq!(
            assignment.len(),
            self.num_vars,
            "assignment length mismatch"
        );
        self.clauses.iter().filter(|c| c.eval(assignment)).count()
    }

    /// Decodes a measurement bitstring (qubit 0 = most significant bit, the
    /// workspace convention) into an assignment and counts satisfied clauses.
    pub fn count_satisfied_by_index(&self, basis_index: usize) -> usize {
        let assignment: Vec<bool> = (0..self.num_vars)
            .map(|q| (basis_index >> (self.num_vars - 1 - q)) & 1 == 1)
            .collect();
        self.count_satisfied(&assignment)
    }

    /// Total effective weight of the clauses satisfied by an assignment —
    /// the weighted MAX-SAT objective. Equals [`Formula::count_satisfied`]
    /// for unweighted formulas.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn satisfied_weight(&self, assignment: &[bool]) -> u64 {
        assert_eq!(
            assignment.len(),
            self.num_vars,
            "assignment length mismatch"
        );
        let hard = self.hard_clause_weight();
        self.clauses
            .iter()
            .filter(|c| c.eval(assignment))
            .map(|c| if c.is_hard() { hard } else { c.weight() })
            .sum()
    }

    /// Decodes a measurement bitstring (qubit 0 = most significant bit) and
    /// scores it with [`Formula::satisfied_weight`].
    pub fn weight_satisfied_by_index(&self, basis_index: usize) -> u64 {
        let assignment: Vec<bool> = (0..self.num_vars)
            .map(|q| (basis_index >> (self.num_vars - 1 - q)) & 1 == 1)
            .collect();
        self.satisfied_weight(&assignment)
    }

    /// Encodes a max-cut instance as weighted MAX-SAT: an edge `(u, v)` is
    /// cut iff `u ≠ v`, i.e. both `(u ∨ v)` and `(¬u ∨ ¬v)` hold. A cut
    /// edge satisfies both clauses, an uncut edge exactly one — maximizing
    /// the satisfied weight maximizes the cut. Weight-1 edges produce
    /// weight-1 clauses, so an unweighted graph lowers to an unweighted
    /// formula.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, zero weights, or vertices `≥ num_vertices`.
    pub fn max_cut(num_vertices: usize, edges: &[(usize, usize, u64)]) -> Self {
        let mut clauses = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            assert!(u != v, "self-loop on vertex {u}");
            clauses.push(Clause::weighted(vec![Lit::pos(u), Lit::pos(v)], w));
            clauses.push(Clause::weighted(vec![Lit::neg(u), Lit::neg(v)], w));
        }
        Formula::new(num_vertices, clauses)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of paper Fig. 5:
    /// (¬x0 ∨ ¬x1 ∨ ¬x2) ∧ (x3 ∨ ¬x4 ∨ x5) ∧ (x2 ∨ x4 ∨ ¬x5)
    pub(crate) fn paper_example() -> Formula {
        Formula::new(
            6,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(3), Lit::neg(4), Lit::pos(5)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(4), Lit::neg(5)]),
            ],
        )
    }

    #[test]
    fn literal_dimacs_roundtrip() {
        for code in [-5i64, -1, 1, 7] {
            assert_eq!(Lit::from_dimacs(code).to_dimacs(), code);
        }
    }

    #[test]
    fn literal_eval() {
        let a = [true, false];
        assert!(Lit::pos(0).eval(&a));
        assert!(!Lit::neg(0).eval(&a));
        assert!(!Lit::pos(1).eval(&a));
        assert!(Lit::neg(1).eval(&a));
    }

    #[test]
    fn clause_eval_and_intersection() {
        let f = paper_example();
        let c = f.clauses();
        assert!(c[0].intersects(&c[2])); // share x2
        assert!(!c[0].intersects(&c[1]));
        assert!(c[1].intersects(&c[2])); // share x4, x5

        // all-false satisfies every clause: ¬x0 in c0, ¬x4 in c1, ¬x5 in c2.
        let all_false = vec![false; 6];
        assert_eq!(f.count_satisfied(&all_false), 3);
    }

    #[test]
    fn satisfying_assignment_found() {
        let f = paper_example();
        // x = [F, F, F, T, F, F]: c0 sat (¬x0), c1 sat (x3), c2 sat (¬x5)
        let a = [false, false, false, true, false, false];
        assert_eq!(f.count_satisfied(&a), 3);
    }

    #[test]
    fn bitstring_decoding_msb_first() {
        let f = paper_example();
        // index 0b000100 = x3 true only → 3 satisfied (see above)
        assert_eq!(f.count_satisfied_by_index(0b000100), 3);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_variable_in_clause_panics() {
        Clause::new(vec![Lit::pos(1), Lit::neg(1)]);
    }

    #[test]
    #[should_panic(expected = "num_vars")]
    fn out_of_range_variable_panics() {
        Formula::new(2, vec![Clause::new(vec![Lit::pos(5)])]);
    }

    #[test]
    fn display_formats() {
        let f = paper_example();
        let s = f.to_string();
        assert!(s.contains("¬x0"));
        assert!(s.contains("∧"));
    }

    #[test]
    fn canonical_bytes_distinguish_structure() {
        let f = paper_example();
        let same = Formula::new(f.num_vars(), f.clauses().to_vec());
        assert_eq!(f.canonical_bytes(), same.canonical_bytes());
        // Polarity flip of one literal changes the bytes.
        let mut clauses = f.clauses().to_vec();
        let lits: Vec<Lit> = clauses[0]
            .lits()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    Lit::from_dimacs(-l.to_dimacs())
                } else {
                    *l
                }
            })
            .collect();
        clauses[0] = Clause::new(lits);
        let flipped = Formula::new(f.num_vars(), clauses);
        assert_ne!(f.canonical_bytes(), flipped.canonical_bytes());
        // Extra unused variable changes the bytes too.
        let widened = Formula::new(f.num_vars() + 1, f.clauses().to_vec());
        assert_ne!(f.canonical_bytes(), widened.canonical_bytes());
    }

    #[test]
    fn weight_one_formula_is_not_weighted_and_bytes_unchanged() {
        let f = paper_example();
        assert!(!f.is_weighted());
        // weight-1 via Clause::weighted is indistinguishable from Clause::new
        let explicit = Formula::new(
            f.num_vars(),
            f.clauses()
                .iter()
                .map(|c| Clause::weighted(c.lits().to_vec(), 1))
                .collect(),
        );
        assert_eq!(f.canonical_bytes(), explicit.canonical_bytes());
        assert_eq!(f.total_weight(), f.num_clauses() as u64);
    }

    #[test]
    fn weighted_objective_and_hard_penalty() {
        let f = Formula::new(
            2,
            vec![
                Clause::weighted(vec![Lit::pos(0)], 3),
                Clause::weighted(vec![Lit::pos(1)], 5),
                Clause::hard(vec![Lit::neg(0), Lit::neg(1)]),
            ],
        );
        assert!(f.is_weighted());
        assert_eq!(f.soft_weight_sum(), 8);
        assert_eq!(f.hard_clause_weight(), 9);
        assert_eq!(f.effective_weight(2), 9);
        assert_eq!(f.total_weight(), 17);
        // x0=T, x1=F: clause 0 (w=3) and the hard clause (w=9) hold.
        assert_eq!(f.satisfied_weight(&[true, false]), 12);
        assert_eq!(f.weight_satisfied_by_index(0b10), 12);
        // Unweighted counting still sees 2 of 3 clauses.
        assert_eq!(f.count_satisfied(&[true, false]), 2);
    }

    #[test]
    fn weights_change_canonical_bytes() {
        let f = paper_example();
        let mut clauses = f.clauses().to_vec();
        clauses[0] = Clause::weighted(clauses[0].lits().to_vec(), 2);
        let weighted = Formula::new(f.num_vars(), clauses.clone());
        assert_ne!(f.canonical_bytes(), weighted.canonical_bytes());
        clauses[0] = Clause::hard(clauses[0].lits().to_vec());
        let hardened = Formula::new(f.num_vars(), clauses);
        assert_ne!(weighted.canonical_bytes(), hardened.canonical_bytes());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        Clause::weighted(vec![Lit::pos(0)], 0);
    }

    #[test]
    fn max_cut_encoding_scores_cuts() {
        // Triangle with one heavy edge: best cut takes both heavy sides.
        let f = Formula::max_cut(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 4)]);
        assert_eq!(f.num_clauses(), 6);
        // Partition {0} vs {1, 2}: cuts edges (0,1) and (0,2) → weight 5.
        // Objective = cut weight + total edge weight (uncut edges satisfy
        // one of their two clauses).
        assert_eq!(f.satisfied_weight(&[true, false, false]), 5 + 6);
        // Uncut everything: every edge satisfies exactly one clause.
        assert_eq!(f.satisfied_weight(&[false, false, false]), 6);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn max_cut_rejects_self_loops() {
        Formula::max_cut(2, &[(1, 1, 1)]);
    }
}
