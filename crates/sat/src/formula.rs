//! Max-3SAT formula representation.

use std::fmt;

/// A literal: a variable index with optional negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit {
    /// Zero-based variable index.
    pub var: usize,
    /// Whether the literal is negated (`¬x`).
    pub negated: bool,
}

impl Lit {
    /// Positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Lit {
            var,
            negated: false,
        }
    }

    /// Negative literal `¬x_var`.
    pub fn neg(var: usize) -> Self {
        Lit { var, negated: true }
    }

    /// Converts from DIMACS encoding (1-based, sign = negation).
    ///
    /// # Panics
    ///
    /// Panics if `code == 0`.
    pub fn from_dimacs(code: i64) -> Self {
        assert!(code != 0, "DIMACS literal cannot be 0");
        Lit {
            var: (code.unsigned_abs() as usize) - 1,
            negated: code < 0,
        }
    }

    /// Converts to DIMACS encoding.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var + 1) as i64;
        if self.negated {
            -v
        } else {
            v
        }
    }

    /// Evaluates the literal under an assignment (indexed by variable).
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] ^ self.negated
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬x{}", self.var)
        } else {
            write!(f, "x{}", self.var)
        }
    }
}

/// A clause: a disjunction of up to three literals over distinct variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    ///
    /// # Panics
    ///
    /// Panics if empty, longer than 3, or if a variable repeats.
    pub fn new(lits: Vec<Lit>) -> Self {
        assert!(!lits.is_empty(), "clause cannot be empty");
        assert!(lits.len() <= 3, "Max-3SAT clauses have at most 3 literals");
        for (i, l) in lits.iter().enumerate() {
            assert!(
                !lits[..i].iter().any(|m| m.var == l.var),
                "variable x{} repeats within a clause",
                l.var
            );
        }
        Clause { lits }
    }

    /// The literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// The distinct variables of the clause.
    pub fn vars(&self) -> impl Iterator<Item = usize> + '_ {
        self.lits.iter().map(|l| l.var)
    }

    /// Whether this clause shares a variable with another.
    pub fn intersects(&self, other: &Clause) -> bool {
        self.lits
            .iter()
            .any(|a| other.lits.iter().any(|b| a.var == b.var))
    }

    /// Evaluates the clause under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(assignment))
    }

    /// Number of negated literals.
    pub fn num_negated(&self) -> usize {
        self.lits.iter().filter(|l| l.negated).count()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A Max-3SAT formula: maximize the number of satisfied clauses.
#[derive(Clone, Debug, PartialEq)]
pub struct Formula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Formula {
    /// Creates a formula over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if any clause references a variable `≥ num_vars`.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for v in c.vars() {
                assert!(v < num_vars, "clause references x{v} ≥ num_vars {num_vars}");
            }
        }
        Formula { num_vars, clauses }
    }

    /// Number of variables (= qubits when compiled to QAOA).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Canonical byte serialization for content addressing (the batch
    /// engine's artifact-cache keys): the sizes followed by every clause's
    /// length and literals as little-endian DIMACS codes. Two formulas
    /// produce the same bytes iff they are structurally identical — clause
    /// order, literal order, and polarity included.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.clauses.len() * 32);
        out.extend((self.num_vars as u64).to_le_bytes());
        out.extend((self.clauses.len() as u64).to_le_bytes());
        for clause in &self.clauses {
            out.extend((clause.lits().len() as u64).to_le_bytes());
            for lit in clause.lits() {
                out.extend(lit.to_dimacs().to_le_bytes());
            }
        }
        out
    }

    /// Number of clauses satisfied by an assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn count_satisfied(&self, assignment: &[bool]) -> usize {
        assert_eq!(
            assignment.len(),
            self.num_vars,
            "assignment length mismatch"
        );
        self.clauses.iter().filter(|c| c.eval(assignment)).count()
    }

    /// Decodes a measurement bitstring (qubit 0 = most significant bit, the
    /// workspace convention) into an assignment and counts satisfied clauses.
    pub fn count_satisfied_by_index(&self, basis_index: usize) -> usize {
        let assignment: Vec<bool> = (0..self.num_vars)
            .map(|q| (basis_index >> (self.num_vars - 1 - q)) & 1 == 1)
            .collect();
        self.count_satisfied(&assignment)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of paper Fig. 5:
    /// (¬x0 ∨ ¬x1 ∨ ¬x2) ∧ (x3 ∨ ¬x4 ∨ x5) ∧ (x2 ∨ x4 ∨ ¬x5)
    pub(crate) fn paper_example() -> Formula {
        Formula::new(
            6,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(3), Lit::neg(4), Lit::pos(5)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(4), Lit::neg(5)]),
            ],
        )
    }

    #[test]
    fn literal_dimacs_roundtrip() {
        for code in [-5i64, -1, 1, 7] {
            assert_eq!(Lit::from_dimacs(code).to_dimacs(), code);
        }
    }

    #[test]
    fn literal_eval() {
        let a = [true, false];
        assert!(Lit::pos(0).eval(&a));
        assert!(!Lit::neg(0).eval(&a));
        assert!(!Lit::pos(1).eval(&a));
        assert!(Lit::neg(1).eval(&a));
    }

    #[test]
    fn clause_eval_and_intersection() {
        let f = paper_example();
        let c = f.clauses();
        assert!(c[0].intersects(&c[2])); // share x2
        assert!(!c[0].intersects(&c[1]));
        assert!(c[1].intersects(&c[2])); // share x4, x5

        // all-false satisfies every clause: ¬x0 in c0, ¬x4 in c1, ¬x5 in c2.
        let all_false = vec![false; 6];
        assert_eq!(f.count_satisfied(&all_false), 3);
    }

    #[test]
    fn satisfying_assignment_found() {
        let f = paper_example();
        // x = [F, F, F, T, F, F]: c0 sat (¬x0), c1 sat (x3), c2 sat (¬x5)
        let a = [false, false, false, true, false, false];
        assert_eq!(f.count_satisfied(&a), 3);
    }

    #[test]
    fn bitstring_decoding_msb_first() {
        let f = paper_example();
        // index 0b000100 = x3 true only → 3 satisfied (see above)
        assert_eq!(f.count_satisfied_by_index(0b000100), 3);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_variable_in_clause_panics() {
        Clause::new(vec![Lit::pos(1), Lit::neg(1)]);
    }

    #[test]
    #[should_panic(expected = "num_vars")]
    fn out_of_range_variable_panics() {
        Formula::new(2, vec![Clause::new(vec![Lit::pos(5)])]);
    }

    #[test]
    fn display_formats() {
        let f = paper_example();
        let s = f.to_string();
        assert!(s.contains("¬x0"));
        assert!(s.contains("∧"));
    }

    #[test]
    fn canonical_bytes_distinguish_structure() {
        let f = paper_example();
        let same = Formula::new(f.num_vars(), f.clauses().to_vec());
        assert_eq!(f.canonical_bytes(), same.canonical_bytes());
        // Polarity flip of one literal changes the bytes.
        let mut clauses = f.clauses().to_vec();
        let lits: Vec<Lit> = clauses[0]
            .lits()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    Lit::from_dimacs(-l.to_dimacs())
                } else {
                    *l
                }
            })
            .collect();
        clauses[0] = Clause::new(lits);
        let flipped = Formula::new(f.num_vars(), clauses);
        assert_ne!(f.canonical_bytes(), flipped.canonical_bytes());
        // Extra unused variable changes the bytes too.
        let widened = Formula::new(f.num_vars() + 1, f.clauses().to_vec());
        assert_ne!(f.canonical_bytes(), widened.canonical_bytes());
    }
}
