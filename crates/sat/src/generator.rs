//! Seeded SATLIB-style benchmark generator.
//!
//! The paper evaluates on SATLIB's uniform-random-3-SAT `uf*` suites
//! (§8.1): 10 variants per size, sizes {20, 50, 75, 100, 150, 250}. The
//! SATLIB files themselves are uniform random 3-SAT at the phase-transition
//! clause ratio; this module regenerates statistically identical instances
//! deterministically, so `instance(20, 1)` plays the role of `uf20-01`.

use crate::{Clause, Formula, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clause counts of the SATLIB uniform-random-3-SAT suites (`ufN-M`).
/// Sizes not in the table use the phase-transition ratio 4.3.
pub fn satlib_clause_count(num_vars: usize) -> usize {
    match num_vars {
        20 => 91,
        50 => 218,
        75 => 325,
        100 => 430,
        125 => 538,
        150 => 645,
        175 => 753,
        200 => 860,
        225 => 960,
        250 => 1065,
        n => ((n as f64) * 4.3).round() as usize,
    }
}

/// The benchmark sizes used throughout the paper's evaluation (Fig. 8b etc.).
pub const PAPER_SIZES: [usize; 6] = [20, 50, 75, 100, 150, 250];

/// Number of variants per size in the paper's methodology.
pub const PAPER_VARIANTS: usize = 10;

/// Generates the `variant`-th uniform-random Max-3SAT instance of the given
/// size (1-based variant, mirroring `ufN-01 … ufN-10`). Deterministic: the
/// same `(num_vars, variant)` always yields the same formula.
///
/// # Panics
///
/// Panics if `num_vars < 3` or `variant == 0`.
///
/// # Examples
///
/// ```
/// use weaver_sat::generator;
/// let uf20_01 = generator::instance(20, 1);
/// assert_eq!(uf20_01.num_vars(), 20);
/// assert_eq!(uf20_01.num_clauses(), 91);
/// assert_eq!(uf20_01, generator::instance(20, 1));
/// ```
pub fn instance(num_vars: usize, variant: usize) -> Formula {
    assert!(num_vars >= 3, "need at least 3 variables for 3-SAT");
    assert!(variant >= 1, "variants are 1-based (like uf20-01)");
    let num_clauses = satlib_clause_count(num_vars);
    random_formula(num_vars, num_clauses, seed_for(num_vars, variant))
}

/// Canonical display name for a generated instance, e.g. `uf20-03`.
pub fn instance_name(num_vars: usize, variant: usize) -> String {
    format!("uf{num_vars}-{variant:02}")
}

/// Generates a uniform-random 3-SAT formula with an explicit seed.
/// Each clause draws 3 distinct variables uniformly and negates each with
/// probability 1/2; duplicate clauses are allowed (as in SATLIB).
pub fn random_formula(num_vars: usize, num_clauses: usize, seed: u64) -> Formula {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut vars = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lits = vars
            .into_iter()
            .map(|v| {
                if rng.gen_bool(0.5) {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                }
            })
            .collect();
        clauses.push(Clause::new(lits));
    }
    Formula::new(num_vars, clauses)
}

/// Generates the `variant`-th *weighted* uniform-random Max-3SAT instance:
/// the same clauses as [`instance`], with deterministic per-clause weights
/// drawn uniformly from `1..=8`. Deterministic per `(num_vars, variant)`.
///
/// # Panics
///
/// Panics if `num_vars < 3` or `variant == 0`.
///
/// # Examples
///
/// ```
/// use weaver_sat::generator;
/// let w = generator::weighted_instance(20, 1);
/// assert!(w.is_weighted());
/// assert_eq!(w.num_clauses(), generator::instance(20, 1).num_clauses());
/// ```
pub fn weighted_instance(num_vars: usize, variant: usize) -> Formula {
    let base = instance(num_vars, variant);
    // Independent weight stream so the clause structure stays identical to
    // the unweighted instance.
    let mut rng = StdRng::seed_from_u64(seed_for(num_vars, variant) ^ 0x57C4_F00D);
    let clauses = base
        .clauses()
        .iter()
        .map(|c| Clause::weighted(c.lits().to_vec(), rng.gen_range(1..=8)))
        .collect();
    Formula::new(base.num_vars(), clauses)
}

/// Generates a random simple graph as a weighted edge list (weights in
/// `1..=4`), suitable for max-cut workloads: `num_edges` distinct edges
/// drawn uniformly over vertex pairs. Deterministic per seed.
///
/// # Panics
///
/// Panics if `num_vertices < 2` or `num_edges` exceeds the number of
/// distinct vertex pairs.
pub fn random_graph(num_vertices: usize, num_edges: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    assert!(num_vertices >= 2, "a graph edge needs two vertices");
    let max_edges = num_vertices * (num_vertices - 1) / 2;
    assert!(
        num_edges <= max_edges,
        "{num_edges} edges requested, only {max_edges} distinct pairs exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize, u64)> = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        let u = rng.gen_range(0..num_vertices);
        let v = rng.gen_range(0..num_vertices);
        if u == v {
            continue;
        }
        let (u, v) = (u.min(v), u.max(v));
        if edges.iter().any(|&(a, b, _)| (a, b) == (u, v)) {
            continue;
        }
        let w = rng.gen_range(1..=4);
        edges.push((u, v, w));
    }
    edges.sort_unstable();
    edges
}

fn seed_for(num_vars: usize, variant: usize) -> u64 {
    // Stable mixing of (size, variant) into a seed; constants are from
    // splitmix64 so nearby inputs decorrelate.
    let mut z = (num_vars as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(variant as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_per_variant() {
        assert_eq!(instance(20, 1), instance(20, 1));
        assert_ne!(instance(20, 1), instance(20, 2));
        assert_ne!(instance(20, 1), instance(50, 1));
    }

    #[test]
    fn satlib_sizes_match() {
        assert_eq!(satlib_clause_count(20), 91);
        assert_eq!(satlib_clause_count(250), 1065);
        assert_eq!(satlib_clause_count(30), 129); // ratio fallback
    }

    #[test]
    fn clause_shape_is_3sat() {
        let f = instance(50, 3);
        for c in f.clauses() {
            assert_eq!(c.lits().len(), 3);
            let vars: HashSet<usize> = c.vars().collect();
            assert_eq!(vars.len(), 3, "variables must be distinct");
        }
    }

    #[test]
    fn all_paper_sizes_generate() {
        for &n in &PAPER_SIZES {
            let f = instance(n, 1);
            assert_eq!(f.num_vars(), n);
            assert_eq!(f.num_clauses(), satlib_clause_count(n));
        }
    }

    #[test]
    fn variable_coverage_is_broad() {
        // With m ≈ 4.3·n random clauses, essentially every variable appears.
        let f = instance(100, 7);
        let used: HashSet<usize> = f.clauses().iter().flat_map(|c| c.vars()).collect();
        assert!(used.len() > 95, "only {} of 100 variables used", used.len());
    }

    #[test]
    fn negation_rate_is_balanced() {
        let f = instance(250, 5);
        let total: usize = f.clauses().iter().map(|c| c.lits().len()).sum();
        let neg: usize = f.clauses().iter().map(|c| c.num_negated()).sum();
        let rate = neg as f64 / total as f64;
        assert!((0.45..0.55).contains(&rate), "negation rate {rate}");
    }

    #[test]
    fn weighted_instance_is_deterministic_and_structure_preserving() {
        let w = weighted_instance(20, 1);
        assert_eq!(w, weighted_instance(20, 1));
        assert!(w.is_weighted());
        let base = instance(20, 1);
        assert_eq!(w.num_clauses(), base.num_clauses());
        for (wc, bc) in w.clauses().iter().zip(base.clauses()) {
            assert_eq!(wc.lits(), bc.lits());
            assert!((1..=8).contains(&wc.weight()));
            assert!(!wc.is_hard());
        }
        assert_ne!(w.canonical_bytes(), base.canonical_bytes());
    }

    #[test]
    fn random_graph_is_simple_and_deterministic() {
        let g = random_graph(8, 12, 42);
        assert_eq!(g, random_graph(8, 12, 42));
        assert_ne!(g, random_graph(8, 12, 43));
        assert_eq!(g.len(), 12);
        let pairs: HashSet<(usize, usize)> = g.iter().map(|&(u, v, _)| (u, v)).collect();
        assert_eq!(pairs.len(), 12, "edges must be distinct");
        for &(u, v, w) in &g {
            assert!(u < v && v < 8);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn instance_names() {
        assert_eq!(instance_name(20, 1), "uf20-01");
        assert_eq!(instance_name(250, 10), "uf250-10");
    }
}
