//! DIMACS CNF parsing and serialization — the on-disk format of the SATLIB
//! benchmark suite the paper evaluates on (§8.1).

use crate::{Clause, Formula, Lit};
use std::fmt;

/// Error parsing a DIMACS file.
#[derive(Clone, Debug, PartialEq)]
pub struct DimacsError {
    /// 1-based line where the problem was found.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text into a [`Formula`].
///
/// Comment lines (`c …`) and the `%`/`0` trailer used by SATLIB files are
/// tolerated. Clauses longer than 3 literals are rejected (Max-3SAT only).
///
/// # Errors
///
/// Returns [`DimacsError`] on missing/malformed headers, out-of-range
/// variables, or clauses not terminated by `0`.
///
/// # Examples
///
/// ```
/// use weaver_sat::dimacs;
/// let f = dimacs::parse("p cnf 3 2\n1 -2 3 0\n-1 2 0\n").unwrap();
/// assert_eq!(f.num_vars(), 3);
/// assert_eq!(f.num_clauses(), 2);
/// ```
pub fn parse(text: &str) -> Result<Formula, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut expected_clauses: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line == "0" {
            continue; // SATLIB end-of-file marker
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: lineno,
                    message: format!("malformed problem line `{line}`"),
                });
            }
            num_vars = Some(parts[1].parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad variable count `{}`", parts[1]),
            })?);
            expected_clauses = Some(parts[2].parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad clause count `{}`", parts[2]),
            })?);
            continue;
        }
        let nv = num_vars.ok_or(DimacsError {
            line: lineno,
            message: "clause before `p cnf` header".to_string(),
        })?;
        for tok in line.split_whitespace() {
            let code: i64 = tok.parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad literal `{tok}`"),
            })?;
            if code == 0 {
                if current.is_empty() {
                    return Err(DimacsError {
                        line: lineno,
                        message: "empty clause".to_string(),
                    });
                }
                if current.len() > 3 {
                    return Err(DimacsError {
                        line: lineno,
                        message: format!("clause with {} literals (Max-3SAT only)", current.len()),
                    });
                }
                clauses.push(Clause::new(std::mem::take(&mut current)));
            } else {
                let lit = Lit::from_dimacs(code);
                if lit.var >= nv {
                    return Err(DimacsError {
                        line: lineno,
                        message: format!("variable {} exceeds declared count {}", lit.var + 1, nv),
                    });
                }
                // SATLIB occasionally repeats a literal; dedupe identical
                // literals, reject contradictory ones via Clause::new.
                if !current.contains(&lit) {
                    current.push(lit);
                }
            }
        }
    }
    let num_vars = num_vars.ok_or(DimacsError {
        line: 0,
        message: "missing `p cnf` header".to_string(),
    })?;
    if !current.is_empty() {
        return Err(DimacsError {
            line: 0,
            message: "unterminated final clause (missing 0)".to_string(),
        });
    }
    if let Some(exp) = expected_clauses {
        if clauses.len() != exp {
            return Err(DimacsError {
                line: 0,
                message: format!("header declares {exp} clauses, found {}", clauses.len()),
            });
        }
    }
    Ok(Formula::new(num_vars, clauses))
}

/// Serializes a formula to DIMACS CNF text.
pub fn to_string(formula: &Formula) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p cnf {} {}\n",
        formula.num_vars(),
        formula.num_clauses()
    ));
    for clause in formula.clauses() {
        for lit in clause.lits() {
            out.push_str(&format!("{} ", lit.to_dimacs()));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_satlib_style_file() {
        let src = "c uf20-01-like header\nc\np cnf 3 2\n1 -2 3 0\n-1 2 0\n%\n0\n";
        let f = parse(src).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].lits()[1], Lit::neg(1));
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 4 3\n1 2 3 0\n-1 -4 0\n2 0\n";
        let f = parse(src).unwrap();
        let text = to_string(&f);
        let f2 = parse(&text).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn clause_split_across_lines() {
        let f = parse("p cnf 3 1\n1\n-2\n3 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses()[0].lits().len(), 3);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_oversized_clause() {
        assert!(parse("p cnf 5 1\n1 2 3 4 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_var() {
        assert!(parse("p cnf 2 1\n1 5 0\n").is_err());
    }

    #[test]
    fn rejects_wrong_clause_count() {
        assert!(parse("p cnf 2 5\n1 2 0\n").is_err());
    }

    #[test]
    fn duplicate_literal_deduped() {
        let f = parse("p cnf 2 1\n1 1 2 0\n").unwrap();
        assert_eq!(f.clauses()[0].lits().len(), 2);
    }
}
