//! DIMACS CNF/WCNF parsing and serialization — the on-disk formats of the
//! SATLIB benchmark suite the paper evaluates on (§8.1) and of the standard
//! weighted/partial MAX-SAT evaluations (`p wcnf`, top-weight = hard).

use crate::{Clause, Formula, Lit};
use std::fmt;

/// Error parsing a DIMACS file, with a token-accurate source position.
#[derive(Clone, Debug, PartialEq)]
pub struct DimacsError {
    /// 1-based line where the problem was found (0 = end of input).
    pub line: usize,
    /// 1-based column of the offending token (0 = whole line/file).
    pub col: usize,
    /// Description.
    pub message: String,
}

impl DimacsError {
    fn at(line: usize, col: usize, message: String) -> Self {
        DimacsError { line, col, message }
    }

    fn on_line(line: usize, message: String) -> Self {
        DimacsError {
            line,
            col: 0,
            message,
        }
    }
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "DIMACS error on line {}, column {}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "DIMACS error on line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for DimacsError {}

/// Splits a line into whitespace-separated tokens, each tagged with its
/// 1-based character column — the source of the `col` field on errors.
fn split_tokens(raw: &str) -> Vec<(usize, &str)> {
    let mut tokens = Vec::new();
    let mut start: Option<(usize, usize)> = None; // (char col, byte index)
    let mut col = 0usize;
    let mut byte = 0usize;
    for ch in raw.chars() {
        col += 1;
        if ch.is_whitespace() {
            if let Some((c, b)) = start.take() {
                tokens.push((c, &raw[b..byte]));
            }
        } else if start.is_none() {
            start = Some((col, byte));
        }
        byte += ch.len_utf8();
    }
    if let Some((c, b)) = start {
        tokens.push((c, &raw[b..]));
    }
    tokens
}

/// Parses DIMACS CNF or WCNF text into a [`Formula`].
///
/// Comment lines (`c …`) and the `%`/`0` trailer used by SATLIB files are
/// tolerated. Clauses longer than 3 literals are rejected (Max-3SAT only).
///
/// For `p wcnf num_vars num_clauses [top]` headers, every clause line leads
/// with its weight; a weight `≥ top` marks a hard clause (standard
/// weighted-partial MAX-SAT). Without a `top` field all clauses are soft.
/// A weight-1 WCNF parses to a [`Formula`] byte-identical (via
/// [`Formula::canonical_bytes`]) to the same clauses in plain CNF.
///
/// # Errors
///
/// Returns [`DimacsError`] — carrying the 1-based line and column of the
/// offending token — on missing/malformed headers, out-of-range variables,
/// zero weights, or clauses not terminated by `0`.
///
/// # Examples
///
/// ```
/// use weaver_sat::dimacs;
/// let f = dimacs::parse("p cnf 3 2\n1 -2 3 0\n-1 2 0\n").unwrap();
/// assert_eq!(f.num_vars(), 3);
/// assert_eq!(f.num_clauses(), 2);
///
/// let w = dimacs::parse("p wcnf 2 2 10\n3 1 2 0\n10 -1 -2 0\n").unwrap();
/// assert!(w.is_weighted());
/// assert!(w.clauses()[1].is_hard());
/// ```
pub fn parse(text: &str) -> Result<Formula, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut expected_clauses: Option<usize> = None;
    let mut weighted = false;
    let mut top: Option<u64> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    // In WCNF mode, the weight of the clause currently being read (the
    // first token of each clause, possibly continued across lines).
    let mut pending_weight: Option<u64> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line == "0" {
            continue; // SATLIB end-of-file marker
        }
        let tokens = split_tokens(raw);
        if tokens.first().map(|(_, t)| *t) == Some("p") {
            let parts: Vec<(usize, &str)> = tokens[1..].to_vec();
            let format = parts.first().map(|(_, t)| *t);
            let ok = match format {
                Some("cnf") => parts.len() == 3,
                Some("wcnf") => parts.len() == 3 || parts.len() == 4,
                _ => false,
            };
            if !ok {
                return Err(DimacsError::on_line(
                    lineno,
                    format!("malformed problem line `{line}`"),
                ));
            }
            weighted = format == Some("wcnf");
            num_vars = Some(parts[1].1.parse().map_err(|_| {
                DimacsError::at(
                    lineno,
                    parts[1].0,
                    format!("bad variable count `{}`", parts[1].1),
                )
            })?);
            expected_clauses = Some(parts[2].1.parse().map_err(|_| {
                DimacsError::at(
                    lineno,
                    parts[2].0,
                    format!("bad clause count `{}`", parts[2].1),
                )
            })?);
            if let Some(&(col, tok)) = parts.get(3) {
                let t: u64 = tok
                    .parse()
                    .map_err(|_| DimacsError::at(lineno, col, format!("bad top weight `{tok}`")))?;
                if t < 2 {
                    return Err(DimacsError::at(
                        lineno,
                        col,
                        format!("top weight must be ≥ 2, got {t}"),
                    ));
                }
                top = Some(t);
            }
            continue;
        }
        let nv = num_vars.ok_or_else(|| {
            DimacsError::on_line(
                lineno,
                format!(
                    "clause before `p {}` header",
                    if weighted { "wcnf" } else { "cnf" }
                ),
            )
        })?;
        for (col, tok) in tokens {
            if weighted && current.is_empty() && pending_weight.is_none() {
                let w: u64 = tok.parse().map_err(|_| {
                    DimacsError::at(lineno, col, format!("bad clause weight `{tok}`"))
                })?;
                if w == 0 {
                    return Err(DimacsError::at(
                        lineno,
                        col,
                        "clause weight must be positive".to_string(),
                    ));
                }
                pending_weight = Some(w);
                continue;
            }
            let code: i64 = tok
                .parse()
                .map_err(|_| DimacsError::at(lineno, col, format!("bad literal `{tok}`")))?;
            if code == 0 {
                if current.is_empty() {
                    return Err(DimacsError::at(lineno, col, "empty clause".to_string()));
                }
                if current.len() > 3 {
                    return Err(DimacsError::at(
                        lineno,
                        col,
                        format!("clause with {} literals (Max-3SAT only)", current.len()),
                    ));
                }
                let lits = std::mem::take(&mut current);
                clauses.push(match pending_weight.take() {
                    Some(w) if top.is_some_and(|t| w >= t) => Clause::hard(lits),
                    Some(w) => Clause::weighted(lits, w),
                    None => Clause::new(lits),
                });
            } else {
                let lit = Lit::from_dimacs(code);
                if lit.var >= nv {
                    return Err(DimacsError::at(
                        lineno,
                        col,
                        format!("variable {} exceeds declared count {}", lit.var + 1, nv),
                    ));
                }
                // SATLIB occasionally repeats a literal; dedupe identical
                // literals, reject contradictory ones via Clause::new.
                if !current.contains(&lit) {
                    current.push(lit);
                }
            }
        }
    }
    let num_vars = num_vars
        .ok_or_else(|| DimacsError::on_line(0, "missing `p cnf` or `p wcnf` header".to_string()))?;
    if !current.is_empty() || pending_weight.is_some() {
        return Err(DimacsError::on_line(
            0,
            "unterminated final clause (missing 0)".to_string(),
        ));
    }
    if let Some(exp) = expected_clauses {
        if clauses.len() != exp {
            return Err(DimacsError::on_line(
                0,
                format!("header declares {exp} clauses, found {}", clauses.len()),
            ));
        }
    }
    Ok(Formula::new(num_vars, clauses))
}

/// Serializes a formula to DIMACS text: plain `p cnf` for unweighted
/// formulas (byte-identical to the pre-weights serializer), `p wcnf` with
/// `top = soft weight sum + 1` when any clause is weighted or hard.
pub fn to_string(formula: &Formula) -> String {
    let mut out = String::new();
    if formula.is_weighted() {
        let top = formula.hard_clause_weight();
        out.push_str(&format!(
            "p wcnf {} {} {top}\n",
            formula.num_vars(),
            formula.num_clauses()
        ));
        for clause in formula.clauses() {
            let w = if clause.is_hard() {
                top
            } else {
                clause.weight()
            };
            out.push_str(&format!("{w} "));
            for lit in clause.lits() {
                out.push_str(&format!("{} ", lit.to_dimacs()));
            }
            out.push_str("0\n");
        }
    } else {
        out.push_str(&format!(
            "p cnf {} {}\n",
            formula.num_vars(),
            formula.num_clauses()
        ));
        for clause in formula.clauses() {
            for lit in clause.lits() {
                out.push_str(&format!("{} ", lit.to_dimacs()));
            }
            out.push_str("0\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_satlib_style_file() {
        let src = "c uf20-01-like header\nc\np cnf 3 2\n1 -2 3 0\n-1 2 0\n%\n0\n";
        let f = parse(src).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].lits()[1], Lit::neg(1));
    }

    #[test]
    fn roundtrip() {
        let src = "p cnf 4 3\n1 2 3 0\n-1 -4 0\n2 0\n";
        let f = parse(src).unwrap();
        let text = to_string(&f);
        let f2 = parse(&text).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn clause_split_across_lines() {
        let f = parse("p cnf 3 1\n1\n-2\n3 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clauses()[0].lits().len(), 3);
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_oversized_clause() {
        assert!(parse("p cnf 5 1\n1 2 3 4 0\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_var() {
        assert!(parse("p cnf 2 1\n1 5 0\n").is_err());
    }

    #[test]
    fn rejects_wrong_clause_count() {
        assert!(parse("p cnf 2 5\n1 2 0\n").is_err());
    }

    #[test]
    fn duplicate_literal_deduped() {
        let f = parse("p cnf 2 1\n1 1 2 0\n").unwrap();
        assert_eq!(f.clauses()[0].lits().len(), 2);
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("p cnf 3 2\n1 -2 3 0\n-1 x 0\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 4);
        assert!(err.message.contains("bad literal `x`"));
        assert!(err.to_string().contains("line 3, column 4"));

        // Column tracking survives leading whitespace.
        let err = parse("p cnf 3 1\n   1 99 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 6);
    }

    #[test]
    fn parses_weighted_partial_wcnf() {
        let src = "c weighted partial\np wcnf 3 3 10\n3 1 -2 0\n5 2 3 0\n10 -1 -3 0\n";
        let f = parse(src).unwrap();
        assert!(f.is_weighted());
        assert_eq!(f.num_clauses(), 3);
        assert_eq!(f.clauses()[0].weight(), 3);
        assert_eq!(f.clauses()[1].weight(), 5);
        assert!(f.clauses()[2].is_hard());
        assert_eq!(f.soft_weight_sum(), 8);
    }

    #[test]
    fn wcnf_without_top_is_all_soft() {
        let f = parse("p wcnf 2 2\n4 1 2 0\n7 -1 0\n").unwrap();
        assert!(f.clauses().iter().all(|c| !c.is_hard()));
        assert_eq!(f.clauses()[1].weight(), 7);
    }

    #[test]
    fn weight_one_wcnf_matches_cnf_bytes() {
        let cnf = parse("p cnf 3 2\n1 -2 3 0\n-1 2 0\n").unwrap();
        let wcnf = parse("p wcnf 3 2\n1 1 -2 3 0\n1 -1 2 0\n").unwrap();
        assert!(!wcnf.is_weighted());
        assert_eq!(cnf.canonical_bytes(), wcnf.canonical_bytes());
        assert_eq!(cnf, wcnf);
    }

    #[test]
    fn wcnf_rejects_zero_weight() {
        let err = parse("p wcnf 2 1 5\n0 1 2 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 1);
        assert!(err.message.contains("positive"));
    }

    #[test]
    fn wcnf_clause_split_across_lines_keeps_weight() {
        let f = parse("p wcnf 3 1 9\n4 1\n-2 3 0\n").unwrap();
        assert_eq!(f.clauses()[0].weight(), 4);
        assert_eq!(f.clauses()[0].lits().len(), 3);
    }

    #[test]
    fn weighted_roundtrip() {
        let src = "p wcnf 3 3 9\n3 1 -2 0\n5 2 3 0\n9 -1 -3 0\n";
        let f = parse(src).unwrap();
        let text = to_string(&f);
        assert_eq!(text, src);
        assert_eq!(parse(&text).unwrap(), f);
    }
}
