//! Max-3SAT workloads and QAOA circuit construction for the Weaver
//! evaluation (paper §2.1, §5, §8.1).
//!
//! Provides the classical substrate the paper obtains from PySAT and
//! SATLIB:
//!
//! * [`Formula`] / [`Clause`] / [`Lit`] — Max-3SAT representation,
//! * [`dimacs`] — DIMACS CNF parsing/printing (SATLIB file format),
//! * [`generator`] — deterministic uniform-random-3-SAT instances standing
//!   in for `uf20-01 … uf250-10`,
//! * [`solver`] — exact and WalkSAT reference solvers,
//! * [`PhasePolynomial`] — the spin-variable cost polynomial,
//! * [`qaoa`] — QAOA circuit construction (Fig. 6 CNOT-ladder fragments).
//!
//! # Example
//!
//! ```
//! use weaver_sat::{generator, qaoa, solver};
//!
//! let formula = generator::instance(20, 1); // plays the role of uf20-01
//! let best = solver::solve_exact(&formula);
//! assert!(best.satisfied >= 88); // near-satisfiable at the phase transition
//!
//! let circuit = qaoa::build_circuit(&formula, &qaoa::QaoaParams::default(), true);
//! assert_eq!(circuit.num_qubits(), 20);
//! ```

#![warn(missing_docs)]

pub mod dimacs;
mod formula;
pub mod generator;
mod phase;
pub mod qaoa;
pub mod solver;

pub use formula::{Clause, Formula, Lit};
pub use phase::PhasePolynomial;
