//! Boolean-polynomial (phase polynomial) view of a Max-3SAT cost
//! Hamiltonian (paper §5, Fig. 5/6).
//!
//! A clause `(l₁ ∨ l₂ ∨ l₃)` is *unsatisfied* iff all its literals are
//! false; in spin variables `z = ±1` (with `x = (1 − z)/2`):
//!
//! `unsat = ∏ᵢ (1 + sᵢ zᵢ)/2`, where `sᵢ = +1` for a positive literal and
//! `−1` for a negative one. Expanding gives constant, linear, quadratic and
//! cubic `Z` terms — the terms compiled to `RZ` rotations via CNOT ladders
//! (Fig. 6) or compressed to `CCZ` fragments by the wOptimizer.

use crate::{Clause, Formula};
use std::collections::BTreeMap;

/// A multilinear polynomial over spin variables `zᵢ ∈ {±1}`: a constant plus
/// coefficients per non-empty variable subset.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PhasePolynomial {
    /// Constant offset (does not affect the compiled circuit).
    pub constant: f64,
    terms: BTreeMap<Vec<usize>, f64>,
}

impl PhasePolynomial {
    /// Creates an empty (zero) polynomial.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coefficient · ∏_{v ∈ vars} z_v`. Variables are deduplicated and
    /// sorted; an empty subset adds to the constant.
    pub fn add_term(&mut self, vars: &[usize], coefficient: f64) {
        if coefficient == 0.0 {
            return;
        }
        let mut key: Vec<usize> = vars.to_vec();
        key.sort_unstable();
        key.dedup();
        if key.is_empty() {
            self.constant += coefficient;
            return;
        }
        let entry = self.terms.entry(key).or_insert(0.0);
        *entry += coefficient;
        if entry.abs() < 1e-15 {
            let key: Vec<usize> = {
                let mut k: Vec<usize> = vars.to_vec();
                k.sort_unstable();
                k.dedup();
                k
            };
            self.terms.remove(&key);
        }
    }

    /// Iterator over `(variable subset, coefficient)` pairs in canonical
    /// (sorted) order.
    pub fn terms(&self) -> impl Iterator<Item = (&[usize], f64)> {
        self.terms.iter().map(|(k, &v)| (k.as_slice(), v))
    }

    /// Number of non-constant terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Highest monomial degree present (0 for a constant polynomial).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(|k| k.len()).max().unwrap_or(0)
    }

    /// Adds another polynomial into this one.
    pub fn add(&mut self, other: &PhasePolynomial) {
        self.constant += other.constant;
        for (vars, c) in other.terms() {
            self.add_term(vars, c);
        }
    }

    /// Multiplies every coefficient (constant included) by `factor`.
    pub fn scale(&mut self, factor: f64) {
        self.constant *= factor;
        for coefficient in self.terms.values_mut() {
            *coefficient *= factor;
        }
    }

    /// Evaluates the polynomial at a ±1 assignment given as booleans
    /// (`true` ⇒ `x = 1` ⇒ `z = −1`).
    pub fn eval_bool(&self, assignment: &[bool]) -> f64 {
        let mut total = self.constant;
        for (vars, c) in self.terms() {
            let sign: f64 = vars
                .iter()
                .map(|&v| if assignment[v] { -1.0 } else { 1.0 })
                .product();
            total += c * sign;
        }
        total
    }

    /// The polynomial of a single clause's *satisfaction* indicator
    /// (1 if satisfied, 0 if not), expanded over spins.
    pub fn from_clause(clause: &Clause) -> Self {
        let mut poly = PhasePolynomial::new();
        poly.constant = 1.0;
        // unsat = (1/2^k) ∏ (1 + sᵢ zᵢ); sat = 1 − unsat.
        let lits = clause.lits();
        let k = lits.len();
        let scale = 1.0 / (1u32 << k) as f64;
        // Iterate over all subsets of the literal set.
        for mask in 0..(1u32 << k) {
            let mut vars = Vec::new();
            let mut sign = 1.0;
            for (i, lit) in lits.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    vars.push(lit.var);
                    sign *= if lit.negated { -1.0 } else { 1.0 };
                }
            }
            poly.add_term(&vars, -scale * sign);
        }
        poly
    }

    /// The cost polynomial of a whole formula: total *effective weight* of
    /// satisfied clauses as a function of the assignment (hard clauses
    /// weigh `soft_weight_sum + 1`). For unweighted formulas every clause
    /// scales by exactly 1.0, reproducing the satisfied-clause count with
    /// bit-identical coefficients.
    pub fn from_formula(formula: &Formula) -> Self {
        let mut poly = PhasePolynomial::new();
        for (i, clause) in formula.clauses().iter().enumerate() {
            let mut p = PhasePolynomial::from_clause(clause);
            let w = formula.effective_weight(i);
            if w != 1 {
                p.scale(w as f64);
            }
            poly.add(&p);
        }
        poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator, Formula, Lit};

    fn paper_clause() -> Clause {
        // (¬x0 ∨ ¬x1 ∨ ¬x2): f = −x0·x1·x2 in Boolean variables (paper §5).
        Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)])
    }

    #[test]
    fn clause_polynomial_matches_truth_table() {
        let c = paper_clause();
        let poly = PhasePolynomial::from_clause(&c);
        for bits in 0..8u32 {
            let a = [bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            let expected = if c.eval(&a) { 1.0 } else { 0.0 };
            assert!(
                (poly.eval_bool(&a) - expected).abs() < 1e-12,
                "mismatch at {a:?}"
            );
        }
    }

    #[test]
    fn all_negative_clause_terms() {
        // For (¬x0 ∨ ¬x1 ∨ ¬x2): sat = 1 − x0x1x2; in spins the cubic
        // coefficient is −(1/8)·(−1)³ = +1/8.
        let poly = PhasePolynomial::from_clause(&paper_clause());
        let cubic = poly
            .terms()
            .find(|(vars, _)| vars.len() == 3)
            .expect("cubic term");
        assert!((cubic.1 - 0.125).abs() < 1e-12);
        assert_eq!(poly.degree(), 3);
        assert_eq!(poly.num_terms(), 7); // all non-empty subsets of 3 vars
    }

    #[test]
    fn formula_polynomial_counts_satisfied() {
        let f = generator::instance(20, 1);
        let poly = PhasePolynomial::from_formula(&f);
        // Compare against direct clause counting on a few assignments.
        for seed in 0..10u64 {
            let a: Vec<bool> = (0..20).map(|i| (seed >> (i % 8)) & 1 == 1).collect();
            let expected = f.count_satisfied(&a) as f64;
            assert!((poly.eval_bool(&a) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn mixed_clause_truth_table() {
        let c = Clause::new(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]);
        let poly = PhasePolynomial::from_clause(&c);
        for bits in 0..8u32 {
            let a = [bits & 4 != 0, bits & 2 != 0, bits & 1 != 0];
            let expected = if c.eval(&a) { 1.0 } else { 0.0 };
            assert!((poly.eval_bool(&a) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn two_literal_clause_degree() {
        let c = Clause::new(vec![Lit::pos(0), Lit::pos(1)]);
        let poly = PhasePolynomial::from_clause(&c);
        assert_eq!(poly.degree(), 2);
        for bits in 0..4u32 {
            let a = [bits & 2 != 0, bits & 1 != 0];
            let expected = if c.eval(&a) { 1.0 } else { 0.0 };
            assert!((poly.eval_bool(&a) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_formula_polynomial_scores_weights() {
        use crate::Clause;
        let f = Formula::new(
            2,
            vec![
                Clause::weighted(vec![Lit::pos(0)], 3),
                Clause::hard(vec![Lit::neg(0), Lit::neg(1)]),
            ],
        );
        let poly = PhasePolynomial::from_formula(&f);
        for bits in 0..4u32 {
            let a = [bits & 2 != 0, bits & 1 != 0];
            assert!(
                (poly.eval_bool(&a) - f.satisfied_weight(&a) as f64).abs() < 1e-9,
                "mismatch at {a:?}"
            );
        }
    }

    #[test]
    fn cancellation_removes_terms() {
        let mut p = PhasePolynomial::new();
        p.add_term(&[0, 1], 0.5);
        p.add_term(&[1, 0], -0.5);
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    fn shared_variables_accumulate() {
        // Two clauses over the same variables combine coefficients.
        let f = Formula::new(
            3,
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)]),
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
            ],
        );
        let poly = PhasePolynomial::from_formula(&f);
        // Odd-degree terms cancel between the two clauses (opposite signs);
        // quadratic terms double up.
        assert!(poly.terms().all(|(vars, _)| vars.len() == 2));
        for a in [[false, false, false], [true, false, true]] {
            assert!((poly.eval_bool(&a) - f.count_satisfied(&a) as f64).abs() < 1e-12);
        }
    }
}
