//! Minimal complex-number arithmetic.
//!
//! The simulator needs only `f64`-based complex scalars; implementing them
//! here keeps the workspace free of extra dependencies and lets us pick the
//! exact tolerance semantics used by the equivalence checker.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use weaver_simulator::Complex;
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use weaver_simulator::Complex;
    /// let z = Complex::from_polar(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Whether both components are within `tol` of the other value's.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Whether the value is (numerically) zero under `tol`.
    #[inline]
    pub fn is_zero(self, tol: f64) -> bool {
        self.abs() <= tol
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    #[inline]
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(0.3, -1.7);
        let w = Complex::new(-2.5, 0.4);
        assert!((z + w - w).approx_eq(z, TOL));
        assert!((z * w / w).approx_eq(z, TOL));
        assert!((z - z).is_zero(TOL));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        for k in -8..=8 {
            let theta = k as f64 * 0.37;
            let z = Complex::from_polar(theta);
            assert!((z.abs() - 1.0).abs() < TOL);
            // arg is defined modulo 2π
            let diff = (z.arg() - theta).rem_euclid(std::f64::consts::TAU);
            assert!(diff < TOL || (std::f64::consts::TAU - diff) < TOL);
        }
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn sum_of_iterator() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert!(total.approx_eq(Complex::new(6.0, 4.0), TOL));
    }
}
