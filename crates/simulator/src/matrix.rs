//! Dense complex matrices sized for unitary-level reasoning about small
//! quantum circuits (the wChecker's unitary pass operates on ≤ 12 qubits).

use crate::Complex;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use weaver_simulator::Matrix;
/// let id = Matrix::identity(4);
/// assert!(id.is_unitary(1e-12));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of elements.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[Complex]) -> Self {
        assert_eq!(data.len(), rows * cols, "element count mismatch");
        Matrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a square matrix from real row-major entries (convenience for
    /// tests and real-valued gates).
    pub fn from_reals(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "element count mismatch");
        Matrix {
            rows: n,
            cols: n,
            data: data.iter().map(|&x| Complex::real(x)).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether this matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
        out
    }

    /// Matrix trace. Requires a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for ar in 0..self.rows {
            for ac in 0..self.cols {
                let a = self[(ar, ac)];
                if a.is_zero(0.0) {
                    continue;
                }
                for br in 0..rhs.rows {
                    for bc in 0..rhs.cols {
                        out[(ar * rhs.rows + br, ac * rhs.cols + bc)] = a * rhs[(br, bc)];
                    }
                }
            }
        }
        out
    }

    /// Matrix product `self · rhs` with a cache-friendly `(i, k, j)` loop
    /// order: the inner loop walks one row of `rhs` and one row of the
    /// output with unit stride. The `&a * &b` operator and the `equiv`
    /// module both route through this.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let width = rhs.cols;
        for i in 0..self.rows {
            let out_row = &mut out.data[i * width..(i + 1) * width];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a.is_zero(0.0) {
                    continue;
                }
                let rhs_row = &rhs.data[k * width..(k + 1) * width];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: Complex) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Whether `A† A = I` within `tol` (max-entry deviation).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let product = &self.adjoint() * self;
        let id = Matrix::identity(self.rows);
        product.approx_eq(&id, tol)
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> Matrix {
        Matrix::from_reals(2, &[0.0, 1.0, 1.0, 0.0])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = pauli_x();
        let id = Matrix::identity(2);
        assert!((&x * &id).approx_eq(&x, TOL));
        assert!((&id * &x).approx_eq(&x, TOL));
    }

    #[test]
    fn pauli_x_squares_to_identity() {
        let x = pauli_x();
        assert!((&x * &x).approx_eq(&Matrix::identity(2), TOL));
        assert!(x.is_unitary(TOL));
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = pauli_x();
        let id = Matrix::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.rows(), 4);
        // X ⊗ I maps |00> -> |10>: column 0 has a 1 in row 2.
        assert!(xi[(2, 0)].approx_eq(Complex::ONE, TOL));
        assert!(xi[(0, 0)].is_zero(TOL));
        assert!(xi.is_unitary(TOL));
    }

    #[test]
    fn adjoint_of_phase_matrix() {
        let mut m = Matrix::identity(2);
        m[(1, 1)] = Complex::I;
        let a = m.adjoint();
        assert!(a[(1, 1)].approx_eq(-Complex::I, TOL));
        assert!(m.is_unitary(TOL));
    }

    #[test]
    fn trace_and_norm() {
        let id = Matrix::identity(3);
        assert!(id.trace().approx_eq(Complex::real(3.0), TOL));
        assert!((id.frobenius_norm() - 3f64.sqrt()).abs() < TOL);
    }

    #[test]
    fn max_diff_detects_perturbation() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b[(0, 1)] = Complex::new(0.0, 0.25);
        assert!((a.max_diff(&b) - 0.25).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_mul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }
}
