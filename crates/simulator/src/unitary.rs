//! Construction of full-register unitaries from sequences of gate
//! applications, used by the wChecker's unitary-equivalence pass.

use crate::{Matrix, State};

/// Incrementally builds the `2ⁿ × 2ⁿ` unitary of a gate sequence by tracking
/// the image of every basis column.
///
/// # Examples
///
/// ```
/// use weaver_simulator::{gates, UnitaryBuilder};
/// let mut b = UnitaryBuilder::new(2);
/// b.apply(&gates::h(), &[1]);
/// b.apply(&gates::cz(), &[0, 1]);
/// b.apply(&gates::h(), &[1]);
/// let u = b.finish();
/// assert!(u.approx_eq(&gates::cx(), 1e-10)); // H·CZ·H = CX
/// ```
#[derive(Clone, Debug)]
pub struct UnitaryBuilder {
    num_qubits: usize,
    columns: Vec<State>,
}

impl UnitaryBuilder {
    /// Starts from the identity on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 12` — the full unitary would not fit in
    /// memory, and the checker falls back to structural comparison beyond
    /// this size.
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 12,
            "unitary construction limited to 12 qubits, got {num_qubits}"
        );
        let dim = 1usize << num_qubits;
        let columns = (0..dim).map(|j| State::basis(num_qubits, j)).collect();
        UnitaryBuilder {
            num_qubits,
            columns,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Applies a gate (see [`State::apply`]) to every column.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`State::apply`].
    pub fn apply(&mut self, gate: &Matrix, targets: &[usize]) {
        for col in &mut self.columns {
            col.apply(gate, targets);
        }
    }

    /// Materializes the accumulated unitary matrix.
    pub fn finish(&self) -> Matrix {
        let dim = self.columns.len();
        let mut m = Matrix::zeros(dim, dim);
        for (j, col) in self.columns.iter().enumerate() {
            for (i, &amp) in col.amplitudes().iter().enumerate() {
                m[(i, j)] = amp;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const TOL: f64 = 1e-10;

    #[test]
    fn identity_when_no_gates() {
        let b = UnitaryBuilder::new(3);
        assert!(b.finish().approx_eq(&Matrix::identity(8), TOL));
    }

    #[test]
    fn single_gate_embedding_matches_kron() {
        let mut b = UnitaryBuilder::new(2);
        b.apply(&gates::x(), &[0]);
        // X on qubit 0 (MSB) = X ⊗ I
        let expected = gates::x().kron(&Matrix::identity(2));
        assert!(b.finish().approx_eq(&expected, TOL));
    }

    #[test]
    fn gate_order_is_circuit_order() {
        // Apply H then Z to one qubit: unitary = Z * H (matrix order).
        let mut b = UnitaryBuilder::new(1);
        b.apply(&gates::h(), &[0]);
        b.apply(&gates::z(), &[0]);
        let expected = &gates::z() * &gates::h();
        assert!(b.finish().approx_eq(&expected, TOL));
    }

    #[test]
    fn swap_from_three_cx() {
        let mut b = UnitaryBuilder::new(2);
        b.apply(&gates::cx(), &[0, 1]);
        b.apply(&gates::cx(), &[1, 0]);
        b.apply(&gates::cx(), &[0, 1]);
        assert!(b.finish().approx_eq(&gates::swap(), TOL));
    }

    #[test]
    fn result_is_unitary() {
        let mut b = UnitaryBuilder::new(3);
        b.apply(&gates::h(), &[0]);
        b.apply(&gates::ccz(), &[0, 1, 2]);
        b.apply(&gates::rx(0.7), &[2]);
        assert!(b.finish().is_unitary(TOL));
    }
}
