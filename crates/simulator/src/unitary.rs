//! Construction of full-register unitaries from sequences of gate
//! applications, used by the wChecker's unitary-equivalence pass.

use crate::{kernels, Complex, Matrix};

/// Incrementally builds the `2ⁿ × 2ⁿ` unitary of a gate sequence by tracking
/// the image of every basis column.
///
/// The columns live in one contiguous column-major buffer, so a gate is
/// applied to all `2ⁿ` columns in a single kernel pass with unit-stride
/// access: the column index only contributes high bits that the kernels
/// treat like any other untouched qubit (see [`crate::kernels`]).
///
/// # Examples
///
/// ```
/// use weaver_simulator::{gates, UnitaryBuilder};
/// let mut b = UnitaryBuilder::new(2);
/// b.apply(&gates::h(), &[1]);
/// b.apply(&gates::cz(), &[0, 1]);
/// b.apply(&gates::h(), &[1]);
/// let u = b.finish();
/// assert!(u.approx_eq(&gates::cx(), 1e-10)); // H·CZ·H = CX
/// ```
#[derive(Clone, Debug)]
pub struct UnitaryBuilder {
    num_qubits: usize,
    dim: usize,
    /// Column-major: entry `(row, col)` lives at `col * dim + row`.
    data: Vec<Complex>,
}

impl UnitaryBuilder {
    /// Largest register the builder materializes. The contiguous buffer
    /// holds `4ⁿ` complex doubles (1 GiB at 13 qubits, and [`finish`]
    /// transiently doubles that); the checker falls back to structural
    /// comparison beyond this size.
    ///
    /// [`finish`]: UnitaryBuilder::finish
    pub const MAX_QUBITS: usize = 13;

    /// Starts from the identity on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds [`UnitaryBuilder::MAX_QUBITS`] — the
    /// full unitary would not fit in memory.
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= Self::MAX_QUBITS,
            "unitary construction limited to {} qubits, got {num_qubits}",
            Self::MAX_QUBITS
        );
        let dim = 1usize << num_qubits;
        let mut data = vec![Complex::ZERO; dim * dim];
        for j in 0..dim {
            data[j * dim + j] = Complex::ONE;
        }
        UnitaryBuilder {
            num_qubits,
            dim,
            data,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Applies a gate (see [`crate::State::apply`]) to every column in one
    /// kernel pass over the contiguous buffer.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`crate::State::apply`].
    pub fn apply(&mut self, gate: &Matrix, targets: &[usize]) {
        kernels::validate_targets(self.num_qubits, gate, targets);
        // Row-index bit positions are identical to the state-vector case;
        // the column index occupies bits `n..2n` and is left untouched, which
        // is exactly "apply to every column".
        let bits: Vec<usize> = targets.iter().map(|&t| self.num_qubits - 1 - t).collect();
        kernels::apply_gate(&mut self.data, gate, &bits);
    }

    /// One column of the accumulated unitary (the image of basis state `j`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= 2ⁿ`.
    pub fn column(&self, j: usize) -> &[Complex] {
        &self.data[j * self.dim..(j + 1) * self.dim]
    }

    /// Materializes the accumulated unitary matrix.
    pub fn finish(&self) -> Matrix {
        let mut m = Matrix::zeros(self.dim, self.dim);
        for j in 0..self.dim {
            for (i, &amp) in self.column(j).iter().enumerate() {
                m[(i, j)] = amp;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, State};

    const TOL: f64 = 1e-10;

    #[test]
    fn identity_when_no_gates() {
        let b = UnitaryBuilder::new(3);
        assert!(b.finish().approx_eq(&Matrix::identity(8), TOL));
    }

    #[test]
    fn single_gate_embedding_matches_kron() {
        let mut b = UnitaryBuilder::new(2);
        b.apply(&gates::x(), &[0]);
        // X on qubit 0 (MSB) = X ⊗ I
        let expected = gates::x().kron(&Matrix::identity(2));
        assert!(b.finish().approx_eq(&expected, TOL));
    }

    #[test]
    fn gate_order_is_circuit_order() {
        // Apply H then Z to one qubit: unitary = Z * H (matrix order).
        let mut b = UnitaryBuilder::new(1);
        b.apply(&gates::h(), &[0]);
        b.apply(&gates::z(), &[0]);
        let expected = &gates::z() * &gates::h();
        assert!(b.finish().approx_eq(&expected, TOL));
    }

    #[test]
    fn swap_from_three_cx() {
        let mut b = UnitaryBuilder::new(2);
        b.apply(&gates::cx(), &[0, 1]);
        b.apply(&gates::cx(), &[1, 0]);
        b.apply(&gates::cx(), &[0, 1]);
        assert!(b.finish().approx_eq(&gates::swap(), TOL));
    }

    #[test]
    fn result_is_unitary() {
        let mut b = UnitaryBuilder::new(3);
        b.apply(&gates::h(), &[0]);
        b.apply(&gates::ccz(), &[0, 1, 2]);
        b.apply(&gates::rx(0.7), &[2]);
        assert!(b.finish().is_unitary(TOL));
    }

    #[test]
    fn matches_per_column_state_simulation() {
        // The contiguous buffer must agree with simulating each basis state
        // separately through the seed reference path.
        let n = 4;
        let ops: Vec<(Matrix, Vec<usize>)> = vec![
            (gates::h(), vec![2]),
            (gates::u3(0.7, 0.1, -0.4), vec![0]),
            (gates::cx(), vec![2, 1]),
            (gates::ccz(), vec![0, 1, 3]),
            (gates::swap(), vec![3, 0]),
        ];
        let mut b = UnitaryBuilder::new(n);
        for (gate, targets) in &ops {
            b.apply(gate, targets);
        }
        let u = b.finish();
        for j in 0..1usize << n {
            let mut col = State::basis(n, j);
            for (gate, targets) in &ops {
                col.apply_reference(gate, targets);
            }
            for (i, &amp) in col.amplitudes().iter().enumerate() {
                assert!(u[(i, j)].approx_eq(amp, TOL));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unitary construction limited")]
    fn oversized_register_panics() {
        let _ = UnitaryBuilder::new(UnitaryBuilder::MAX_QUBITS + 1);
    }
}
