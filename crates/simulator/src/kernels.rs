//! Stride-based gate-application kernels.
//!
//! [`State::apply`](crate::State::apply) and
//! [`UnitaryBuilder::apply`](crate::UnitaryBuilder::apply) both funnel into
//! the crate-internal `apply_gate`, which classifies the gate matrix once
//! per application and dispatches to an allocation-free closed-form kernel:
//!
//! * **1-qubit** gates run a butterfly over amplitude pairs `(i, i + 2^b)`,
//! * **2-qubit** gates run a 4-way butterfly over the four strided indices of
//!   each group,
//! * **(multi-)controlled 1-qubit** gates (`CX`, `CZ`, `CCZ`, `CⁿZ`, `CRZ`,
//!   …) touch only the half-space where every control bit is set,
//! * everything else falls back to a generic gather/scatter with per-group
//!   offsets hoisted out of the inner loop.
//!
//! All kernels operate on a raw amplitude slice plus bit positions, so the
//! same code serves a `2ⁿ`-amplitude state vector and the `2ⁿ × 2ⁿ`
//! column-major buffer of [`UnitaryBuilder`](crate::UnitaryBuilder) (where
//! the column index contributes extra untouched high bits). Buffers with at
//! least [`PAR_MIN_AMPLITUDES`] entries are split into self-contained
//! aligned chunks and processed by scoped threads.

use crate::{Complex, Matrix};

/// Minimum amplitude count before gate application fans out across threads.
///
/// `2^16` amplitudes correspond to a 16-qubit register (or an 8-qubit
/// `UnitaryBuilder`); below that the per-thread spawn cost dominates.
pub const PAR_MIN_AMPLITUDES: usize = 1 << 16;

/// How a gate matrix will be applied, decided once per application.
enum Kernel {
    /// Arbitrary 2×2 gate, row-major.
    OneQ([Complex; 4]),
    /// Arbitrary 4×4 gate, row-major.
    TwoQ(Box<[Complex; 16]>),
    /// Identity except the bottom-right 2×2 block: a 1-qubit gate under
    /// `k - 1` controls. Carries the 2×2 block.
    Controlled([Complex; 4]),
    /// No specialized shape; use the gather/scatter fallback.
    Generic,
}

/// Classifies `gate` (a `2^k × 2^k` matrix) for dispatch.
fn classify(gate: &Matrix, k: usize) -> Kernel {
    match k {
        1 => {
            let g = gate.as_slice();
            Kernel::OneQ([g[0], g[1], g[2], g[3]])
        }
        2 => match controlled_block(gate) {
            Some(block) => Kernel::Controlled(block),
            None => {
                let mut m = [Complex::ZERO; 16];
                m.copy_from_slice(gate.as_slice());
                Kernel::TwoQ(Box::new(m))
            }
        },
        _ if k >= 3 => match controlled_block(gate) {
            Some(block) => Kernel::Controlled(block),
            None => Kernel::Generic,
        },
        _ => Kernel::Generic, // k == 0: a 1×1 global-phase "gate"
    }
}

/// If `gate` is the identity everywhere except its bottom-right 2×2 block,
/// returns that block. Entries are compared exactly: standard controlled
/// gates are constructed from literal `0.0`/`1.0` entries, and a near-miss
/// simply falls back to the (always correct) generic path.
fn controlled_block(gate: &Matrix) -> Option<[Complex; 4]> {
    let gdim = gate.rows();
    debug_assert!(gdim >= 4);
    let body = gdim - 2;
    for r in 0..gdim {
        for c in 0..gdim {
            if r >= body && c >= body {
                continue; // the candidate block itself is unconstrained
            }
            let expect = if r == c { Complex::ONE } else { Complex::ZERO };
            if gate[(r, c)] != expect {
                return None;
            }
        }
    }
    Some([
        gate[(body, body)],
        gate[(body, body + 1)],
        gate[(body + 1, body)],
        gate[(body + 1, body + 1)],
    ])
}

/// Validates a gate/target combination against a register width; shared by
/// `State::apply` and `UnitaryBuilder::apply`.
///
/// # Panics
///
/// Panics if the matrix shape does not match the target count, if a target
/// repeats, or if a target is out of range.
pub(crate) fn validate_targets(num_qubits: usize, gate: &Matrix, targets: &[usize]) {
    let gdim = 1usize << targets.len();
    assert_eq!(gate.rows(), gdim, "gate matrix must be 2^k x 2^k");
    assert_eq!(gate.cols(), gdim, "gate matrix must be 2^k x 2^k");
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < num_qubits, "target qubit {t} out of range");
        assert!(
            !targets[..i].contains(&t),
            "duplicate target qubit {t} in gate application"
        );
    }
}

/// Applies `gate` to `amps` in place. `bits[i]` is the bit position (from
/// LSB) of the gate's `i`-th target in the buffer index; `bits[0]` is the
/// most significant bit of the gate's own index space. `amps.len()` must be
/// a power of two with every bit position in range.
pub(crate) fn apply_gate(amps: &mut [Complex], gate: &Matrix, bits: &[usize]) {
    debug_assert!(amps.len().is_power_of_two());
    debug_assert!(bits
        .iter()
        .all(|&b| (1usize << b) < amps.len() || amps.len() == 1));
    // Smallest aligned block size that contains whole gate groups; chunks of
    // this granularity can be processed independently.
    let unit = 1usize << bits.iter().map(|&b| b + 1).max().unwrap_or(0);
    let threads = plan_threads(amps.len(), unit);
    match classify(gate, bits.len()) {
        Kernel::OneQ(m) => {
            run_chunked(amps, unit, threads, &|chunk| kernel_1q(chunk, bits[0], &m));
        }
        Kernel::TwoQ(m) => {
            run_chunked(amps, unit, threads, &|chunk| {
                kernel_2q(chunk, bits[0], bits[1], &m)
            });
        }
        Kernel::Controlled(m) => {
            let k = bits.len();
            let cmask: usize = bits[..k - 1].iter().map(|&b| 1usize << b).sum();
            run_chunked(amps, unit, threads, &|chunk| {
                kernel_controlled(chunk, cmask, bits[k - 1], &m)
            });
        }
        Kernel::Generic => {
            let offsets = group_offsets(bits);
            let mut sorted_bits = bits.to_vec();
            sorted_bits.sort_unstable();
            run_chunked(amps, unit, threads, &|chunk| {
                // One scratch per chunk (i.e. per thread), not per group.
                let mut scratch = vec![Complex::ZERO; offsets.len()];
                kernel_generic(chunk, &sorted_bits, &offsets, gate, &mut scratch);
            });
        }
    }
}

/// Number of worker threads for a buffer of `len` amplitudes split at `unit`
/// granularity: 1 below the size threshold or when the machine/layout offers
/// no parallelism.
fn plan_threads(len: usize, unit: usize) -> usize {
    if len < PAR_MIN_AMPLITUDES {
        return 1;
    }
    let chunks = len / unit;
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(chunks.max(1))
}

/// Runs `f` over `amps` split into `threads` contiguous pieces, each a
/// multiple of `unit` so no gate group straddles a piece boundary.
fn run_chunked(
    amps: &mut [Complex],
    unit: usize,
    threads: usize,
    f: &(dyn Fn(&mut [Complex]) + Sync),
) {
    let chunks = amps.len() / unit;
    if threads <= 1 || chunks < 2 {
        f(amps);
        return;
    }
    let per = chunks.div_ceil(threads) * unit;
    std::thread::scope(|s| {
        for piece in amps.chunks_mut(per) {
            s.spawn(move || f(piece));
        }
    });
}

/// Widest SIMD tier the running x86-64 CPU supports: 2 for AVX-512F, 1 for
/// AVX2+FMA, 0 for baseline.
#[cfg(target_arch = "x86_64")]
fn simd_level() -> u8 {
    use std::sync::OnceLock;
    static LEVEL: OnceLock<u8> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if is_x86_feature_detected!("avx512f") {
            2
        } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            1
        } else {
            0
        }
    })
}

/// Declares `$name` as a dispatcher over `$body`: on x86-64 it calls an
/// AVX-512F or AVX2+FMA `#[target_feature]` clone when the CPU supports one
/// (the `#[inline(always)]` body is re-codegenned with vector
/// instructions), otherwise the portable scalar build.
macro_rules! simd_kernel {
    ($(#[$doc:meta])* $name:ident / $avx:ident / $avx512:ident =>
     $body:ident ( $($arg:ident : $ty:ty),* $(,)? )) => {
        $(#[$doc])*
        fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: each clone is entered only after its features were
            // detected on the running CPU.
            match simd_level() {
                2 => return unsafe { $avx512($($arg),*) },
                1 => return unsafe { $avx($($arg),*) },
                _ => {}
            }
            $body($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2", enable = "fma")]
        unsafe fn $avx($($arg: $ty),*) {
            $body($($arg),*);
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f", enable = "fma")]
        unsafe fn $avx512($($arg: $ty),*) {
            $body($($arg),*);
        }
    };
}

simd_kernel! {
    /// Butterfly for an arbitrary 1-qubit gate on bit position `bit`.
    kernel_1q / kernel_1q_avx / kernel_1q_avx512 => kernel_1q_body(amps: &mut [Complex], bit: usize, m: &[Complex; 4])
}

simd_kernel! {
    /// 4-way butterfly for an arbitrary 2-qubit gate. `b0` is the bit
    /// position of the gate's most significant target, `b1` of its least
    /// significant.
    kernel_2q / kernel_2q_avx / kernel_2q_avx512 => kernel_2q_body(
        amps: &mut [Complex],
        b0: usize,
        b1: usize,
        m: &[Complex; 16],
    )
}

simd_kernel! {
    /// Multi-controlled 1-qubit gate: applies the 2×2 block `m` to the
    /// target bit only where every bit of `cmask` is set, enumerating
    /// exactly the `len >> (1 + |controls|)` affected pairs.
    kernel_controlled / kernel_controlled_avx / kernel_controlled_avx512 => kernel_controlled_body(
        amps: &mut [Complex],
        cmask: usize,
        tbit: usize,
        m: &[Complex; 4],
    )
}

/// Scalar 1-qubit butterfly. The complex products are spelled out over
/// `f64` components so the compiler can interleave the four dot products
/// instead of chaining `Complex` ops.
#[inline(always)]
fn kernel_1q_body(amps: &mut [Complex], bit: usize, m: &[Complex; 4]) {
    let (m00r, m00i) = (m[0].re, m[0].im);
    let (m01r, m01i) = (m[1].re, m[1].im);
    let (m10r, m10i) = (m[2].re, m[2].im);
    let (m11r, m11i) = (m[3].re, m[3].im);
    let stride = 1usize << bit;
    for block in amps.chunks_exact_mut(2 * stride) {
        let (lo, hi) = block.split_at_mut(stride);
        for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
            let (xr, xi) = (a.re, a.im);
            let (yr, yi) = (b.re, b.im);
            a.re = m00r * xr - m00i * xi + m01r * yr - m01i * yi;
            a.im = m00r * xi + m00i * xr + m01r * yi + m01i * yr;
            b.re = m10r * xr - m10i * xi + m11r * yr - m11i * yi;
            b.im = m10r * xi + m10i * xr + m11r * yi + m11i * yr;
        }
    }
}

/// Scalar 4-way butterfly for an arbitrary 2-qubit gate.
#[inline(always)]
fn kernel_2q_body(amps: &mut [Complex], b0: usize, b1: usize, m: &[Complex; 16]) {
    let s0 = 1usize << b0;
    let s1 = 1usize << b1;
    let (hi, lo) = (s0.max(s1), s0.min(s1));
    let mut outer = 0;
    while outer < amps.len() {
        let mut mid = outer;
        while mid < outer + hi {
            for base in mid..mid + lo {
                let i01 = base | s1;
                let i10 = base | s0;
                let i11 = i10 | s1;
                let a00 = amps[base];
                let a01 = amps[i01];
                let a10 = amps[i10];
                let a11 = amps[i11];
                amps[base] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
                amps[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
                amps[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
                amps[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
            }
            mid += 2 * lo;
        }
        outer += 2 * hi;
    }
}

/// Scalar multi-controlled 1-qubit kernel.
#[inline(always)]
fn kernel_controlled_body(amps: &mut [Complex], cmask: usize, tbit: usize, m: &[Complex; 4]) {
    let stride = 1usize << tbit;
    let fixed = cmask | stride;
    let fixed_count = fixed.count_ones() as usize;
    // Ascending positions of the fixed (control + target) bits.
    let mut positions = [0usize; usize::BITS as usize];
    let mut npos = 0;
    let mut rest = fixed;
    while rest != 0 {
        positions[npos] = rest.trailing_zeros() as usize;
        npos += 1;
        rest &= rest - 1;
    }
    let groups = amps.len() >> fixed_count;
    for g in 0..groups {
        // Spread the free bits of `g` around the fixed positions.
        let mut idx = g;
        for &b in &positions[..npos] {
            let low = idx & ((1usize << b) - 1);
            idx = ((idx >> b) << (b + 1)) | low;
        }
        let i0 = idx | cmask;
        let i1 = i0 | stride;
        let x = amps[i0];
        let y = amps[i1];
        amps[i0] = m[0] * x + m[1] * y;
        amps[i1] = m[2] * x + m[3] * y;
    }
}

/// Buffer-index offset of each gate-index within a group: `offsets[g]` ORs
/// the stride of every target whose gate-space bit is set in `g`.
fn group_offsets(bits: &[usize]) -> Vec<usize> {
    let k = bits.len();
    (0..1usize << k)
        .map(|g| {
            let mut off = 0usize;
            for (pos, &b) in bits.iter().enumerate() {
                if (g >> (k - 1 - pos)) & 1 == 1 {
                    off |= 1usize << b;
                }
            }
            off
        })
        .collect()
}

/// Generic gather/scatter fallback with hoisted offsets: one compressed
/// index enumerates the non-target bits, `offsets` locates the group's
/// amplitudes, and `scratch` (allocated once per thread) holds the gathered
/// input while rows are scattered back.
fn kernel_generic(
    amps: &mut [Complex],
    sorted_bits: &[usize],
    offsets: &[usize],
    gate: &Matrix,
    scratch: &mut [Complex],
) {
    let k = sorted_bits.len();
    let gdim = offsets.len();
    let g = gate.as_slice();
    let groups = amps.len() >> k;
    for group in 0..groups {
        // Expand the compressed index by inserting a zero at each target bit.
        let mut base = group;
        for &b in sorted_bits {
            let low = base & ((1usize << b) - 1);
            base = ((base >> b) << (b + 1)) | low;
        }
        for (slot, &off) in scratch.iter_mut().zip(offsets) {
            *slot = amps[base + off];
        }
        for (r, &off) in offsets.iter().enumerate() {
            let row = &g[r * gdim..(r + 1) * gdim];
            let mut acc = Complex::ZERO;
            for (&w, &x) in row.iter().zip(scratch.iter()) {
                acc += w * x;
            }
            amps[base + off] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    /// Deterministic non-trivial amplitude buffer (not normalized; the
    /// kernels are linear maps and do not care).
    fn test_amps(len: usize) -> Vec<Complex> {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let re = ((state >> 40) as f64) / (1u64 << 24) as f64 - 0.5;
                let im = ((state >> 16) as f64 % (1u64 << 24) as f64) / (1u64 << 24) as f64 - 0.5;
                Complex::new(re, im)
            })
            .collect()
    }

    fn max_diff(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn controlled_detection() {
        assert!(controlled_block(&gates::cx()).is_some());
        assert!(controlled_block(&gates::cz()).is_some());
        assert!(controlled_block(&gates::ccz()).is_some());
        assert!(controlled_block(&gates::ccx()).is_some());
        assert!(controlled_block(&gates::cnz(4)).is_some());
        assert!(controlled_block(&gates::crz(0.3)).is_some());
        assert!(controlled_block(&gates::swap()).is_none());
        let block = controlled_block(&gates::cz()).unwrap();
        assert_eq!(
            block,
            [Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE]
        );
    }

    #[test]
    fn forced_multithread_chunking_matches_serial() {
        // One physical core is enough: run_chunked takes the thread count
        // explicitly, so this exercises the real scoped-thread path.
        let bits = [3usize, 0];
        let gate = gates::swap();
        let mut m = [Complex::ZERO; 16];
        m.copy_from_slice(gate.as_slice());
        let unit = 1usize << 4;

        let mut serial = test_amps(1 << 10);
        let mut parallel = serial.clone();
        kernel_2q(&mut serial, bits[0], bits[1], &m);
        run_chunked(&mut parallel, unit, 4, &|chunk| {
            kernel_2q(chunk, bits[0], bits[1], &m)
        });
        assert!(max_diff(&serial, &parallel) == 0.0);
    }

    #[test]
    fn forced_multithread_controlled_matches_serial() {
        let mut serial = test_amps(1 << 9);
        let mut parallel = serial.clone();
        let m = [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO]; // X block
        let cmask = (1 << 2) | (1 << 5);
        kernel_controlled(&mut serial, cmask, 7, &m);
        run_chunked(&mut parallel, 1 << 8, 3, &|chunk| {
            kernel_controlled(chunk, cmask, 7, &m)
        });
        assert!(max_diff(&serial, &parallel) == 0.0);
    }

    #[test]
    fn plan_threads_stays_serial_below_threshold() {
        assert_eq!(plan_threads(PAR_MIN_AMPLITUDES / 2, 2), 1);
        // At or above the threshold the count is capped by the chunk count.
        assert!(plan_threads(PAR_MIN_AMPLITUDES, PAR_MIN_AMPLITUDES) == 1);
    }
}
