//! Unitary equivalence checking up to global phase.
//!
//! Two circuits are functionally equivalent iff their unitaries `A` and `B`
//! satisfy `A = e^{iφ}·B` for some real φ — global phase is unobservable.
//! This module provides the comparison primitive used by the wChecker (§6 of
//! the paper) together with a process-fidelity diagnostic.

use crate::{Complex, Matrix};

/// Outcome of an equivalence comparison between two unitaries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Equivalence {
    /// Matrices are equal up to global phase; carries the relative phase φ
    /// such that `A ≈ e^{iφ}·B`, and the maximum entry-wise deviation after
    /// phase alignment.
    EquivalentUpToPhase {
        /// Relative global phase in radians.
        phase: f64,
        /// Max entry deviation after removing the phase.
        max_deviation: f64,
    },
    /// Matrices differ beyond tolerance; carries the best-case deviation.
    Different {
        /// Max entry deviation after the best phase alignment attempt.
        max_deviation: f64,
    },
    /// Shapes do not match, so no comparison is possible.
    ShapeMismatch,
}

impl Equivalence {
    /// Whether the comparison found the unitaries equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::EquivalentUpToPhase { .. })
    }
}

/// Compares two unitaries up to global phase with entry-wise tolerance `tol`.
///
/// # Examples
///
/// ```
/// use weaver_simulator::{equiv, gates, Complex};
/// let a = gates::rz(1.0);
/// let b = gates::p(1.0); // differs from RZ(1) by a global phase
/// assert!(equiv::compare(&a, &b, 1e-10).is_equivalent());
/// ```
pub fn compare(a: &Matrix, b: &Matrix, tol: f64) -> Equivalence {
    if a.rows() != b.rows() || a.cols() != b.cols() || !a.is_square() {
        return Equivalence::ShapeMismatch;
    }
    // Find the entry of largest magnitude in b to anchor the phase estimate
    // (avoids dividing by a numerically tiny entry).
    let mut best = (0usize, 0usize);
    let mut best_mag = -1.0;
    for r in 0..b.rows() {
        for c in 0..b.cols() {
            let m = b[(r, c)].norm_sqr();
            if m > best_mag {
                best_mag = m;
                best = (r, c);
            }
        }
    }
    if best_mag <= tol * tol {
        // b is numerically zero; equal only if a is too.
        let dev = a.frobenius_norm();
        return if dev <= tol {
            Equivalence::EquivalentUpToPhase {
                phase: 0.0,
                max_deviation: dev,
            }
        } else {
            Equivalence::Different { max_deviation: dev }
        };
    }
    let ratio = a[best] / b[best];
    let phase = ratio.arg();
    // Deviation after phase alignment, computed entry-wise without
    // materializing the rotated matrix.
    let w = Complex::from_polar(phase);
    let max_deviation = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (*x - *y * w).abs())
        .fold(0.0, f64::max);
    if max_deviation <= tol {
        Equivalence::EquivalentUpToPhase {
            phase,
            max_deviation,
        }
    } else {
        Equivalence::Different { max_deviation }
    }
}

/// Process fidelity `|Tr(A†B)|² / d²` between two same-sized unitaries,
/// 1.0 iff they are equal up to global phase.
///
/// # Panics
///
/// Panics if the shapes differ or the matrices are not square.
pub fn process_fidelity(a: &Matrix, b: &Matrix) -> f64 {
    assert!(a.is_square() && b.is_square(), "unitaries must be square");
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let d = a.rows() as f64;
    let tr = a.adjoint().matmul(b).trace();
    tr.norm_sqr() / (d * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const TOL: f64 = 1e-10;

    #[test]
    fn identical_matrices_are_equivalent() {
        let m = gates::u3(0.3, 0.8, -0.2);
        let e = compare(&m, &m, TOL);
        assert!(e.is_equivalent());
        if let Equivalence::EquivalentUpToPhase { phase, .. } = e {
            assert!(phase.abs() < TOL);
        }
    }

    #[test]
    fn global_phase_is_ignored() {
        let m = gates::h();
        let rotated = m.scale(Complex::from_polar(1.234));
        let e = compare(&rotated, &m, TOL);
        assert!(e.is_equivalent());
        if let Equivalence::EquivalentUpToPhase { phase, .. } = e {
            assert!((phase - 1.234).abs() < 1e-9);
        }
    }

    #[test]
    fn different_gates_are_not_equivalent() {
        assert!(!compare(&gates::x(), &gates::z(), TOL).is_equivalent());
        assert!(!compare(&gates::cz(), &gates::cx(), TOL).is_equivalent());
    }

    #[test]
    fn shape_mismatch_detected() {
        assert_eq!(
            compare(&gates::x(), &gates::cx(), TOL),
            Equivalence::ShapeMismatch
        );
    }

    #[test]
    fn process_fidelity_extremes() {
        let f_same = process_fidelity(&gates::h(), &gates::h());
        assert!((f_same - 1.0).abs() < TOL);
        let f_phase = process_fidelity(&gates::rz(1.0), &gates::p(1.0));
        assert!((f_phase - 1.0).abs() < TOL);
        let f_diff = process_fidelity(&gates::x(), &gates::z());
        assert!(f_diff < 0.5);
    }

    #[test]
    fn near_miss_reports_deviation() {
        let a = gates::rx(0.5);
        let b = gates::rx(0.5 + 1e-3);
        match compare(&a, &b, 1e-8) {
            Equivalence::Different { max_deviation } => assert!(max_deviation > 1e-8),
            other => panic!("expected Different, got {other:?}"),
        }
    }
}
