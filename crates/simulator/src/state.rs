//! Dense state-vector simulation.
//!
//! Bit-ordering convention (used consistently across the workspace): for an
//! `n`-qubit register, qubit `0` is the **most significant** bit of the basis
//! index, matching how circuit diagrams and the paper's bitstrings (e.g.
//! `110010` with `q0` first) are read. The bit of qubit `q` in basis index
//! `b` is `(b >> (n - 1 - q)) & 1`.

use crate::{kernels, Complex, Matrix};

/// A pure quantum state over `n` qubits as a dense vector of 2ⁿ amplitudes.
///
/// # Examples
///
/// ```
/// use weaver_simulator::{gates, State};
/// let mut psi = State::zero(2);
/// psi.apply(&gates::h(), &[0]);
/// psi.apply(&gates::cx(), &[0, 1]);
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct State {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 24 (guarding accidental exponential
    /// blow-up; the checker only needs small registers).
    pub fn zero(num_qubits: usize) -> Self {
        State::basis(num_qubits, 0)
    }

    /// The computational basis state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits` or `num_qubits > 24`.
    pub fn basis(num_qubits: usize, index: usize) -> Self {
        assert!(
            num_qubits <= 24,
            "state vector too large: {num_qubits} qubits"
        );
        let dim = 1usize << num_qubits;
        assert!(
            index < dim,
            "basis index {index} out of range for {num_qubits} qubits"
        );
        let mut amplitudes = vec![Complex::ZERO; dim];
        amplitudes[index] = Complex::ONE;
        State {
            num_qubits,
            amplitudes,
        }
    }

    /// Builds a state from raw amplitudes (must have power-of-two length).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        let dim = amplitudes.len();
        assert!(
            dim.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        State {
            num_qubits: dim.trailing_zeros() as usize,
            amplitudes,
        }
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension of the Hilbert space (2ⁿ).
    #[inline]
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// Amplitude slice, indexed by basis state.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Applies a `k`-qubit gate (given as a `2^k × 2^k` matrix) to the listed
    /// target qubits. `targets[0]` is the most significant qubit of the gate's
    /// own index space.
    ///
    /// Dispatches to a stride-based specialized kernel (1-qubit butterfly,
    /// 2-qubit, multi-controlled 1-qubit) with a generic gather/scatter
    /// fallback; see [`crate::kernels`]. Registers with at least
    /// [`kernels::PAR_MIN_AMPLITUDES`] amplitudes are processed by scoped
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the target count, if a
    /// target repeats, or if a target is out of range.
    pub fn apply(&mut self, gate: &Matrix, targets: &[usize]) {
        kernels::validate_targets(self.num_qubits, gate, targets);
        // Trace only the registers big enough to go parallel — per-gate
        // spans on tiny registers would swamp a trace with noise.
        let _span = (self.amplitudes.len() >= kernels::PAR_MIN_AMPLITUDES).then(|| {
            weaver_obs::span::span("kernel", "apply-gate")
                .with_arg("qubits", self.num_qubits)
                .with_arg("targets", targets.len())
        });
        // Bit position (from LSB) of each target in the basis index.
        let bits: Vec<usize> = targets.iter().map(|&t| self.num_qubits - 1 - t).collect();
        kernels::apply_gate(&mut self.amplitudes, gate, &bits);
    }

    /// Applies a gate via the seed's generic gather/scatter loop, bypassing
    /// the specialized kernels.
    ///
    /// Kept as the differential-testing oracle and the "before" side of the
    /// tracked benchmark baseline (`BENCH_simulator.json`); use [`apply`] for
    /// real work.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`apply`].
    ///
    /// [`apply`]: State::apply
    pub fn apply_reference(&mut self, gate: &Matrix, targets: &[usize]) {
        kernels::validate_targets(self.num_qubits, gate, targets);
        let k = targets.len();
        let gdim = 1usize << k;
        let bits: Vec<usize> = targets.iter().map(|&t| self.num_qubits - 1 - t).collect();
        let mask: usize = bits.iter().map(|&b| 1usize << b).sum();

        let mut scratch = vec![Complex::ZERO; gdim];
        let dim = self.dim();
        // Iterate over every assignment of the non-target bits.
        for base in 0..dim {
            if base & mask != 0 {
                continue; // only visit each group once, at target bits = 0
            }
            // Gather the 2^k amplitudes of this group.
            for (g, slot) in scratch.iter_mut().enumerate() {
                let mut idx = base;
                for (pos, &b) in bits.iter().enumerate() {
                    if (g >> (k - 1 - pos)) & 1 == 1 {
                        idx |= 1 << b;
                    }
                }
                *slot = self.amplitudes[idx];
            }
            // Multiply by the gate and scatter back.
            for r in 0..gdim {
                let mut acc = Complex::ZERO;
                for (c, &amp) in scratch.iter().enumerate() {
                    acc += gate[(r, c)] * amp;
                }
                let mut idx = base;
                for (pos, &b) in bits.iter().enumerate() {
                    if (r >> (k - 1 - pos)) & 1 == 1 {
                        idx |= 1 << b;
                    }
                }
                self.amplitudes[idx] = acc;
            }
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &State) -> Complex {
        assert_eq!(self.dim(), other.dim(), "state dimensions differ");
        self.amplitudes
            .iter()
            .zip(&other.amplitudes)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Squared norm of the state (should be 1 for physical states).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Measurement probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability of measuring the exact basis state `index`.
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amplitudes[index].norm_sqr()
    }

    /// Samples a basis state given a uniform random value in `[0, 1)`.
    ///
    /// Taking the random value as input keeps this crate free of RNG
    /// dependencies; callers supply e.g. `rng.gen::<f64>()`.
    pub fn sample_with(&self, uniform: f64) -> usize {
        let mut acc = 0.0;
        for (i, a) in self.amplitudes.iter().enumerate() {
            acc += a.norm_sqr();
            if uniform < acc {
                return i;
            }
        }
        self.amplitudes.len() - 1
    }

    /// Fidelity `|⟨self|other⟩|²` with another pure state.
    pub fn fidelity(&self, other: &State) -> f64 {
        self.inner(other).norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    const TOL: f64 = 1e-12;

    #[test]
    fn zero_state_is_normalized() {
        let s = State::zero(3);
        assert_eq!(s.dim(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < TOL);
        assert!((s.probability_of(0) - 1.0).abs() < TOL);
    }

    #[test]
    fn x_flips_target_bit_msb_convention() {
        // Flip qubit 0 of a 2-qubit register: |00> -> |10> which is index 2.
        let mut s = State::zero(2);
        s.apply(&gates::x(), &[0]);
        assert!((s.probability_of(0b10) - 1.0).abs() < TOL);
        // Flip qubit 1: |10> -> |11>.
        s.apply(&gates::x(), &[1]);
        assert!((s.probability_of(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut s = State::zero(2);
        s.apply(&gates::h(), &[0]);
        s.apply(&gates::cx(), &[0, 1]);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < TOL);
        assert!((p[0b11] - 0.5).abs() < TOL);
        assert!(p[0b01].abs() < TOL && p[0b10].abs() < TOL);
    }

    #[test]
    fn cx_with_reversed_targets() {
        // control = qubit 1, target = qubit 0.
        let mut s = State::basis(2, 0b01); // q1 = 1
        s.apply(&gates::cx(), &[1, 0]);
        assert!((s.probability_of(0b11) - 1.0).abs() < TOL);
    }

    #[test]
    fn three_qubit_gate_on_scattered_targets() {
        // CCX on (q0, q2) controls, q1 target in a 3-qubit register.
        let mut s = State::basis(3, 0b101); // q0=1, q2=1
        s.apply(&gates::ccx(), &[0, 2, 1]);
        assert!((s.probability_of(0b111) - 1.0).abs() < TOL);
    }

    #[test]
    fn inner_product_orthogonality() {
        let a = State::basis(2, 1);
        let b = State::basis(2, 2);
        assert!(a.inner(&b).is_zero(TOL));
        assert!(a.inner(&a).approx_eq(Complex::ONE, TOL));
    }

    #[test]
    fn sampling_respects_distribution_edges() {
        let mut s = State::zero(1);
        s.apply(&gates::h(), &[0]);
        assert_eq!(s.sample_with(0.0), 0);
        assert_eq!(s.sample_with(0.75), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_panic() {
        let mut s = State::zero(2);
        s.apply(&gates::cx(), &[0, 0]);
    }

    fn assert_states_close(a: &State, b: &State, tol: f64) {
        let d = a
            .amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(d <= tol, "states differ by {d}");
    }

    #[test]
    fn kernels_match_reference_on_mixed_gates() {
        let n = 6;
        let mut fast = State::zero(n);
        let mut slow = State::zero(n);
        let ops: Vec<(Matrix, Vec<usize>)> = vec![
            (gates::h(), vec![0]),
            (gates::h(), vec![3]),
            (gates::u3(0.4, -1.1, 2.0), vec![5]),
            (gates::cx(), vec![0, 4]),
            (gates::cz(), vec![5, 1]),
            (gates::swap(), vec![2, 3]),
            (gates::crz(0.9), vec![4, 2]),
            (gates::ccz(), vec![1, 3, 5]),
            (gates::ccx(), vec![5, 0, 2]),
            (gates::cnz(3), vec![0, 1, 2, 3]),
            (gates::h().kron(&gates::rx(0.3)), vec![4, 1]),
        ];
        for (gate, targets) in &ops {
            fast.apply(gate, targets);
            slow.apply_reference(gate, targets);
            assert_states_close(&fast, &slow, 1e-12);
        }
    }

    #[test]
    fn threshold_sized_register_matches_reference() {
        // 2^16 amplitudes: at the scoped-thread threshold, so this walks the
        // chunked dispatch path end to end.
        let n = 16;
        let mut fast = State::zero(n);
        let mut slow = State::zero(n);
        for q in [0usize, 7, 15] {
            fast.apply(&gates::h(), &[q]);
            slow.apply_reference(&gates::h(), &[q]);
        }
        fast.apply(&gates::cx(), &[0, 15]);
        slow.apply_reference(&gates::cx(), &[0, 15]);
        fast.apply(&gates::swap(), &[3, 12]);
        slow.apply_reference(&gates::swap(), &[3, 12]);
        assert_states_close(&fast, &slow, 1e-12);
        assert!((fast.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut s = State::zero(4);
        for q in 0..4 {
            s.apply(&gates::h(), &[q]);
        }
        s.apply(&gates::ccz(), &[0, 2, 3]);
        s.apply(&gates::cz(), &[1, 3]);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }
}
