//! Dense quantum simulation substrate for the Weaver compiler framework.
//!
//! This crate provides the numerical foundations that the rest of the
//! workspace builds on:
//!
//! * [`Complex`] — a dependency-free `f64` complex scalar,
//! * [`Matrix`] — dense complex matrices with Kronecker products,
//! * [`gates`] — the standard gate matrices (Paulis, rotations, `U3`, `CZ`,
//!   `CCZ`, `CⁿZ`, …),
//! * [`State`] — a state-vector simulator for functional testing,
//! * [`kernels`] — stride-based specialized gate-application kernels shared
//!   by [`State`] and [`UnitaryBuilder`],
//! * [`UnitaryBuilder`] — materializes whole-register unitaries in a single
//!   contiguous column-major buffer,
//! * [`equiv`] — global-phase-insensitive unitary comparison used by the
//!   wChecker (paper §6).
//!
//! # Example
//!
//! Verify that `H·CZ·H` on the target implements a CNOT:
//!
//! ```
//! use weaver_simulator::{equiv, gates, UnitaryBuilder};
//!
//! let mut b = UnitaryBuilder::new(2);
//! b.apply(&gates::h(), &[1]);
//! b.apply(&gates::cz(), &[0, 1]);
//! b.apply(&gates::h(), &[1]);
//! assert!(equiv::compare(&b.finish(), &gates::cx(), 1e-10).is_equivalent());
//! ```

#![warn(missing_docs)]

mod complex;
pub mod equiv;
pub mod gates;
pub mod kernels;
mod matrix;
mod state;
mod unitary;

pub use complex::Complex;
pub use equiv::Equivalence;
pub use matrix::Matrix;
pub use state::State;
pub use unitary::UnitaryBuilder;
