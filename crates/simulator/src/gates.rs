//! Standard gate matrices used across the workspace.
//!
//! All constructors return freshly allocated [`Matrix`] values in the
//! computational basis with the convention that the first listed qubit is the
//! most significant index bit (see [`crate::State`]).

use crate::{Complex, Matrix};

/// Identity on one qubit.
pub fn id() -> Matrix {
    Matrix::identity(2)
}

/// Pauli-X (NOT).
pub fn x() -> Matrix {
    Matrix::from_reals(2, &[0.0, 1.0, 1.0, 0.0])
}

/// Pauli-Y.
pub fn y() -> Matrix {
    Matrix::from_rows(
        2,
        2,
        &[Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO],
    )
}

/// Pauli-Z.
pub fn z() -> Matrix {
    Matrix::from_reals(2, &[1.0, 0.0, 0.0, -1.0])
}

/// Hadamard.
pub fn h() -> Matrix {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    Matrix::from_reals(2, &[s, s, s, -s])
}

/// Phase gate S = diag(1, i).
pub fn s() -> Matrix {
    Matrix::from_rows(
        2,
        2,
        &[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I],
    )
}

/// S† = diag(1, -i).
pub fn sdg() -> Matrix {
    s().adjoint()
}

/// T = diag(1, e^{iπ/4}).
pub fn t() -> Matrix {
    Matrix::from_rows(
        2,
        2,
        &[
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(std::f64::consts::FRAC_PI_4),
        ],
    )
}

/// T† = diag(1, e^{-iπ/4}).
pub fn tdg() -> Matrix {
    t().adjoint()
}

/// Rotation about X: `RX(θ) = exp(-iθX/2)`.
pub fn rx(theta: f64) -> Matrix {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    Matrix::from_rows(2, 2, &[c, s, s, c])
}

/// Rotation about Y: `RY(θ) = exp(-iθY/2)`.
pub fn ry(theta: f64) -> Matrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Matrix::from_reals(2, &[c, -s, s, c])
}

/// Rotation about Z: `RZ(θ) = exp(-iθZ/2) = diag(e^{-iθ/2}, e^{iθ/2})`.
pub fn rz(theta: f64) -> Matrix {
    Matrix::from_rows(
        2,
        2,
        &[
            Complex::from_polar(-theta / 2.0),
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(theta / 2.0),
        ],
    )
}

/// Phase gate `P(λ) = diag(1, e^{iλ})` (RZ up to global phase).
pub fn p(lambda: f64) -> Matrix {
    Matrix::from_rows(
        2,
        2,
        &[
            Complex::ONE,
            Complex::ZERO,
            Complex::ZERO,
            Complex::from_polar(lambda),
        ],
    )
}

/// The generic single-qubit gate in OpenQASM convention:
///
/// `U3(θ, φ, λ) = [[cos(θ/2), -e^{iλ} sin(θ/2)],
///                 [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Matrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Matrix::from_rows(
        2,
        2,
        &[
            Complex::real(c),
            -(Complex::from_polar(lambda).scale(s)),
            Complex::from_polar(phi).scale(s),
            Complex::from_polar(phi + lambda).scale(c),
        ],
    )
}

/// A Raman rotation `R(x, y, z) = RZ(z)·RY(y)·RX(x)` — the unitary applied by
/// an FPQA Raman pulse with the three Euler angles of the wQasm `@raman`
/// annotation.
pub fn raman(x: f64, y: f64, z: f64) -> Matrix {
    &(&rz(z) * &ry(y)) * &rx(x)
}

/// Controlled-X (CNOT) with qubit order `[control, target]`.
pub fn cx() -> Matrix {
    Matrix::from_reals(
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0, //
            0.0, 0.0, 1.0, 0.0,
        ],
    )
}

/// Controlled-Z (symmetric in its qubits).
pub fn cz() -> Matrix {
    Matrix::from_reals(
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 0.0, 0.0, -1.0,
        ],
    )
}

/// SWAP.
pub fn swap() -> Matrix {
    Matrix::from_reals(
        4,
        &[
            1.0, 0.0, 0.0, 0.0, //
            0.0, 0.0, 1.0, 0.0, //
            0.0, 1.0, 0.0, 0.0, //
            0.0, 0.0, 0.0, 1.0,
        ],
    )
}

/// Controlled-RZ with qubit order `[control, target]`.
pub fn crz(theta: f64) -> Matrix {
    let mut m = Matrix::identity(4);
    m[(2, 2)] = Complex::from_polar(-theta / 2.0);
    m[(3, 3)] = Complex::from_polar(theta / 2.0);
    m
}

/// Toffoli (CCX) with qubit order `[control, control, target]`.
pub fn ccx() -> Matrix {
    let mut m = Matrix::identity(8);
    m[(6, 6)] = Complex::ZERO;
    m[(7, 7)] = Complex::ZERO;
    m[(6, 7)] = Complex::ONE;
    m[(7, 6)] = Complex::ONE;
    m
}

/// Doubly-controlled Z (symmetric; the FPQA-native 3-qubit Rydberg gate).
pub fn ccz() -> Matrix {
    let mut m = Matrix::identity(8);
    m[(7, 7)] = -Complex::ONE;
    m
}

/// The `n`-controlled Z gate `CⁿZ` on `n + 1` qubits: flips the sign of the
/// all-ones basis state. `cnz(1)` is [`cz`], `cnz(2)` is [`ccz`].
///
/// # Panics
///
/// Panics if `n == 0` or the resulting matrix would exceed 2¹² rows.
pub fn cnz(n: usize) -> Matrix {
    assert!(n >= 1, "CnZ needs at least one control");
    assert!(n < 12, "CnZ too large to materialize");
    let dim = 1usize << (n + 1);
    let mut m = Matrix::identity(dim);
    m[(dim - 1, dim - 1)] = -Complex::ONE;
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn all_fixed_gates_are_unitary() {
        for m in [
            id(),
            x(),
            y(),
            z(),
            h(),
            s(),
            sdg(),
            t(),
            tdg(),
            cx(),
            cz(),
            swap(),
            ccx(),
            ccz(),
        ] {
            assert!(m.is_unitary(TOL));
        }
    }

    #[test]
    fn rotations_are_unitary_for_many_angles() {
        for k in 0..16 {
            let th = k as f64 * 0.41 - 3.0;
            assert!(rx(th).is_unitary(TOL));
            assert!(ry(th).is_unitary(TOL));
            assert!(rz(th).is_unitary(TOL));
            assert!(u3(th, 1.3 * th, -0.7 * th).is_unitary(TOL));
        }
    }

    #[test]
    fn u3_special_cases() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // U3(π, 0, π) = X
        assert!(u3(PI, 0.0, PI).approx_eq(&x(), TOL));
        // U3(π/2, 0, π) = H
        assert!(u3(FRAC_PI_2, 0.0, PI).approx_eq(&h(), TOL));
        // U3(0, 0, λ) = P(λ)
        assert!(u3(0.0, 0.0, 1.234).approx_eq(&p(1.234), TOL));
    }

    #[test]
    fn rz_vs_p_differ_by_global_phase() {
        let theta = 0.917;
        let a = rz(theta);
        let b = p(theta).scale(Complex::from_polar(-theta / 2.0));
        assert!(a.approx_eq(&b, TOL));
    }

    #[test]
    fn hzh_equals_x() {
        let hzh = &(&h() * &z()) * &h();
        assert!(hzh.approx_eq(&x(), 1e-10));
    }

    #[test]
    fn cnz_special_cases() {
        assert!(cnz(1).approx_eq(&cz(), TOL));
        assert!(cnz(2).approx_eq(&ccz(), TOL));
        let c3z = cnz(3);
        assert_eq!(c3z.rows(), 16);
        assert!(c3z[(15, 15)].approx_eq(-Complex::ONE, TOL));
    }

    #[test]
    fn ccx_equals_h_conjugated_ccz() {
        // (I⊗I⊗H) CCZ (I⊗I⊗H) = CCX
        let ihh = Matrix::identity(4).kron(&h());
        let composed = &(&ihh * &ccz()) * &ihh;
        assert!(composed.approx_eq(&ccx(), 1e-10));
    }

    #[test]
    fn raman_composition_order() {
        let m = raman(0.3, 0.0, 0.0);
        assert!(m.approx_eq(&rx(0.3), TOL));
        let m = raman(0.0, 0.4, 0.0);
        assert!(m.approx_eq(&ry(0.4), TOL));
        let m = raman(0.0, 0.0, 0.5);
        assert!(m.approx_eq(&rz(0.5), TOL));
    }
}
