//! Unified driver over Weaver, the superconducting baseline, and the three
//! FPQA baselines, mirroring the paper's experimental methodology (§8.1):
//! 10 variants per size, sizes {20, 50, 75, 100, 150, 250}, with per-system
//! applicability limits (Geyser/DPQA time out above 20 variables; the
//! superconducting backend holds 127 qubits).

use weaver_baselines::{Atomique, Dpqa, FpqaCompiler, Geyser};
use weaver_core::{Metrics, Weaver};
use weaver_fpqa::FpqaParams;
use weaver_sat::{generator, Formula};

/// The five systems of the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompilerId {
    /// Qiskit-style SABRE pipeline on IBM Washington.
    Superconducting,
    /// Atomique (Wang et al. 2024).
    Atomique,
    /// Weaver (this paper).
    Weaver,
    /// DPQA (Tan et al. 2024).
    Dpqa,
    /// Geyser (Patel et al. 2022).
    Geyser,
}

impl CompilerId {
    /// All systems in the paper's legend order.
    pub const ALL: [CompilerId; 5] = [
        CompilerId::Superconducting,
        CompilerId::Atomique,
        CompilerId::Weaver,
        CompilerId::Dpqa,
        CompilerId::Geyser,
    ];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            CompilerId::Superconducting => "Superconducting",
            CompilerId::Atomique => "Atomique",
            CompilerId::Weaver => "Weaver",
            CompilerId::Dpqa => "DPQA",
            CompilerId::Geyser => "Geyser",
        }
    }
}

/// One benchmark run outcome: metrics, or the reason the system sat out.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Completed with metrics.
    Done(Metrics),
    /// Timed out (paper marks ✗).
    TimedOut(String),
    /// Not applicable (e.g. circuit wider than the 127-qubit backend).
    NotApplicable(String),
}

impl RunOutcome {
    /// The metrics, if the run completed.
    pub fn metrics(&self) -> Option<&Metrics> {
        match self {
            RunOutcome::Done(m) => Some(m),
            _ => None,
        }
    }

    /// Figure-cell rendering: a number via `f`, or `✗`/`—`.
    pub fn cell(&self, f: impl Fn(&Metrics) -> String) -> String {
        match self {
            RunOutcome::Done(m) => f(m),
            RunOutcome::TimedOut(_) => "✗".to_string(),
            RunOutcome::NotApplicable(_) => "—".to_string(),
        }
    }
}

/// Runs one system on one formula with the paper's applicability rules.
/// Weaver and the superconducting baseline dispatch through the shared
/// backend registry ([`Weaver::compile_target`]); the FPQA baselines keep
/// their own [`FpqaCompiler`] interface.
pub fn run_compiler(id: CompilerId, formula: &Formula, params: &FpqaParams) -> RunOutcome {
    match id {
        CompilerId::Weaver => {
            let weaver = Weaver::new().with_fpqa_params(params.clone());
            match weaver.compile_target("fpqa", formula) {
                Ok(out) => RunOutcome::Done(out.metrics),
                Err(e) => RunOutcome::NotApplicable(e.message),
            }
        }
        CompilerId::Superconducting => {
            match Weaver::new().compile_target("superconducting", formula) {
                Ok(out) => RunOutcome::Done(out.metrics),
                Err(e) => RunOutcome::NotApplicable(e.message),
            }
        }
        CompilerId::Atomique => match Atomique::new(params.clone()).compile(formula) {
            Ok(out) => RunOutcome::Done(out.metrics),
            Err(t) => RunOutcome::TimedOut(t.to_string()),
        },
        CompilerId::Dpqa => match Dpqa::new(params.clone()).compile(formula) {
            Ok(out) => RunOutcome::Done(out.metrics),
            Err(t) => RunOutcome::TimedOut(t.to_string()),
        },
        CompilerId::Geyser => match Geyser::new(params.clone()).compile(formula) {
            Ok(out) => RunOutcome::Done(out.metrics),
            Err(t) => RunOutcome::TimedOut(t.to_string()),
        },
    }
}

/// The benchmark suite configuration.
#[derive(Clone, Debug)]
pub struct Suite {
    /// Benchmark sizes (paper: {20, 50, 75, 100, 150, 250}).
    pub sizes: Vec<usize>,
    /// Variants per size (paper: 10).
    pub variants: usize,
    /// FPQA parameters shared by all FPQA systems.
    pub params: FpqaParams,
}

impl Suite {
    /// The paper's full methodology.
    pub fn paper() -> Self {
        Suite {
            sizes: generator::PAPER_SIZES.to_vec(),
            variants: generator::PAPER_VARIANTS,
            params: FpqaParams::default(),
        }
    }

    /// A reduced suite for quick smoke runs (sizes ≤ 75, 3 variants).
    pub fn quick() -> Self {
        Suite {
            sizes: vec![20, 50, 75],
            variants: 3,
            params: FpqaParams::default(),
        }
    }

    /// Geometric mean of a metric over the suite's variants at one size;
    /// `None` if any variant failed (the paper then marks the point ✗).
    pub fn mean_at_size(
        &self,
        id: CompilerId,
        size: usize,
        metric: impl Fn(&Metrics) -> f64,
    ) -> Option<f64> {
        let mut acc = 0.0f64;
        for variant in 1..=self.variants {
            let f = generator::instance(size, variant);
            match run_compiler(id, &f, &self.params) {
                RunOutcome::Done(m) => acc += metric(&m).max(1e-300).ln(),
                _ => return None,
            }
        }
        Some((acc / self.variants as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_systems_run_uf20() {
        let f = generator::instance(20, 1);
        let params = FpqaParams::default();
        for id in CompilerId::ALL {
            let out = run_compiler(id, &f, &params);
            assert!(
                out.metrics().is_some(),
                "{} failed on uf20-01: {out:?}",
                id.name()
            );
        }
    }

    #[test]
    fn applicability_limits_match_paper() {
        let params = FpqaParams::default();
        let f150 = generator::instance(150, 1);
        assert!(matches!(
            run_compiler(CompilerId::Superconducting, &f150, &params),
            RunOutcome::NotApplicable(_)
        ));
        let f50 = generator::instance(50, 1);
        assert!(matches!(
            run_compiler(CompilerId::Dpqa, &f50, &params),
            RunOutcome::TimedOut(_)
        ));
        assert!(matches!(
            run_compiler(CompilerId::Geyser, &f50, &params),
            RunOutcome::TimedOut(_)
        ));
        // Weaver and Atomique scale to every size in the paper.
        assert!(run_compiler(CompilerId::Weaver, &f50, &params)
            .metrics()
            .is_some());
        assert!(run_compiler(CompilerId::Atomique, &f50, &params)
            .metrics()
            .is_some());
    }

    #[test]
    fn outcome_cells_render() {
        let done = RunOutcome::Done(Metrics {
            compilation_seconds: 1.5,
            execution_micros: 2.0,
            eps: 0.5,
            pulses: 10,
            motion_ops: 3,
            steps: 100,
        });
        assert_eq!(
            done.cell(|m| format!("{:.1}", m.compilation_seconds)),
            "1.5"
        );
        assert_eq!(
            RunOutcome::TimedOut("x".into()).cell(|_| String::new()),
            "✗"
        );
        assert_eq!(
            RunOutcome::NotApplicable("x".into()).cell(|_| String::new()),
            "—"
        );
    }
}
