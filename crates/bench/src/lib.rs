//! Benchmark harness regenerating every table and figure of the Weaver
//! paper's evaluation (§8). The `figures` binary drives this library; see
//! EXPERIMENTS.md for the experiment index.

#![warn(missing_docs)]

pub mod enginebench;
pub mod figures;
pub mod figuresbench;
pub mod harness;
pub mod simbench;
pub mod sweep;

pub use harness::{run_compiler, CompilerId, RunOutcome, Suite};
pub use sweep::SizeSweep;
