//! Figure and table regeneration (paper §8, Figs. 8–12 + Table 2).
//!
//! Every function renders one figure's data as an aligned text table whose
//! rows/series match the paper's plots; the `figures` binary prints them.
//!
//! The size-sweep figures (8, 10a/b, 11, 12) read their points from a
//! precompiled [`SizeSweep`] — one engine batch over the whole evaluation —
//! so regenerating several figures never recompiles a point twice and the
//! sweep parallelizes under `--jobs N`. The modes that need per-point
//! parameter or workload variations (`fig10c`'s fidelity sweep, `weighted`,
//! `graphs`, `devices`, `ablation`) still compile inline.

use crate::harness::{run_compiler, CompilerId, RunOutcome, Suite};
use crate::sweep::SizeSweep;
use weaver_core::{compress, BackendRegistry, CompiledArtifact, Weaver};
use weaver_fpqa::FpqaParams;
use weaver_sat::{generator, Formula};
use weaver_superconducting::DeviceSpec;

fn render_table(title: &str, header: Vec<String>, rows: Vec<Vec<String>>) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            line.push_str(cell);
            line.push_str(&" ".repeat(pad + 2));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(&header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(&row, &widths));
        out.push('\n');
    }
    out
}

fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if (0.01..10_000.0).contains(&v.abs()) {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Fig. 8a — compilation time in seconds for the ten fixed-size (20-variable)
/// benchmarks plus their mean.
pub fn fig8a(sweep: &SizeSweep) -> String {
    let suite = sweep.suite();
    let mut rows = Vec::new();
    let mut sums: Vec<(f64, usize)> = vec![(0.0, 0); CompilerId::ALL.len()];
    for variant in 1..=suite.variants {
        let mut row = vec![generator::instance_name(20, variant)];
        for (ci, id) in CompilerId::ALL.into_iter().enumerate() {
            let out = sweep.outcome(id, 20, variant);
            if let Some(m) = out.metrics() {
                sums[ci].0 += m.compilation_seconds.max(1e-300).ln();
                sums[ci].1 += 1;
            }
            row.push(out.cell(|m| sci(m.compilation_seconds)));
        }
        rows.push(row);
    }
    let mut mean = vec!["Mean".to_string()];
    for (acc, count) in sums {
        mean.push(if count == 0 {
            "✗".to_string()
        } else {
            sci((acc / count as f64).exp())
        });
    }
    rows.push(mean);
    let header = std::iter::once("benchmark".to_string())
        .chain(CompilerId::ALL.iter().map(|c| c.name().to_string()))
        .collect();
    render_table(
        "Figure 8(a): Compilation time [seconds], fixed-size 20-variable suite",
        header,
        rows,
    )
}

/// Fig. 8b — compilation time in seconds vs number of variables.
pub fn fig8b(sweep: &SizeSweep) -> String {
    metric_vs_size(
        sweep,
        "Figure 8(b): Compilation time [seconds] vs circuit size",
        &CompilerId::ALL,
        |m| m.compilation_seconds,
    )
}

/// Fig. 11a — execution time in seconds, fixed 20-variable suite.
pub fn fig11a(sweep: &SizeSweep) -> String {
    let mut rows = Vec::new();
    for variant in 1..=sweep.suite().variants {
        let mut row = vec![generator::instance_name(20, variant)];
        for id in CompilerId::ALL {
            let out = sweep.outcome(id, 20, variant);
            row.push(out.cell(|m| sci(m.execution_micros * 1e-6)));
        }
        rows.push(row);
    }
    let header = std::iter::once("benchmark".to_string())
        .chain(CompilerId::ALL.iter().map(|c| c.name().to_string()))
        .collect();
    render_table(
        "Figure 11(a): Execution time [seconds], fixed-size 20-variable suite",
        header,
        rows,
    )
}

/// Fig. 11b — execution time in seconds vs number of variables.
pub fn fig11b(sweep: &SizeSweep) -> String {
    metric_vs_size(
        sweep,
        "Figure 11(b): Execution time [seconds] vs circuit size",
        &CompilerId::ALL,
        |m| m.execution_micros * 1e-6,
    )
}

/// Fig. 12a — EPS, fixed 20-variable suite (Geyser excluded as in the
/// paper: its block approximation makes EPS computation unfair).
pub fn fig12a(sweep: &SizeSweep) -> String {
    let systems = [CompilerId::Atomique, CompilerId::Weaver, CompilerId::Dpqa];
    let mut rows = Vec::new();
    for variant in 1..=sweep.suite().variants {
        let mut row = vec![generator::instance_name(20, variant)];
        for id in systems {
            let out = sweep.outcome(id, 20, variant);
            row.push(out.cell(|m| sci(m.eps)));
        }
        rows.push(row);
    }
    let header = std::iter::once("benchmark".to_string())
        .chain(systems.iter().map(|c| c.name().to_string()))
        .collect();
    render_table(
        "Figure 12(a): Estimated probability of success, 20-variable suite",
        header,
        rows,
    )
}

/// Fig. 12b — EPS vs number of variables (all systems).
pub fn fig12b(sweep: &SizeSweep) -> String {
    metric_vs_size(
        sweep,
        "Figure 12(b): Estimated probability of success vs circuit size",
        &CompilerId::ALL,
        |m| m.eps,
    )
}

/// Fig. 10b — mean number of pulses vs size (FPQA systems only).
pub fn fig10b(sweep: &SizeSweep) -> String {
    let systems = [
        CompilerId::Atomique,
        CompilerId::Weaver,
        CompilerId::Geyser,
        CompilerId::Dpqa,
    ];
    metric_vs_size(
        sweep,
        "Figure 10(b): Number of pulses vs circuit size",
        &systems,
        |m| m.pulses as f64,
    )
}

/// Fig. 10a — compilation complexity: measured work steps vs size next to
/// the analytic classes of Table 2.
pub fn fig10a(sweep: &SizeSweep) -> String {
    let mut rows = Vec::new();
    for &size in &sweep.suite().sizes {
        let f = generator::instance(size, 1);
        let k = weaver_sat::qaoa::build_circuit(&f, &Default::default(), false).gate_count();
        let mut row = vec![size.to_string(), k.to_string()];
        for id in CompilerId::ALL {
            let out = sweep.outcome(id, size, 1);
            row.push(out.cell(|m| sci(m.steps as f64)));
        }
        // Analytic curves of Table 2 (up to constants).
        let n = size as f64;
        let kf = k as f64;
        row.push(sci(n * n * n)); // Qiskit / Atomique O(N³)
        row.push(sci(n * n)); // Weaver O(N²)
        row.push(sci(kf * kf)); // Geyser O(K²)
        row.push(format!("2^{k}")); // DPQA O(2^K)
        rows.push(row);
    }
    let header: Vec<String> = [
        "N",
        "K(gates)",
        "SC steps",
        "Atomique steps",
        "Weaver steps",
        "DPQA steps",
        "Geyser steps",
        "O(N^3)",
        "O(N^2)",
        "O(K^2)",
        "O(2^K)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    render_table(
        "Figure 10(a)/Table 2: Compilation complexity — measured steps and analytic classes",
        header,
        rows,
    )
}

/// Fig. 10c — EPS of each system at 20 variables as the hardware CCZ
/// fidelity sweeps upward; reports the threshold where Weaver overtakes
/// every baseline (paper: 0.9916).
pub fn fig10c(suite: &Suite) -> String {
    let sweep: Vec<f64> = (0..=19).map(|i| 0.980 + i as f64 * 0.001).collect();
    let systems = [
        CompilerId::Weaver,
        CompilerId::Atomique,
        CompilerId::Superconducting,
        CompilerId::Dpqa,
    ];
    let mut rows = Vec::new();
    let mut threshold: Option<f64> = None;
    for &fid in &sweep {
        let params = FpqaParams::default().with_ccz_fidelity(fid);
        let mut row = vec![format!("{fid:.4}")];
        let mut eps: Vec<Option<f64>> = Vec::new();
        for id in systems {
            // Mean EPS over the first 3 variants keeps the sweep fast while
            // preserving the crossover shape.
            let mut acc = 0.0;
            let mut count = 0;
            for variant in 1..=3.min(suite.variants) {
                let f = generator::instance(20, variant);
                if let RunOutcome::Done(m) = run_compiler(id, &f, &params) {
                    acc += m.eps.max(1e-300).ln();
                    count += 1;
                }
            }
            let value = (count > 0).then(|| (acc / count as f64).exp());
            eps.push(value);
            row.push(value.map_or("✗".into(), sci));
        }
        if threshold.is_none() {
            if let (Some(weaver), rest) = (eps[0], &eps[1..]) {
                if rest.iter().flatten().all(|&b| weaver > b) {
                    threshold = Some(fid);
                }
            }
        }
        rows.push(row);
    }
    let header = std::iter::once("CCZ fidelity".to_string())
        .chain(systems.iter().map(|c| c.name().to_string()))
        .collect();
    let mut out = render_table(
        "Figure 10(c): EPS vs CCZ gate fidelity (20-variable mean)",
        header,
        rows,
    );
    out.push_str(&match threshold {
        Some(t) => {
            format!("Weaver surpasses all baselines above CCZ fidelity ≈ {t:.4} (paper: 0.9916)\n")
        }
        None => "Weaver did not overtake every baseline within the sweep\n".to_string(),
    });
    out
}

/// Device-family comparison: the same 20-variable workloads routed onto
/// every `sc:*` device, reporting mean SWAP count, routed depth, 2-qubit
/// gate count, and EPS per device — how much each topology pays for its
/// connectivity under the identical QAOA lowering.
pub fn devices(suite: &Suite) -> String {
    let registry = BackendRegistry::global();
    let weaver = Weaver::new();
    let mut rows = Vec::new();
    for spec in DeviceSpec::builtin() {
        let backend = registry
            .resolve(&spec.full_name())
            .expect("built-in devices are registered");
        let (mut swaps, mut depth, mut gates2q, mut eps_ln) = (0usize, 0usize, 0usize, 0.0f64);
        let mut done = 0usize;
        for variant in 1..=suite.variants {
            let f = generator::instance(20, variant);
            let out = match backend.compile(&weaver, &f, None) {
                Ok(out) => out,
                Err(_) => continue,
            };
            if let CompiledArtifact::Superconducting {
                circuit,
                swap_count,
            } = &out.artifact
            {
                swaps += swap_count;
                depth += circuit.depth();
                gates2q += circuit.two_qubit_count();
                eps_ln += out.metrics.eps.max(1e-300).ln();
                done += 1;
            }
        }
        let mean = |acc: usize| {
            if done == 0 {
                "—".to_string()
            } else {
                format!("{:.1}", acc as f64 / done as f64)
            }
        };
        rows.push(vec![
            spec.full_name(),
            spec.num_qubits().to_string(),
            spec.native_two_qubit.name().to_string(),
            mean(swaps),
            mean(depth),
            mean(gates2q),
            if done == 0 {
                "—".to_string()
            } else {
                sci((eps_ln / done as f64).exp())
            },
        ]);
    }
    render_table(
        &format!(
            "Device family: uf20 x {} routed per sc:* device (means)",
            suite.variants
        ),
        vec![
            "device".into(),
            "qubits".into(),
            "2q gate".into(),
            "SWAPs".into(),
            "depth".into(),
            "2q count".into(),
            "EPS".into(),
        ],
        rows,
    )
}

/// Weighted-instance mode (`figures weighted`): the 20-variable suite with
/// deterministic per-clause weights from [`generator::weighted_instance`].
/// The clause structure matches the unweighted uf20 instances exactly, so
/// every EPS shift relative to Fig. 12(a) is attributable to the
/// weight-scaled QAOA phase polynomial — the wQasm front-end path that
/// WCNF inputs take.
pub fn weighted(suite: &Suite) -> String {
    let systems = [CompilerId::Atomique, CompilerId::Weaver, CompilerId::Dpqa];
    let mut rows = Vec::new();
    for variant in 1..=suite.variants {
        let f = generator::weighted_instance(20, variant);
        let soft: u64 = f.clauses().iter().map(|c| c.weight()).sum();
        let mut row = vec![
            format!("w{}", generator::instance_name(20, variant)),
            soft.to_string(),
        ];
        for id in systems {
            let out = run_compiler(id, &f, &suite.params);
            row.push(out.cell(|m| sci(m.eps)));
        }
        let out = run_compiler(CompilerId::Weaver, &f, &suite.params);
        row.push(out.cell(|m| m.pulses.to_string()));
        rows.push(row);
    }
    let header = ["benchmark", "Σ weight"]
        .iter()
        .map(|s| s.to_string())
        .chain(systems.iter().map(|c| c.name().to_string()))
        .chain(std::iter::once("Weaver pulses".to_string()))
        .collect();
    render_table(
        "Weighted mode: EPS on weighted uf20 instances (frontend: wcnf)",
        header,
        rows,
    )
}

/// Random-graph MaxCut mode (`figures graphs`): sparse random graphs from
/// [`generator::random_graph`], lowered through [`Formula::max_cut`] — the
/// exact encoding the `maxcut` frontend applies to `.mc` edge lists — and
/// swept over the suite's sizes on the systems that scale past 20
/// variables. One vertex per variable; each size uses `2N` edges (capped
/// at the number of distinct pairs), geometric-mean EPS over the suite's
/// variants as the seeds.
pub fn graphs(suite: &Suite) -> String {
    let systems = [
        CompilerId::Superconducting,
        CompilerId::Atomique,
        CompilerId::Weaver,
    ];
    let mut rows = Vec::new();
    for &size in &suite.sizes {
        let num_edges = (2 * size).min(size * (size - 1) / 2);
        let mut row = vec![format!("G({size}, {num_edges})")];
        for id in systems {
            let mut acc = 0.0f64;
            let mut done = 0usize;
            for variant in 1..=suite.variants {
                let edges = generator::random_graph(size, num_edges, variant as u64);
                let f = Formula::max_cut(size, &edges);
                if let RunOutcome::Done(m) = run_compiler(id, &f, &suite.params) {
                    acc += m.eps.max(1e-300).ln();
                    done += 1;
                }
            }
            row.push(if done == 0 {
                "—".to_string()
            } else {
                sci((acc / done as f64).exp())
            });
        }
        rows.push(row);
    }
    let header = std::iter::once("graph".to_string())
        .chain(systems.iter().map(|c| c.name().to_string()))
        .collect();
    render_table(
        "Random-graph MaxCut: EPS vs graph size (frontend: maxcut)",
        header,
        rows,
    )
}

/// Table 2 — compilation complexity classes (static, from the paper).
pub fn table2() -> String {
    render_table(
        "Table 2: Compilation complexity comparison",
        vec!["Compiler".into(), "Computational complexity".into()],
        vec![
            vec!["Qiskit".into(), "O(N^3)".into()],
            vec!["Atomique".into(), "O(N^3)".into()],
            vec!["Geyser".into(), "O(K^2)".into()],
            vec!["DPQA".into(), "O(2^K)".into()],
            vec!["Weaver".into(), "O(N^2)".into()],
        ],
    )
}

/// Shared size-sweep rendering over the precompiled batch.
fn metric_vs_size(
    sweep: &SizeSweep,
    title: &str,
    systems: &[CompilerId],
    metric: impl Fn(&weaver_core::Metrics) -> f64 + Copy,
) -> String {
    let mut rows = Vec::new();
    for &size in &sweep.suite().sizes {
        let mut row = vec![size.to_string()];
        for &id in systems {
            row.push(match sweep.mean_at_size(id, size, metric) {
                Some(v) => sci(v),
                None => "✗".to_string(),
            });
        }
        rows.push(row);
    }
    let header = std::iter::once("variables".to_string())
        .chain(systems.iter().map(|c| c.name().to_string()))
        .collect();
    render_table(title, header, rows)
}

/// Ablation summary (DESIGN.md §6): DSatur vs first-fit, compression
/// on/off, parallel shuttling on/off — at 20 variables.
pub fn ablation(suite: &Suite) -> String {
    use weaver_core::CodegenOptions;
    let f = generator::instance(20, 1);
    let configs: Vec<(&str, CodegenOptions)> = vec![
        ("full wOptimizer", CodegenOptions::default()),
        (
            "first-fit coloring",
            CodegenOptions {
                dsatur: false,
                ..CodegenOptions::default()
            },
        ),
        (
            "no compression",
            CodegenOptions {
                compression: false,
                ..CodegenOptions::default()
            },
        ),
        (
            "sequential shuttles",
            CodegenOptions {
                parallel_shuttling: false,
                ..CodegenOptions::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, options) in configs {
        let weaver = Weaver::new()
            .with_fpqa_params(suite.params.clone())
            .with_options(options);
        let out = weaver.compile_fpqa(&f);
        rows.push(vec![
            name.to_string(),
            sci(out.metrics.compilation_seconds),
            sci(out.metrics.execution_micros * 1e-6),
            sci(out.metrics.eps),
            out.metrics.pulses.to_string(),
            out.metrics.motion_ops.to_string(),
        ]);
    }
    render_table(
        "Ablation (uf20-01): wOptimizer pass contributions",
        vec![
            "configuration".into(),
            "compile [s]".into(),
            "execute [s]".into(),
            "EPS".into(),
            "pulses".into(),
            "motion".into(),
        ],
        rows,
    )
}

/// The compression-threshold formula check behind Fig. 10c.
pub fn threshold_summary() -> String {
    let params = FpqaParams::default();
    format!(
        "Pulse-only compression threshold: f_ccz > f_cz^4 = {:.4} (f_cz = {:.3});\n\
         with motion savings included, compression is beneficial at f_ccz = {:.3}: {}\n",
        compress::compression_threshold(params.fidelity_cz),
        params.fidelity_cz,
        params.fidelity_ccz,
        compress::compression_beneficial(&params, 30.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> Suite {
        Suite {
            sizes: vec![20],
            variants: 2,
            params: FpqaParams::default(),
        }
    }

    #[test]
    fn fig8a_renders_all_systems() {
        let s = Suite {
            sizes: vec![20],
            variants: 1,
            params: FpqaParams::default(),
        };
        let sweep = SizeSweep::run(&s, 1);
        let text = fig8a(&sweep);
        for name in [
            "Superconducting",
            "Atomique",
            "Weaver",
            "DPQA",
            "Geyser",
            "Mean",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn fig10b_has_pulse_numbers() {
        let sweep = SizeSweep::run(&tiny_suite(), 1);
        let text = fig10b(&sweep);
        assert!(text.contains("pulses"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn weighted_mode_renders_every_variant() {
        let s = Suite {
            sizes: vec![20],
            variants: 2,
            params: FpqaParams::default(),
        };
        let text = weighted(&s);
        assert!(text.contains("wuf20-01"), "{text}");
        assert!(text.contains("wuf20-02"), "{text}");
        assert!(text.contains("Σ weight"), "{text}");
        assert!(!text.contains('✗'), "weighted uf20 must compile:\n{text}");
    }

    #[test]
    fn graphs_mode_sweeps_sizes() {
        let s = Suite {
            sizes: vec![8, 12],
            variants: 2,
            params: FpqaParams::default(),
        };
        let text = graphs(&s);
        assert!(text.contains("G(8, 16)"), "{text}");
        assert!(text.contains("G(12, 24)"), "{text}");
        assert!(text.contains("Weaver"), "{text}");
    }

    #[test]
    fn table2_is_static() {
        let text = table2();
        assert!(text.contains("O(N^2)"));
        assert!(text.contains("Weaver"));
    }

    #[test]
    fn ablation_renders() {
        let text = ablation(&tiny_suite());
        assert!(text.contains("full wOptimizer"));
        assert!(text.contains("no compression"));
    }

    #[test]
    fn threshold_summary_mentions_formula() {
        let text = threshold_summary();
        assert!(text.contains("f_cz^4"));
    }
}
