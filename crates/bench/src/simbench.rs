//! Micro-benchmark harness for the state-vector kernels.
//!
//! Times the specialized dispatch in [`State::apply`] and the contiguous
//! [`UnitaryBuilder`] against the seed's generic gather/scatter loop
//! ([`State::apply_reference`]) on the workloads that dominate the
//! wChecker's unitary-equivalence pass, and renders the result as the
//! tracked `BENCH_simulator.json` baseline (`figures bench-sim`).

use std::time::Instant;
use weaver_simulator::{gates, Matrix, State, UnitaryBuilder};

/// Register size for gate-application measurements (the ISSUE's 16-qubit
/// 1q-gate target).
pub const APPLY_QUBITS: usize = 16;

/// Register size for full-unitary construction (the ISSUE's 10-qubit
/// target).
pub const BUILD_QUBITS: usize = 10;

/// A dense two-qubit unitary with no controlled structure, forcing the
/// 4-way-butterfly kernel: `(U3 ⊗ U3) · CX · (U3 ⊗ U3)`.
pub fn dense_2q() -> Matrix {
    let pre = gates::u3(0.4, 0.3, -0.2).kron(&gates::u3(1.1, -0.6, 0.5));
    let post = gates::u3(-0.7, 0.2, 0.9).kron(&gates::u3(0.3, 1.4, -1.0));
    post.matmul(&gates::cx()).matmul(&pre)
}

/// The gate sequence for unitary-construction measurements: an H wall, a CZ
/// ladder, and an RX layer on `n` qubits — the same gate mix the checker
/// sees from compiled QAOA circuits.
pub fn builder_ops(n: usize) -> Vec<(Matrix, Vec<usize>)> {
    let mut ops = Vec::new();
    for q in 0..n {
        ops.push((gates::h(), vec![q]));
    }
    for q in 0..n - 1 {
        ops.push((gates::cz(), vec![q, q + 1]));
    }
    for q in 0..n {
        ops.push((gates::rx(0.3 + q as f64 * 0.1), vec![q]));
    }
    ops
}

/// The `|+…+⟩` state on `n` qubits, a dense non-trivial input.
pub fn plus_state(n: usize) -> State {
    let mut s = State::zero(n);
    for q in 0..n {
        s.apply(&gates::h(), &[q]);
    }
    s
}

/// One before/after measurement of a kernel workload.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Stable identifier, e.g. `apply_1q_16q`.
    pub id: &'static str,
    /// Median seed-path (generic gather/scatter) time in nanoseconds.
    pub reference_ns: f64,
    /// Median specialized-kernel time in nanoseconds.
    pub kernel_ns: f64,
}

impl KernelBench {
    /// Speedup of the kernel path over the seed path.
    pub fn speedup(&self) -> f64 {
        self.reference_ns / self.kernel_ns
    }
}

/// Median wall-clock time of `f` over `samples` runs after one warm-up.
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Runs the kernel-vs-reference suite with `samples` timed iterations per
/// measurement at the ISSUE's sizes ([`APPLY_QUBITS`], [`BUILD_QUBITS`]).
pub fn run(samples: usize) -> Vec<KernelBench> {
    run_sized(samples, APPLY_QUBITS, BUILD_QUBITS)
}

/// [`run`] at explicit register sizes; the ids keep the canonical `_16q` /
/// `_10q` suffixes, so only the default sizes produce comparable baselines.
/// Repeatedly applying a unitary gate to one register keeps every iteration
/// physical without re-allocating state.
fn run_sized(samples: usize, apply_qubits: usize, build_qubits: usize) -> Vec<KernelBench> {
    let mut out = Vec::new();
    let mut pair = |id: &'static str, gate: &Matrix, targets: &[usize]| {
        let mut fast = plus_state(apply_qubits);
        let kernel_ns = median_ns(samples, || fast.apply(gate, targets));
        let mut slow = plus_state(apply_qubits);
        let reference_ns = median_ns(samples, || slow.apply_reference(gate, targets));
        out.push(KernelBench {
            id,
            reference_ns,
            kernel_ns,
        });
    };

    let hi = apply_qubits - 3;
    pair(
        "apply_1q_16q",
        &gates::u3(0.4, -0.7, 1.2),
        &[apply_qubits / 2],
    );
    pair("apply_2q_16q", &dense_2q(), &[3.min(hi - 1), hi]);
    pair(
        "apply_controlled_1q_16q",
        &gates::cx(),
        &[2.min(hi - 1), hi],
    );
    pair("apply_ccz_16q", &gates::ccz(), &[0, apply_qubits / 2, hi]);

    let ops = builder_ops(build_qubits);
    let dim = 1usize << build_qubits;
    let kernel_ns = median_ns(samples, || {
        let mut b = UnitaryBuilder::new(build_qubits);
        for (gate, targets) in &ops {
            b.apply(gate, targets);
        }
        std::hint::black_box(b.finish());
    });
    let reference_ns = median_ns(samples, || {
        // The seed's layout: one State per column, seed apply loop.
        let mut columns: Vec<State> = (0..dim).map(|j| State::basis(build_qubits, j)).collect();
        for (gate, targets) in &ops {
            for col in &mut columns {
                col.apply_reference(gate, targets);
            }
        }
        let mut m = Matrix::zeros(dim, dim);
        for (j, col) in columns.iter().enumerate() {
            for (i, &amp) in col.amplitudes().iter().enumerate() {
                m[(i, j)] = amp;
            }
        }
        std::hint::black_box(m);
    });
    out.push(KernelBench {
        id: "unitary_build_10q",
        reference_ns,
        kernel_ns,
    });

    out
}

/// Renders the suite result as the `BENCH_simulator.json` document.
pub fn to_json(benches: &[KernelBench], samples: usize) -> String {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"simulator_kernels\",\n");
    s.push_str("  \"metric\": \"median_wall_ns\",\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str("  \"benchmarks\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let comma = if i + 1 == benches.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"id\": \"{}\", \"reference_ns\": {:.0}, \"kernel_ns\": {:.0}, \
             \"speedup\": {:.2} }}{comma}\n",
            b.id,
            b.reference_ns,
            b.kernel_ns,
            b.speedup()
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serializes() {
        // One sample at toy sizes keeps this fast; correctness of the
        // numbers is the harness's job, shape is ours.
        let benches = run_sized(1, 8, 4);
        assert_eq!(benches.len(), 5);
        assert!(benches
            .iter()
            .all(|b| b.kernel_ns > 0.0 && b.reference_ns > 0.0));
        let json = to_json(&benches, 1);
        assert!(json.contains("\"apply_1q_16q\""));
        assert!(json.contains("\"unitary_build_10q\""));
        assert_eq!(json.matches("\"speedup\"").count(), 5);
    }
}
