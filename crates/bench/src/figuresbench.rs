//! Scaling benchmark for the figures-on-engine batch (`figures
//! bench-figures`).
//!
//! Three measurements land in the tracked `BENCH_figures.json` baseline:
//!
//! 1. **Sweep scaling** — the whole [`SizeSweep`] batch at worker counts
//!    {1, 2, 4}: wall seconds, points/sec, speedup over one worker, and
//!    parallel efficiency. The ≥ 1.8× @ 4-workers acceptance gate only
//!    applies on machines with ≥ 4 cores; the JSON records the detected
//!    core count so the guard can tell.
//! 2. **SABRE routing** — the optimized [`weaver_superconducting::sabre::route`]
//!    against the preserved reference implementation
//!    ([`sabre::route_reference`]) on ≥ 100-variable QAOA circuits routed
//!    onto `sc:eagle` (acceptance: ≥ 3× on this PR).
//! 3. **Clause coloring** — the CSR conflict graph + heap DSatur against
//!    the adjacency-list/argmax references at 250 variables (acceptance:
//!    ≥ 5×).
//!
//! The two hot-path measurements run old and new code in the same process
//! on identical inputs (the differential tests prove the outputs equal), so
//! the ratios are apples-to-apples and survive machine changes better than
//! absolute times.

use std::time::Instant;

use crate::harness::Suite;
use crate::sweep::SizeSweep;
use weaver_circuit::{native, NativeBasis};
use weaver_core::coloring;
use weaver_sat::{generator, qaoa};
use weaver_superconducting::{sabre, DeviceSpec};

/// One sweep-scaling measurement.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Worker threads requested.
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Sweep throughput in points per second.
    pub jobs_per_sec: f64,
    /// Throughput uplift over the 1-worker run.
    pub speedup: f64,
    /// `speedup / workers`.
    pub efficiency: f64,
}

/// One old-vs-new hot-path measurement (best-of-samples on both sides).
#[derive(Clone, Debug)]
pub struct HotPathBench {
    /// Stable identifier, e.g. `sabre_route_100v_eagle`.
    pub id: &'static str,
    /// Problem size in variables.
    pub vars: usize,
    /// Best wall seconds of the reference implementation.
    pub reference_seconds: f64,
    /// Best wall seconds of the optimized implementation.
    pub optimized_seconds: f64,
}

impl HotPathBench {
    /// Reference-over-optimized wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_seconds / self.optimized_seconds.max(1e-12)
    }
}

/// The full `bench-figures` result.
#[derive(Debug)]
pub struct FiguresBenchReport {
    /// Sizes the sweep covered.
    pub sizes: Vec<usize>,
    /// Variants per size.
    pub variants: usize,
    /// Total points per sweep run.
    pub jobs: usize,
    /// Summed per-job compile seconds by size (from the 1-worker run).
    pub per_size_seconds: Vec<(usize, f64)>,
    /// Summed self-time by lowering pass (from the 1-worker run).
    pub pass_seconds: Vec<(String, f64)>,
    /// Scaling rows for workers {1, 2, 4}.
    pub scaling: Vec<ScalingRow>,
    /// SABRE route old-vs-new.
    pub sabre: HotPathBench,
    /// Conflict-graph + DSatur old-vs-new.
    pub coloring: HotPathBench,
}

/// Runs the scaling sweep and both hot-path comparisons.
///
/// `samples` repetitions per hot-path side (best wall time wins). The
/// sweep itself runs once per worker count — it is the expensive part and
/// its job grid is deterministic, so one run per count is representative.
pub fn run(
    suite: &Suite,
    samples: usize,
    sabre_vars: usize,
    coloring_vars: usize,
) -> FiguresBenchReport {
    let samples = samples.max(1);

    let mut scaling = Vec::new();
    let mut base: Option<SizeSweep> = None;
    for workers in [1usize, 2, 4] {
        let sweep = SizeSweep::run(suite, workers);
        let base_wall = base.as_ref().map_or(sweep.wall_seconds, |b| b.wall_seconds);
        let speedup = base_wall / sweep.wall_seconds.max(1e-12);
        scaling.push(ScalingRow {
            workers,
            wall_seconds: sweep.wall_seconds,
            jobs_per_sec: sweep.jobs_per_sec(),
            speedup,
            efficiency: speedup / workers as f64,
        });
        if base.is_none() {
            base = Some(sweep);
        }
    }
    let base = base.expect("1-worker sweep ran");

    FiguresBenchReport {
        sizes: suite.sizes.clone(),
        variants: suite.variants,
        jobs: base.jobs(),
        per_size_seconds: base
            .per_size_seconds
            .iter()
            .map(|(&s, &t)| (s, t))
            .collect(),
        pass_seconds: base
            .pass_seconds
            .iter()
            .map(|(n, &t)| (n.clone(), t))
            .collect(),
        scaling,
        sabre: bench_sabre(sabre_vars, samples),
        coloring: bench_coloring(coloring_vars, samples),
    }
}

/// Times `sabre::route` against `sabre::route_reference` on the QAOA
/// circuit of `uf<vars>-01` nativized to {U3, CZ} and routed onto
/// `sc:eagle` (127 qubits — the largest paper size that fits).
fn bench_sabre(vars: usize, samples: usize) -> HotPathBench {
    let f = generator::instance(vars, 1);
    let circuit = native::nativize(
        &qaoa::build_circuit(&f, &Default::default(), false),
        NativeBasis::U3Cz,
    );
    let coupling = DeviceSpec::eagle().coupling();
    // Warm the process-global distance cache and the allocator before
    // timing either side.
    sabre::route(&circuit, &coupling).expect("eagle routes the QAOA circuit");

    let mut optimized = f64::INFINITY;
    let mut reference = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let new = sabre::route(&circuit, &coupling).expect("route succeeds");
        optimized = optimized.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let old = sabre::route_reference(&circuit, &coupling).expect("reference route succeeds");
        reference = reference.min(start.elapsed().as_secs_f64());
        assert_eq!(
            new.circuit, old.circuit,
            "optimized SABRE must stay byte-identical"
        );
    }
    HotPathBench {
        id: "sabre_route_eagle",
        vars,
        reference_seconds: reference,
        optimized_seconds: optimized,
    }
}

/// Times CSR conflict-graph construction + heap DSatur against the
/// adjacency-list + argmax references on `uf<vars>-01`.
fn bench_coloring(vars: usize, samples: usize) -> HotPathBench {
    let f = generator::instance(vars, 1);
    let mut optimized = f64::INFINITY;
    let mut reference = f64::INFINITY;
    let mut new_colors = 0usize;
    let mut old_colors = 0usize;
    for _ in 0..samples {
        let start = Instant::now();
        let graph = coloring::conflict_graph(&f);
        let c = coloring::dsatur(&graph);
        optimized = optimized.min(start.elapsed().as_secs_f64());
        new_colors = c.num_colors;
        let start = Instant::now();
        let adjacency = coloring::conflict_graph_reference(&f);
        let c = coloring::dsatur_reference(&adjacency);
        reference = reference.min(start.elapsed().as_secs_f64());
        old_colors = c.num_colors;
    }
    assert_eq!(
        new_colors, old_colors,
        "heap DSatur must match the reference"
    );
    HotPathBench {
        id: "coloring_dsatur",
        vars,
        reference_seconds: reference,
        optimized_seconds: optimized,
    }
}

/// Renders the report as the `BENCH_figures.json` document.
pub fn to_json(report: &FiguresBenchReport, samples: usize) -> String {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"figures_batch\",\n");
    s.push_str("  \"metric\": \"wall_seconds\",\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!(
        "  \"sizes\": [{}],\n",
        report
            .sizes
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"variants\": {},\n", report.variants));
    s.push_str(&format!("  \"jobs\": {},\n", report.jobs));

    s.push_str("  \"per_size_seconds\": {");
    let cells: Vec<String> = report
        .per_size_seconds
        .iter()
        .map(|(size, t)| format!(" \"{size}\": {t:.6}"))
        .collect();
    s.push_str(&cells.join(","));
    s.push_str(" },\n");

    s.push_str("  \"pass_self_seconds\": {");
    let mut passes = report.pass_seconds.clone();
    passes.sort_by(|a, b| b.1.total_cmp(&a.1));
    let cells: Vec<String> = passes
        .iter()
        .map(|(name, t)| format!(" \"{name}\": {t:.6}"))
        .collect();
    s.push_str(&cells.join(","));
    s.push_str(" },\n");

    s.push_str("  \"scaling\": [\n");
    for (i, row) in report.scaling.iter().enumerate() {
        let comma = if i + 1 == report.scaling.len() {
            ""
        } else {
            ","
        };
        s.push_str(&format!(
            "    {{ \"workers\": {}, \"wall_seconds\": {:.6}, \"jobs_per_sec\": {:.2}, \
             \"speedup\": {:.2}, \"efficiency\": {:.2} }}{comma}\n",
            row.workers, row.wall_seconds, row.jobs_per_sec, row.speedup, row.efficiency
        ));
    }
    s.push_str("  ],\n");

    for (key, b) in [("sabre", &report.sabre), ("coloring", &report.coloring)] {
        s.push_str(&format!(
            "  \"{key}\": {{ \"id\": \"{}\", \"vars\": {}, \"reference_seconds\": {:.6}, \
             \"optimized_seconds\": {:.6}, \"speedup\": {:.2} }},\n",
            b.id,
            b.vars,
            b.reference_seconds,
            b.optimized_seconds,
            b.speedup()
        ));
    }
    s.push_str(&format!(
        "  \"sabre_speedup\": {:.2},\n  \"coloring_speedup\": {:.2}\n}}\n",
        report.sabre.speedup(),
        report.coloring.speedup()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_fpqa::FpqaParams;

    #[test]
    fn quick_report_runs_and_serializes() {
        let suite = Suite {
            sizes: vec![20],
            variants: 1,
            params: FpqaParams::default(),
        };
        // Small hot-path sizes keep the unit test fast; the committed
        // baseline uses 100/250 variables via `figures bench-figures`.
        let report = run(&suite, 1, 30, 50);
        assert_eq!(report.scaling.len(), 3);
        assert_eq!(report.scaling[0].workers, 1);
        assert!((report.scaling[0].speedup - 1.0).abs() < 1e-9);
        assert!(report.sabre.optimized_seconds > 0.0);
        assert!(report.coloring.optimized_seconds > 0.0);
        let json = to_json(&report, 1);
        assert!(json.contains("\"figures_batch\""));
        assert!(json.contains("\"scaling\""));
        assert!(json.contains("\"sabre_speedup\""));
        assert!(json.contains("\"coloring_speedup\""));
        assert!(json.contains("\"pass_self_seconds\""));
    }
}
