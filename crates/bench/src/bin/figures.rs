//! Regenerates the paper's figures as text tables.
//!
//! ```text
//! figures [--quick] [--jobs N] [fig8a|fig8b|fig10a|fig10b|fig10c|fig11a|fig11b|fig12a|fig12b|table2|devices|weighted|graphs|ablation|all]
//! figures [--quick] bench-sim               # kernel baseline  -> BENCH_simulator.json
//! figures [--quick] bench-engine            # batch baseline   -> BENCH_engine.json
//! figures [--quick] [--jobs N] bench-figures # sweep baseline  -> BENCH_figures.json
//! ```
//!
//! `--quick` restricts the size sweep to {20, 50, 75} with 3 variants so a
//! full run finishes in minutes; without it the paper's full methodology
//! ({20..250} × 10 variants) is used. `--jobs N` sets the worker-thread
//! count for the batch sweep (0 or absent = all cores).
//!
//! The size-sweep figures (8, 10a/b, 11, 12) are compiled once as a single
//! engine batch (`SizeSweep`) and then rendered from the cached points, so
//! requesting several figures never recompiles a point and the whole
//! evaluation parallelizes across `--jobs` workers.
//!
//! Beyond the paper's figures, `weighted` reruns the 20-variable suite with
//! per-clause weights (the WCNF front-end path) and `graphs` sweeps random
//! MaxCut graphs through the `maxcut` lowering.
//!
//! `bench-sim` (never part of `all`) times the simulator's specialized
//! kernels against the seed gather/scatter path and writes the tracked
//! `BENCH_simulator.json` baseline to the current directory; `bench-engine`
//! (likewise never part of `all`) times cold vs warm batch compilation and
//! writes `BENCH_engine.json`; `bench-figures` runs the sweep at workers
//! {1, 2, 4} plus the SABRE and coloring old-vs-new hot-path comparisons
//! and writes `BENCH_figures.json`; `--quick` reduces sample counts and
//! hot-path sizes.

use weaver_bench::{enginebench, figures, figuresbench, simbench, SizeSweep, Suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let suite = if quick {
        Suite::quick()
    } else {
        Suite::paper()
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| a.parse::<usize>().is_err()) // skip the --jobs value
        .map(String::as_str)
        .collect();
    let mut handled = 0usize;
    if wanted.contains(&"bench-sim") {
        let samples = if quick { 3 } else { 15 };
        let json = simbench::to_json(&simbench::run(samples), samples);
        std::fs::write("BENCH_simulator.json", &json).expect("write BENCH_simulator.json");
        print!("{json}");
        eprintln!("wrote BENCH_simulator.json");
        handled += 1;
    }
    if wanted.contains(&"bench-engine") {
        let samples = if quick { 3 } else { 10 };
        let json = enginebench::to_json(&enginebench::run(samples, jobs), samples);
        std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
        print!("{json}");
        eprintln!("wrote BENCH_engine.json");
        handled += 1;
    }
    if wanted.contains(&"bench-figures") {
        // The committed baseline measures the hot paths at the acceptance
        // sizes (SABRE at 100 variables on sc:eagle, coloring at 250);
        // --quick shrinks both for CI smoke runs.
        let samples = if quick { 2 } else { 5 };
        let (sabre_vars, coloring_vars) = if quick { (50, 75) } else { (100, 250) };
        let report = figuresbench::run(&suite, samples, sabre_vars, coloring_vars);
        let json = figuresbench::to_json(&report, samples);
        std::fs::write("BENCH_figures.json", &json).expect("write BENCH_figures.json");
        print!("{json}");
        eprintln!("wrote BENCH_figures.json");
        handled += 1;
    }
    if handled > 0 && wanted.len() == handled {
        return;
    }

    let all = wanted.is_empty() || wanted.contains(&"all");
    let has = |name: &str| all || wanted.contains(&name);

    if has("table2") {
        println!("{}", figures::table2());
    }
    if has("devices") {
        println!("{}", figures::devices(&suite));
    }
    // One batch feeds every size-sweep figure; skip it when none is wanted.
    let sweep_figures = [
        "fig8a", "fig8b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12a", "fig12b",
    ];
    if sweep_figures.iter().any(|f| has(f)) {
        let sweep = SizeSweep::run(&suite, jobs);
        eprintln!(
            "sweep: {} points in {:.1}s on {} worker(s) ({:.1} points/sec)",
            sweep.jobs(),
            sweep.wall_seconds,
            sweep.workers,
            sweep.jobs_per_sec()
        );
        if has("fig8a") {
            println!("{}", figures::fig8a(&sweep));
        }
        if has("fig8b") {
            println!("{}", figures::fig8b(&sweep));
        }
        if has("fig10a") {
            println!("{}", figures::fig10a(&sweep));
        }
        if has("fig10b") {
            println!("{}", figures::fig10b(&sweep));
        }
        if has("fig11a") {
            println!("{}", figures::fig11a(&sweep));
        }
        if has("fig11b") {
            println!("{}", figures::fig11b(&sweep));
        }
        if has("fig12a") {
            println!("{}", figures::fig12a(&sweep));
        }
        if has("fig12b") {
            println!("{}", figures::fig12b(&sweep));
        }
    }
    if has("fig10c") {
        println!("{}", figures::fig10c(&suite));
    }
    if has("weighted") {
        println!("{}", figures::weighted(&suite));
    }
    if has("graphs") {
        println!("{}", figures::graphs(&suite));
    }
    if has("ablation") {
        println!("{}", figures::ablation(&suite));
    }
    if has("threshold") || all {
        println!("{}", figures::threshold_summary());
    }
}
