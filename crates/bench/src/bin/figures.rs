//! Regenerates the paper's figures as text tables.
//!
//! ```text
//! figures [--quick] [fig8a|fig8b|fig10a|fig10b|fig10c|fig11a|fig11b|fig12a|fig12b|table2|devices|weighted|graphs|ablation|all]
//! figures [--quick] bench-sim      # kernel baseline  -> BENCH_simulator.json
//! figures [--quick] bench-engine   # batch baseline   -> BENCH_engine.json
//! ```
//!
//! `--quick` restricts the size sweep to {20, 50, 75} with 3 variants so a
//! full run finishes in minutes; without it the paper's full methodology
//! ({20..250} × 10 variants) is used.
//!
//! Beyond the paper's figures, `weighted` reruns the 20-variable suite with
//! per-clause weights (the WCNF front-end path) and `graphs` sweeps random
//! MaxCut graphs through the `maxcut` lowering.
//!
//! `bench-sim` (never part of `all`) times the simulator's specialized
//! kernels against the seed gather/scatter path and writes the tracked
//! `BENCH_simulator.json` baseline to the current directory; `bench-engine`
//! (likewise never part of `all`) times cold vs warm batch compilation and
//! writes `BENCH_engine.json`; `--quick` reduces the sample counts.

use weaver_bench::{enginebench, figures, simbench, Suite};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let suite = if quick {
        Suite::quick()
    } else {
        Suite::paper()
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let mut handled = 0usize;
    if wanted.contains(&"bench-sim") {
        let samples = if quick { 3 } else { 15 };
        let json = simbench::to_json(&simbench::run(samples), samples);
        std::fs::write("BENCH_simulator.json", &json).expect("write BENCH_simulator.json");
        print!("{json}");
        eprintln!("wrote BENCH_simulator.json");
        handled += 1;
    }
    if wanted.contains(&"bench-engine") {
        let samples = if quick { 3 } else { 10 };
        let json = enginebench::to_json(&enginebench::run(samples, 0), samples);
        std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
        print!("{json}");
        eprintln!("wrote BENCH_engine.json");
        handled += 1;
    }
    if handled > 0 && wanted.len() == handled {
        return;
    }

    let all = wanted.is_empty() || wanted.contains(&"all");
    let has = |name: &str| all || wanted.contains(&name);

    if has("table2") {
        println!("{}", figures::table2());
    }
    if has("devices") {
        println!("{}", figures::devices(&suite));
    }
    if has("fig8a") {
        println!("{}", figures::fig8a(&suite));
    }
    if has("fig8b") {
        println!("{}", figures::fig8b(&suite));
    }
    if has("fig10a") {
        println!("{}", figures::fig10a(&suite));
    }
    if has("fig10b") {
        println!("{}", figures::fig10b(&suite));
    }
    if has("fig10c") {
        println!("{}", figures::fig10c(&suite));
    }
    if has("fig11a") {
        println!("{}", figures::fig11a(&suite));
    }
    if has("fig11b") {
        println!("{}", figures::fig11b(&suite));
    }
    if has("fig12a") {
        println!("{}", figures::fig12a(&suite));
    }
    if has("fig12b") {
        println!("{}", figures::fig12b(&suite));
    }
    if has("weighted") {
        println!("{}", figures::weighted(&suite));
    }
    if has("graphs") {
        println!("{}", figures::graphs(&suite));
    }
    if has("ablation") {
        println!("{}", figures::ablation(&suite));
    }
    if has("threshold") || all {
        println!("{}", figures::threshold_summary());
    }
}
