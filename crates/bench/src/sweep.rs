//! Figures-on-engine: expands the paper's size sweep ({20..250} variables ×
//! 10 seeds × all five systems) into batch jobs and runs them on
//! `weaver-engine`'s work-stealing pool, so every figure table is
//! reassembled from one deterministic batch instead of recompiling each
//! point inline.
//!
//! Weaver and the superconducting baseline become [`CompileJob`]s on
//! [`Engine::run`] (the same path `weaverc batch` takes); the three FPQA
//! baselines keep their [`weaver_baselines::FpqaCompiler`] interface but
//! fan out over the identical [`weaver_engine::pool::run_jobs`] pool, so a
//! single `--jobs N` knob scales the whole evaluation. Results land in a
//! point map keyed by *(system, size, variant)*; because both the engine
//! and the raw pool return submission-ordered, scheduling-independent
//! results, the reassembled tables are byte-identical across worker counts.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use crate::harness::{run_compiler, CompilerId, RunOutcome, Suite};
use weaver_core::Metrics;
use weaver_engine::{pool, CompileJob, Engine, EngineConfig, Target};
use weaver_sat::generator;

/// The paper's evaluation, precompiled as one batch.
///
/// Construction runs every *(system, size, variant)* point of the suite
/// exactly once; the figure renderers in [`crate::figures`] then read the
/// cached outcomes instead of invoking compilers themselves.
#[derive(Debug)]
pub struct SizeSweep {
    suite: Suite,
    outcomes: HashMap<(CompilerId, usize, usize), RunOutcome>,
    /// End-to-end wall-clock seconds for the whole sweep (engine batch plus
    /// the baseline pool phase).
    pub wall_seconds: f64,
    /// Worker threads used (resolved: `0` becomes the core count).
    pub workers: usize,
    /// Points run through [`Engine::run`] (Weaver + superconducting).
    pub engine_jobs: usize,
    /// Points run through [`pool::run_jobs`] (the FPQA baselines).
    pub baseline_jobs: usize,
    /// Summed per-job compile seconds by size, across all systems — the
    /// per-size cost profile of the sweep (CPU seconds, not wall).
    pub per_size_seconds: BTreeMap<usize, f64>,
    /// Summed self-time by lowering pass, aggregated over every engine
    /// artifact's `weaver-obs` pass records.
    pub pass_seconds: BTreeMap<String, f64>,
}

impl SizeSweep {
    /// Runs the whole suite on `workers` threads (`0` = all cores).
    ///
    /// The engine phase disables the artifact cache so every point measures
    /// a genuine compile; the suite's instances are all distinct anyway, so
    /// nothing could hit. Only the suite's CCZ fidelity travels into
    /// [`CompileJob`] options — the engine job model intentionally exposes
    /// no other FPQA parameter, matching `weaverc`.
    pub fn run(suite: &Suite, workers: usize) -> SizeSweep {
        let start = Instant::now();

        // Phase 1 — Weaver and the superconducting baseline as engine jobs.
        let engine_systems = [
            (CompilerId::Weaver, Target::Fpqa),
            (CompilerId::Superconducting, Target::Superconducting),
        ];
        let mut jobs = Vec::new();
        let mut keys = Vec::new();
        for &size in &suite.sizes {
            for variant in 1..=suite.variants {
                for (id, target) in engine_systems.iter().cloned() {
                    let mut job = CompileJob::from_formula(
                        generator::instance_name(size, variant),
                        generator::instance(size, variant),
                    );
                    job.target = target;
                    job.options.ccz_fidelity = Some(suite.params.fidelity_ccz);
                    jobs.push(job);
                    keys.push((id, size, variant));
                }
            }
        }
        let engine = Engine::new(EngineConfig {
            jobs: workers,
            use_cache: false,
            ..EngineConfig::default()
        });
        let engine_jobs = jobs.len();
        let report = engine.run(jobs);
        let resolved_workers = report.workers;

        let mut outcomes = HashMap::new();
        let mut per_size_seconds: BTreeMap<usize, f64> =
            suite.sizes.iter().map(|&s| (s, 0.0)).collect();
        let mut pass_seconds: BTreeMap<String, f64> = BTreeMap::new();
        for (key, result) in keys.iter().zip(&report.results) {
            *per_size_seconds.entry(key.1).or_insert(0.0) += result.timings.total_seconds;
            let outcome = match &result.artifact {
                Ok(artifact) => {
                    for pass in &artifact.passes {
                        *pass_seconds.entry(pass.name.clone()).or_insert(0.0) += pass.seconds;
                    }
                    RunOutcome::Done(artifact.metrics.clone())
                }
                Err(e) => RunOutcome::NotApplicable(e.message.clone()),
            };
            outcomes.insert(*key, outcome);
        }

        // Phase 2 — the FPQA baselines on the same work-stealing pool.
        let baseline_systems = [CompilerId::Atomique, CompilerId::Dpqa, CompilerId::Geyser];
        let mut items = Vec::new();
        for &size in &suite.sizes {
            for variant in 1..=suite.variants {
                for id in baseline_systems {
                    items.push((id, size, variant));
                }
            }
        }
        let baseline_jobs = items.len();
        let params = &suite.params;
        let results = pool::run_jobs(items.clone(), resolved_workers, |_, (id, size, variant)| {
            let f = generator::instance(size, variant);
            run_compiler(id, &f, params)
        });
        for (key, outcome) in items.into_iter().zip(results) {
            if let Some(m) = outcome.metrics() {
                *per_size_seconds.entry(key.1).or_insert(0.0) += m.compilation_seconds;
            }
            outcomes.insert(key, outcome);
        }

        SizeSweep {
            suite: suite.clone(),
            outcomes,
            wall_seconds: start.elapsed().as_secs_f64(),
            workers: resolved_workers,
            engine_jobs,
            baseline_jobs,
            per_size_seconds,
            pass_seconds,
        }
    }

    /// The suite this sweep ran.
    pub fn suite(&self) -> &Suite {
        &self.suite
    }

    /// Total points in the sweep.
    pub fn jobs(&self) -> usize {
        self.engine_jobs + self.baseline_jobs
    }

    /// Sweep throughput in points per second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.jobs() as f64 / self.wall_seconds
        } else {
            f64::INFINITY
        }
    }

    /// The outcome of one point; points outside the sweep grid render as
    /// not-applicable, mirroring the paper's `—` cells.
    pub fn outcome(&self, id: CompilerId, size: usize, variant: usize) -> RunOutcome {
        self.outcomes
            .get(&(id, size, variant))
            .cloned()
            .unwrap_or_else(|| RunOutcome::NotApplicable("point not in sweep".to_string()))
    }

    /// Geometric mean of a metric over the suite's variants at one size;
    /// `None` if any variant failed (the paper then marks the point ✗).
    /// Same semantics as [`Suite::mean_at_size`], read from the batch.
    pub fn mean_at_size(
        &self,
        id: CompilerId,
        size: usize,
        metric: impl Fn(&Metrics) -> f64,
    ) -> Option<f64> {
        let mut acc = 0.0f64;
        for variant in 1..=self.suite.variants {
            match self.outcome(id, size, variant) {
                RunOutcome::Done(m) => acc += metric(&m).max(1e-300).ln(),
                _ => return None,
            }
        }
        Some((acc / self.suite.variants as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_fpqa::FpqaParams;

    fn tiny() -> Suite {
        Suite {
            sizes: vec![20],
            variants: 2,
            params: FpqaParams::default(),
        }
    }

    #[test]
    fn sweep_covers_every_point() {
        let sweep = SizeSweep::run(&tiny(), 1);
        assert_eq!(sweep.engine_jobs, 4, "2 variants × 2 engine systems");
        assert_eq!(sweep.baseline_jobs, 6, "2 variants × 3 baselines");
        for id in CompilerId::ALL {
            for variant in 1..=2 {
                assert!(
                    sweep.outcome(id, 20, variant).metrics().is_some(),
                    "{} must complete uf20-{variant:02}",
                    id.name()
                );
            }
        }
        assert!(sweep.wall_seconds > 0.0);
        assert!(sweep.per_size_seconds[&20] > 0.0);
        assert!(
            !sweep.pass_seconds.is_empty(),
            "engine artifacts carry pass records"
        );
    }

    #[test]
    fn sweep_matches_inline_run_compiler() {
        let suite = tiny();
        let sweep = SizeSweep::run(&suite, 2);
        for id in CompilerId::ALL {
            let inline = run_compiler(id, &generator::instance(20, 1), &suite.params);
            let batched = sweep.outcome(id, 20, 1);
            let (Some(a), Some(b)) = (inline.metrics(), batched.metrics()) else {
                panic!("{} must complete uf20-01 both ways", id.name());
            };
            assert_eq!(a.pulses, b.pulses, "{}", id.name());
            assert_eq!(a.steps, b.steps, "{}", id.name());
            assert!((a.eps - b.eps).abs() < 1e-12, "{}", id.name());
        }
    }

    #[test]
    fn mean_at_size_matches_suite_semantics() {
        let suite = tiny();
        let sweep = SizeSweep::run(&suite, 1);
        let batched = sweep
            .mean_at_size(CompilerId::Weaver, 20, |m| m.eps)
            .unwrap();
        let inline = suite
            .mean_at_size(CompilerId::Weaver, 20, |m| m.eps)
            .unwrap();
        assert!((batched - inline).abs() < 1e-12);
        assert!(sweep
            .mean_at_size(CompilerId::Weaver, 999, |m| m.eps)
            .is_none());
    }

    #[test]
    fn missing_point_renders_as_dash() {
        let sweep = SizeSweep::run(&tiny(), 1);
        let out = sweep.outcome(CompilerId::Weaver, 123, 1);
        assert!(matches!(out, RunOutcome::NotApplicable(_)));
        assert_eq!(out.cell(|_| String::new()), "—");
    }
}
