//! Batch-throughput benchmark for `weaver-engine`.
//!
//! Runs the fixture suite (the same eight 20-variable SATLIB-style
//! instances committed under `tests/fixtures/`) through the engine three
//! ways — cold cache, warm in-memory cache, and with caching bypassed —
//! and renders the result as the tracked `BENCH_engine.json` baseline
//! (`figures bench-engine`). The acceptance bar is a ≥ 5× jobs/sec uplift
//! of the warm rerun over the cold run.

use std::time::Instant;
use weaver_engine::{CompileJob, Engine, EngineConfig};
use weaver_sat::generator;

/// Instances in the benchmark suite (mirrors `tests/fixtures/uf20-0*.cnf`).
pub const SUITE_SIZE: usize = 8;

/// Variable count of every suite instance.
pub const SUITE_VARS: usize = 20;

/// One engine-throughput measurement.
#[derive(Clone, Debug)]
pub struct EngineBench {
    /// Stable identifier, e.g. `batch_cold_8x20`.
    pub id: &'static str,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Best-of-samples wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Throughput at that wall time.
    pub jobs_per_sec: f64,
    /// Artifact-cache hits during the measured run.
    pub cache_hits: usize,
}

/// The jobs of the benchmark suite: the eight fixture instances, checker
/// enabled (so the warm path also exercises the memoized device traces).
pub fn suite_jobs(check: bool) -> Vec<CompileJob> {
    (1..=SUITE_SIZE)
        .map(|v| {
            let mut job = CompileJob::from_formula(
                format!("uf{SUITE_VARS}-{v:02}"),
                generator::instance(SUITE_VARS, v),
            );
            job.options.check = check;
            job
        })
        .collect()
}

/// Runs the cold/warm/bypass suite with `samples` repetitions per
/// measurement (best wall time wins, so scheduler noise shrinks the
/// numbers, never inflates them) on `workers` threads (0 = all cores).
pub fn run(samples: usize, workers: usize) -> Vec<EngineBench> {
    let samples = samples.max(1);
    let jobs = suite_jobs(true);
    let config = EngineConfig {
        jobs: workers,
        ..EngineConfig::default()
    };

    // Cold: a fresh engine (empty cache) per sample.
    let mut cold_best = f64::INFINITY;
    let mut cold_workers = 1;
    for _ in 0..samples {
        let engine = Engine::new(config.clone());
        let start = Instant::now();
        let report = engine.run(jobs.clone());
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.succeeded(), jobs.len(), "cold batch must succeed");
        assert_eq!(report.cache_hits(), 0, "cold batch cannot hit");
        cold_best = cold_best.min(elapsed);
        cold_workers = report.workers;
    }

    // Warm: one engine, first run populates, measured reruns hit.
    let engine = Engine::new(config.clone());
    engine.run(jobs.clone());
    let mut warm_best = f64::INFINITY;
    let mut warm_hits = 0;
    for _ in 0..samples {
        let start = Instant::now();
        let report = engine.run(jobs.clone());
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.cache_hits(), jobs.len(), "warm batch must hit");
        warm_best = warm_best.min(elapsed);
        warm_hits = report.cache_hits();
    }

    // Bypass: caching disabled — the pool's raw recompile throughput.
    let bypass_engine = Engine::new(EngineConfig {
        use_cache: false,
        ..config
    });
    let mut bypass_best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        let report = bypass_engine.run(jobs.clone());
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(report.cache_hits(), 0);
        bypass_best = bypass_best.min(elapsed);
    }

    let n = jobs.len();
    let bench = |id: &'static str, wall: f64, hits: usize| EngineBench {
        id,
        jobs: n,
        workers: cold_workers,
        wall_seconds: wall,
        jobs_per_sec: n as f64 / wall,
        cache_hits: hits,
    };
    vec![
        bench("batch_cold_8x20", cold_best, 0),
        bench("batch_warm_8x20", warm_best, warm_hits),
        bench("batch_nocache_8x20", bypass_best, 0),
    ]
}

/// Warm-over-cold throughput uplift (the tracked headline number).
pub fn warm_speedup(benches: &[EngineBench]) -> f64 {
    let get = |id: &str| {
        benches
            .iter()
            .find(|b| b.id.contains(id))
            .expect("suite bench present")
            .jobs_per_sec
    };
    get("warm") / get("cold")
}

/// Renders the suite result as the `BENCH_engine.json` document.
pub fn to_json(benches: &[EngineBench], samples: usize) -> String {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"suite\": \"engine_batch\",\n");
    s.push_str("  \"metric\": \"best_wall_seconds\",\n");
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!(
        "  \"warm_speedup\": {:.2},\n",
        warm_speedup(benches)
    ));
    s.push_str("  \"benchmarks\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let comma = if i + 1 == benches.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"id\": \"{}\", \"jobs\": {}, \"workers\": {}, \
             \"wall_seconds\": {:.6}, \"jobs_per_sec\": {:.2}, \"cache_hits\": {} }}{comma}\n",
            b.id, b.jobs, b.workers, b.wall_seconds, b.jobs_per_sec, b.cache_hits
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_serializes() {
        let benches = run(1, 1);
        assert_eq!(benches.len(), 3);
        assert!(benches.iter().all(|b| b.jobs_per_sec > 0.0));
        assert!(
            warm_speedup(&benches) >= 5.0,
            "warm cache must be ≥5× cold, got {:.2}",
            warm_speedup(&benches)
        );
        let json = to_json(&benches, 1);
        assert!(json.contains("\"batch_cold_8x20\""));
        assert!(json.contains("\"batch_warm_8x20\""));
        assert!(json.contains("\"warm_speedup\""));
    }
}
