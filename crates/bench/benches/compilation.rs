//! Criterion benches behind Fig. 8 (compilation time): one benchmark per
//! system at the 20-variable size, plus Weaver's scaling across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaver_baselines::{Atomique, Dpqa, FpqaCompiler, Geyser};
use weaver_core::Weaver;
use weaver_fpqa::FpqaParams;
use weaver_sat::generator;
use weaver_superconducting::CouplingMap;

fn bench_compilation_uf20(c: &mut Criterion) {
    let f = generator::instance(20, 1);
    let params = FpqaParams::default();
    let mut group = c.benchmark_group("fig8a_compile_uf20");
    group.sample_size(10);
    group.bench_function("weaver", |b| {
        let w = Weaver::new();
        b.iter(|| w.compile_fpqa(&f))
    });
    group.bench_function("superconducting", |b| {
        let w = Weaver::new();
        let coupling = CouplingMap::ibm_washington();
        b.iter(|| w.compile_superconducting(&f, &coupling))
    });
    group.bench_function("atomique", |b| {
        let a = Atomique::new(params.clone());
        b.iter(|| a.compile(&f).unwrap())
    });
    group.bench_function("geyser", |b| {
        let g = Geyser::new(params.clone());
        b.iter(|| g.compile(&f).unwrap())
    });
    group.bench_function("dpqa", |b| {
        let d = Dpqa::new(params.clone());
        b.iter(|| d.compile(&f).unwrap())
    });
    group.finish();
}

fn bench_weaver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_weaver_scaling");
    group.sample_size(10);
    for size in [20usize, 50, 75, 100] {
        let f = generator::instance(size, 1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &f, |b, f| {
            let w = Weaver::new();
            b.iter(|| w.compile_fpqa(f))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compilation_uf20, bench_weaver_scaling);
criterion_main!(benches);
