//! Criterion benches for individual wOptimizer passes and the wChecker
//! (Fig. 10a complexity, §5.5/§6) plus the ablation comparisons of
//! DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaver_core::coloring::{
    color_clauses, conflict_graph, conflict_graph_reference, dsatur, dsatur_reference,
    greedy_first_fit,
};
use weaver_core::{checker, CodegenOptions, Weaver};
use weaver_fpqa::FpqaParams;
use weaver_sat::generator;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("clause_coloring");
    group.sample_size(20);
    for size in [20usize, 50, 100, 250] {
        let f = generator::instance(size, 1);
        group.bench_with_input(BenchmarkId::new("dsatur", size), &f, |b, f| {
            b.iter(|| color_clauses(f))
        });
        let g = conflict_graph(&f);
        group.bench_with_input(BenchmarkId::new("first_fit", size), &g, |b, g| {
            b.iter(|| greedy_first_fit(g))
        });
        group.bench_with_input(BenchmarkId::new("dsatur_only", size), &g, |b, g| {
            b.iter(|| dsatur(g))
        });
    }
    // Old-vs-new at the largest paper size: CSR build + heap DSatur against
    // the adjacency-list + argmax references preserved for the
    // differential tests.
    let f = generator::instance(250, 1);
    group.bench_function("csr_dsatur_250", |b| b.iter(|| dsatur(&conflict_graph(&f))));
    group.bench_function("reference_dsatur_250", |b| {
        b.iter(|| dsatur_reference(&conflict_graph_reference(&f)))
    });
    group.finish();
}

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("wchecker");
    group.sample_size(10);
    for size in [8usize, 20, 50] {
        let f = generator::instance(size, 1);
        let out = Weaver::new().compile_fpqa(&f);
        group.bench_with_input(
            BenchmarkId::from_parameter(size),
            &out.compiled.program,
            |b, p| b.iter(|| checker::check(p, &FpqaParams::default(), None)),
        );
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let f = generator::instance(20, 1);
    let mut group = c.benchmark_group("ablation_compile");
    group.sample_size(10);
    let configs = [
        ("full", CodegenOptions::default()),
        (
            "no_compression",
            CodegenOptions {
                compression: false,
                ..CodegenOptions::default()
            },
        ),
        (
            "sequential_shuttles",
            CodegenOptions {
                parallel_shuttling: false,
                ..CodegenOptions::default()
            },
        ),
        (
            "first_fit_coloring",
            CodegenOptions {
                dsatur: false,
                ..CodegenOptions::default()
            },
        ),
    ];
    for (name, options) in configs {
        let w = Weaver::new().with_options(options);
        group.bench_function(name, |b| b.iter(|| w.compile_fpqa(&f)));
    }
    group.finish();
}

criterion_group!(benches, bench_coloring, bench_checker, bench_ablations);
criterion_main!(benches);
