//! Criterion benches for SABRE routing on the `sc:eagle` topology — the
//! superconducting baseline's hot path (Table 2's O(N³) row).
//!
//! Routes the QAOA circuits of 100–127-variable Max-3SAT instances (the
//! largest paper sizes that fit Eagle's 127 qubits) through both the
//! optimized `sabre::route` and the preserved `sabre::route_reference`, so
//! a single run shows the old-vs-new gap the `BENCH_figures.json` baseline
//! tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaver_circuit::{native, Circuit, NativeBasis};
use weaver_sat::{generator, qaoa};
use weaver_superconducting::{sabre, CouplingMap, DeviceSpec};

fn qaoa_on_eagle(vars: usize) -> (Circuit, CouplingMap) {
    let f = generator::instance(vars, 1);
    let circuit = native::nativize(
        &qaoa::build_circuit(&f, &Default::default(), false),
        NativeBasis::U3Cz,
    );
    (circuit, DeviceSpec::eagle().coupling())
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("sabre_route_eagle");
    group.sample_size(10);
    for vars in [100usize, 127] {
        let (circuit, coupling) = qaoa_on_eagle(vars);
        group.bench_with_input(
            BenchmarkId::new("optimized", vars),
            &(&circuit, &coupling),
            |b, (circuit, coupling)| b.iter(|| sabre::route(circuit, coupling).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("reference", vars),
            &(&circuit, &coupling),
            |b, (circuit, coupling)| b.iter(|| sabre::route_reference(circuit, coupling).unwrap()),
        );
    }
    group.finish();
}

fn bench_distance_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("device_coupling");
    group.sample_size(20);
    // First call per device expands the topology and runs all-pairs BFS;
    // the process-global cache makes every later call a map lookup + Arc
    // clone. Benching the steady state shows what routing actually pays.
    group.bench_function("eagle_cached_lookup", |b| {
        b.iter(|| DeviceSpec::eagle().coupling())
    });
    group.finish();
}

criterion_group!(benches, bench_route, bench_distance_cache);
criterion_main!(benches);
