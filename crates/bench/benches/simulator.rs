//! Criterion benches for the state-vector kernels: the specialized dispatch
//! in `State::apply` and the contiguous `UnitaryBuilder` versus the seed's
//! generic gather/scatter path (`State::apply_reference`). Mirrors the
//! tracked `BENCH_simulator.json` baseline emitted by `figures bench-sim`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaver_bench::simbench::{builder_ops, dense_2q, plus_state, BUILD_QUBITS};
use weaver_simulator::{gates, Matrix, State, UnitaryBuilder};

fn bench_apply_1q(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_1q");
    group.sample_size(20);
    let gate = gates::u3(0.4, -0.7, 1.2);
    for n in [12usize, 16] {
        let mut fast = plus_state(n);
        group.bench_with_input(BenchmarkId::new("kernel", n), &(n / 2), |b, &t| {
            b.iter(|| fast.apply(&gate, &[t]))
        });
        let mut slow = plus_state(n);
        group.bench_with_input(BenchmarkId::new("reference", n), &(n / 2), |b, &t| {
            b.iter(|| slow.apply_reference(&gate, &[t]))
        });
    }
    group.finish();
}

fn bench_apply_2q(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_2q");
    group.sample_size(20);
    let n = 16usize;
    let dense = dense_2q();
    let targets = [3usize, 11];
    let mut fast = plus_state(n);
    group.bench_with_input(BenchmarkId::new("kernel", n), &targets, |b, t| {
        b.iter(|| fast.apply(&dense, t))
    });
    let mut slow = plus_state(n);
    group.bench_with_input(BenchmarkId::new("reference", n), &targets, |b, t| {
        b.iter(|| slow.apply_reference(&dense, t))
    });
    group.finish();
}

fn bench_apply_controlled(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_controlled");
    group.sample_size(20);
    let n = 16usize;
    let cases: [(&str, Matrix, Vec<usize>); 2] = [
        ("cx", gates::cx(), vec![2, 13]),
        ("ccz", gates::ccz(), vec![2, 7, 13]),
    ];
    for (name, gate, targets) in &cases {
        let mut fast = plus_state(n);
        group.bench_with_input(BenchmarkId::new("kernel", name), targets, |b, t| {
            b.iter(|| fast.apply(gate, t))
        });
        let mut slow = plus_state(n);
        group.bench_with_input(BenchmarkId::new("reference", name), targets, |b, t| {
            b.iter(|| slow.apply_reference(gate, t))
        });
    }
    group.finish();
}

fn bench_unitary_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("unitary_build");
    group.sample_size(5);
    let n = BUILD_QUBITS;
    let ops = builder_ops(n);
    group.bench_with_input(BenchmarkId::new("builder", n), &ops, |b, ops| {
        b.iter(|| {
            let mut builder = UnitaryBuilder::new(n);
            for (gate, targets) in ops {
                builder.apply(gate, targets);
            }
            builder.finish()
        })
    });
    group.bench_with_input(BenchmarkId::new("reference_columns", n), &ops, |b, ops| {
        b.iter(|| {
            let dim = 1usize << n;
            let mut columns: Vec<State> = (0..dim).map(|j| State::basis(n, j)).collect();
            for (gate, targets) in ops {
                for col in &mut columns {
                    col.apply_reference(gate, targets);
                }
            }
            let mut m = Matrix::zeros(dim, dim);
            for (j, col) in columns.iter().enumerate() {
                for (i, &amp) in col.amplitudes().iter().enumerate() {
                    m[(i, j)] = amp;
                }
            }
            m
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_apply_1q,
    bench_apply_2q,
    bench_apply_controlled,
    bench_unitary_build
);
criterion_main!(benches);
