//! Criterion benches for the batch engine: cold-cache, warm-cache, and
//! cache-bypassed throughput over the eight-instance fixture suite, plus a
//! 1-vs-N worker comparison. Mirrors the tracked `BENCH_engine.json`
//! baseline emitted by `figures bench-engine`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weaver_bench::enginebench::suite_jobs;
use weaver_engine::{Engine, EngineConfig};

fn config(workers: usize, use_cache: bool) -> EngineConfig {
    EngineConfig {
        jobs: workers,
        use_cache,
        ..EngineConfig::default()
    }
}

fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cold");
    group.sample_size(10);
    for workers in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("batch8x20", workers), &workers, |b, &w| {
            // A fresh engine per iteration keeps the cache cold.
            b.iter(|| Engine::new(config(w, true)).run(suite_jobs(true)))
        });
    }
    group.finish();
}

fn bench_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_warm");
    group.sample_size(10);
    for workers in [1usize, 2] {
        let engine = Engine::new(config(workers, true));
        engine.run(suite_jobs(true)); // populate
        group.bench_with_input(BenchmarkId::new("batch8x20", workers), &workers, |b, _| {
            b.iter(|| engine.run(suite_jobs(true)))
        });
    }
    group.finish();
}

fn bench_nocache(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_nocache");
    group.sample_size(10);
    let engine = Engine::new(config(0, false));
    group.bench_function("batch8x20", |b| b.iter(|| engine.run(suite_jobs(true))));
    group.finish();
}

criterion_group!(benches, bench_cold, bench_warm, bench_nocache);
criterion_main!(benches);
