//! Noise model and Estimated Probability of Success (EPS).
//!
//! The paper's fidelity metric (§2.2, §8.4) accumulates per-pulse error
//! probabilities: `EPS = Π_ops p_success(op) · decoherence(t_exec)`. The
//! same model applies to superconducting baselines with their own error
//! table, so results are comparable across technologies.

use crate::{FpqaParams, PulseOp, PulseSchedule};

/// Per-operation success probability under the device noise model.
pub fn op_success_probability(op: &PulseOp, params: &FpqaParams, num_atoms: usize) -> f64 {
    match op {
        // A global Raman pulse rotates every atom; each acquires 1q error.
        PulseOp::RamanGlobal { .. } => params.fidelity_1q.powi(num_atoms as i32),
        PulseOp::RamanLocal { .. } => params.fidelity_1q,
        // A Rydberg pulse succeeds iff every interaction group does.
        PulseOp::Rydberg { groups } => groups
            .iter()
            .map(|g| params.rydberg_group_fidelity(g.len()))
            .product(),
        PulseOp::Shuttle { distance } => params.shuttle_fidelity(*distance),
        PulseOp::Transfer => params.fidelity_transfer,
        // Parallel pickup: every atom still risks loss individually.
        PulseOp::TransferBatch { atoms } => params.fidelity_transfer.powi(*atoms as i32),
    }
}

/// Estimated probability of success of a full schedule on `num_atoms`
/// atoms: product of per-op success probabilities times the idle
/// decoherence factor for the schedule's duration.
///
/// # Examples
///
/// ```
/// use weaver_fpqa::{eps, FpqaParams, PulseOp, PulseSchedule};
/// let mut s = PulseSchedule::new();
/// s.push(PulseOp::Rydberg { groups: vec![vec![0, 1]] });
/// let p = FpqaParams::default();
/// let e = eps(&s, &p, 2);
/// assert!(e > 0.99 && e <= 1.0);
/// ```
pub fn eps(schedule: &PulseSchedule, params: &FpqaParams, num_atoms: usize) -> f64 {
    let gate_success: f64 = schedule
        .ops()
        .iter()
        .map(|op| op_success_probability(op, params, num_atoms))
        .product();
    let decoherence = params.decoherence_factor(num_atoms, schedule.duration(params));
    gate_success * decoherence
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FpqaParams {
        FpqaParams::default()
    }

    #[test]
    fn empty_schedule_is_certain() {
        let s = PulseSchedule::new();
        assert_eq!(eps(&s, &params(), 10), 1.0);
    }

    #[test]
    fn eps_decreases_with_more_pulses() {
        let p = params();
        let mut s1 = PulseSchedule::new();
        s1.push(PulseOp::Rydberg {
            groups: vec![vec![0, 1]],
        });
        let mut s2 = s1.clone();
        s2.push(PulseOp::Rydberg {
            groups: vec![vec![0, 1]],
        });
        assert!(eps(&s2, &p, 2) < eps(&s1, &p, 2));
    }

    #[test]
    fn ccz_worse_than_cz() {
        let p = params();
        let cz = PulseOp::Rydberg {
            groups: vec![vec![0, 1]],
        };
        let ccz = PulseOp::Rydberg {
            groups: vec![vec![0, 1, 2]],
        };
        assert!(op_success_probability(&ccz, &p, 3) < op_success_probability(&cz, &p, 3));
    }

    #[test]
    fn global_raman_scales_with_atom_count() {
        let p = params();
        let g = PulseOp::RamanGlobal {
            angles: (0.1, 0.2, 0.3),
        };
        assert!(op_success_probability(&g, &p, 100) < op_success_probability(&g, &p, 10));
    }

    #[test]
    fn parallel_groups_multiply() {
        let p = params();
        let two_groups = PulseOp::Rydberg {
            groups: vec![vec![0, 1], vec![2, 3]],
        };
        let expected = p.fidelity_cz * p.fidelity_cz;
        assert!((op_success_probability(&two_groups, &p, 4) - expected).abs() < 1e-12);
    }

    #[test]
    fn higher_ccz_fidelity_raises_eps() {
        let mut s = PulseSchedule::new();
        for _ in 0..10 {
            s.push(PulseOp::Rydberg {
                groups: vec![vec![0, 1, 2]],
            });
        }
        let low = eps(&s, &params().with_ccz_fidelity(0.98), 3);
        let high = eps(&s, &params().with_ccz_fidelity(0.999), 3);
        assert!(high > low);
    }

    #[test]
    fn long_schedules_decohere() {
        let p = params();
        let mut s = PulseSchedule::new();
        for _ in 0..100 {
            s.push(PulseOp::Shuttle { distance: 100.0 });
        }
        // Motion-heavy schedule: duration ~19 ms on 50 atoms ⇒ visible decay.
        let e = eps(&s, &p, 50);
        assert!(e < 0.9);
        assert!(e > 0.0);
    }
}
