//! Planar geometry primitives for atom positions.

use std::fmt;

/// A point in the 2D trap plane, in micrometres.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (µm).
    pub x: f64,
    /// Vertical coordinate (µm).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Whether two points coincide within `tol`.
    pub fn approx_eq(self, other: Point, tol: f64) -> bool {
        self.distance(other) <= tol
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point { x, y }
    }
}

/// Groups indices whose positions form connected clusters under the
/// `radius` adjacency relation (distance ≤ radius links two points).
/// Returned clusters preserve index order; singleton clusters are included.
pub fn proximity_clusters(points: &[Point], radius: f64) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            if points[i].distance(points[j]) <= radius {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut root_to_cluster: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        let idx = *root_to_cluster.entry(r).or_insert_with(|| {
            clusters.push(Vec::new());
            clusters.len() - 1
        });
        clusters[idx].push(i);
    }
    clusters
}

/// Whether all pairwise distances within the cluster are equal within `tol`
/// (required by the paper's "digital computation" assumption: a Rydberg
/// pulse on three atoms is a clean CCZ only if they are equidistant).
pub fn is_equidistant(points: &[Point], tol: f64) -> bool {
    if points.len() < 3 {
        return true;
    }
    let mut dists = Vec::new();
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            dists.push(points[i].distance(points[j]));
        }
    }
    let first = dists[0];
    dists.iter().all(|d| (d - first).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert!(a.approx_eq(Point::new(0.0, 1e-12), 1e-9));
    }

    #[test]
    fn clusters_partition_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.5, 0.0),
            Point::new(50.0, 50.0),
        ];
        let clusters = proximity_clusters(&pts, 2.0);
        assert_eq!(clusters.len(), 3);
        let sizes: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.contains(&1));
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn transitive_chaining_merges_clusters() {
        // a—b and b—c within radius, a—c not: still one cluster.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.5, 0.0),
            Point::new(3.0, 0.0),
        ];
        let clusters = proximity_clusters(&pts, 1.6);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }

    #[test]
    fn equidistance_check() {
        // Equilateral triangle.
        let tri = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3f64.sqrt()),
        ];
        assert!(is_equidistant(&tri, 1e-9));
        // Right line of 3 is not equidistant.
        let line = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        assert!(!is_equidistant(&line, 1e-9));
        // Pairs are trivially equidistant.
        assert!(is_equidistant(&line[..2], 1e-9));
    }
}
