//! FPQA pulse schedules: the low-level instruction stream a compiled
//! program executes, with the timing model used for the paper's
//! execution-time metric (§8.3).

use crate::{FpqaParams, QubitId};
use std::fmt;

/// One low-level FPQA operation.
#[derive(Clone, Debug, PartialEq)]
pub enum PulseOp {
    /// Global Raman pulse: rotation `(x, y, z)` on every atom.
    RamanGlobal {
        /// Euler angles (radians).
        angles: (f64, f64, f64),
    },
    /// Local Raman pulse on one atom.
    RamanLocal {
        /// Addressed qubit.
        qubit: QubitId,
        /// Euler angles (radians).
        angles: (f64, f64, f64),
    },
    /// Global Rydberg pulse; `groups` records the interaction sets it
    /// entangles (filled in by the compiler for bookkeeping/EPS).
    Rydberg {
        /// Interaction groups (each becomes a CZ/CCZ).
        groups: Vec<Vec<QubitId>>,
    },
    /// AOD row/column move over the given distance (µm, absolute value).
    Shuttle {
        /// Distance moved in µm.
        distance: f64,
    },
    /// Atom transfer between layers.
    Transfer,
    /// Simultaneous transfer of a whole AOD batch (one beam event moving
    /// `atoms` atoms in parallel — the payoff of Algorithm 2 batching).
    TransferBatch {
        /// Number of atoms moved at once.
        atoms: usize,
    },
}

impl PulseOp {
    /// Duration of this operation under the given parameters (µs).
    pub fn duration(&self, params: &FpqaParams) -> f64 {
        match self {
            PulseOp::RamanGlobal { .. } => params.raman_global_duration,
            PulseOp::RamanLocal { .. } => params.raman_local_duration,
            PulseOp::Rydberg { .. } => params.rydberg_duration,
            PulseOp::Shuttle { distance } => params.shuttle_time(*distance),
            PulseOp::Transfer | PulseOp::TransferBatch { .. } => params.transfer_duration,
        }
    }

    /// Whether this op is a laser pulse (vs. atom motion).
    pub fn is_pulse(&self) -> bool {
        matches!(
            self,
            PulseOp::RamanGlobal { .. } | PulseOp::RamanLocal { .. } | PulseOp::Rydberg { .. }
        )
    }
}

impl fmt::Display for PulseOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PulseOp::RamanGlobal { angles } => {
                write!(
                    f,
                    "raman global ({:.3}, {:.3}, {:.3})",
                    angles.0, angles.1, angles.2
                )
            }
            PulseOp::RamanLocal { qubit, angles } => write!(
                f,
                "raman local q{qubit} ({:.3}, {:.3}, {:.3})",
                angles.0, angles.1, angles.2
            ),
            PulseOp::Rydberg { groups } => write!(f, "rydberg {groups:?}"),
            PulseOp::Shuttle { distance } => write!(f, "shuttle {distance:.2} µm"),
            PulseOp::Transfer => write!(f, "transfer"),
            PulseOp::TransferBatch { atoms } => write!(f, "transfer x{atoms}"),
        }
    }
}

/// An ordered FPQA pulse schedule with aggregate metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PulseSchedule {
    ops: Vec<PulseOp>,
}

impl PulseSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        PulseSchedule::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: PulseOp) {
        self.ops.push(op);
    }

    /// All operations in order.
    pub fn ops(&self) -> &[PulseOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of laser pulses (the paper's Fig. 10b metric).
    pub fn pulse_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_pulse()).count()
    }

    /// Number of motion operations (shuttles + transfers).
    pub fn motion_count(&self) -> usize {
        self.ops.iter().filter(|o| !o.is_pulse()).count()
    }

    /// Total execution time in µs — operations execute sequentially, as each
    /// step depends on the previous device state (§4.2); parallelism lives
    /// *within* a global pulse or a merged shuttle.
    pub fn duration(&self, params: &FpqaParams) -> f64 {
        self.ops.iter().map(|o| o.duration(params)).sum()
    }

    /// Appends all operations of another schedule.
    pub fn append_schedule(&mut self, other: &PulseSchedule) {
        self.ops.extend(other.ops.iter().cloned());
    }
}

impl FromIterator<PulseOp> for PulseSchedule {
    fn from_iter<I: IntoIterator<Item = PulseOp>>(iter: I) -> Self {
        PulseSchedule {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<PulseOp> for PulseSchedule {
    fn extend<I: IntoIterator<Item = PulseOp>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PulseSchedule {
        let mut s = PulseSchedule::new();
        s.push(PulseOp::RamanGlobal {
            angles: (0.1, 0.0, 0.0),
        });
        s.push(PulseOp::Shuttle { distance: 55.0 });
        s.push(PulseOp::Rydberg {
            groups: vec![vec![0, 1], vec![2, 3, 4]],
        });
        s.push(PulseOp::Transfer);
        s.push(PulseOp::RamanLocal {
            qubit: 2,
            angles: (0.0, 0.5, 0.0),
        });
        s
    }

    #[test]
    fn counts_split_pulses_and_motion() {
        let s = sample();
        assert_eq!(s.len(), 5);
        assert_eq!(s.pulse_count(), 3);
        assert_eq!(s.motion_count(), 2);
    }

    #[test]
    fn duration_accumulates() {
        let p = FpqaParams::default();
        let s = sample();
        let expected = p.raman_global_duration
            + p.shuttle_time(55.0)
            + p.rydberg_duration
            + p.transfer_duration
            + p.raman_local_duration;
        assert!((s.duration(&p) - expected).abs() < 1e-9);
    }

    #[test]
    fn motion_dominates_time() {
        // Paper §8.3: shuttling is slow compared to pulses.
        let p = FpqaParams::default();
        let shuttle = PulseOp::Shuttle { distance: 30.0 };
        let rydberg = PulseOp::Rydberg { groups: vec![] };
        assert!(shuttle.duration(&p) > 10.0 * rydberg.duration(&p));
    }

    #[test]
    fn collects_from_iterator() {
        let s: PulseSchedule = vec![PulseOp::Transfer, PulseOp::Transfer]
            .into_iter()
            .collect();
        assert_eq!(s.motion_count(), 2);
    }
}
