//! FPQA (Field-Programmable Qubit Array / neutral-atom) device model for
//! the Weaver compiler framework (paper §2.3, §4.3).
//!
//! Models the hardware the paper targets: a fixed SLM trap layer, a
//! reconfigurable AOD grid that shuttles rows/columns, atom transfer
//! between layers, Raman (single-qubit) and Rydberg (multi-qubit) pulses —
//! together with the timing and noise model behind the execution-time and
//! EPS metrics of the evaluation (§8.3, §8.4).
//!
//! * [`FpqaParams`] — physical constants (Rubidium defaults from [26, 83]),
//! * [`FpqaDevice`] — stateful trap/atom model enforcing every Table-1
//!   pre-condition,
//! * [`PulseSchedule`] / [`PulseOp`] — the low-level instruction stream,
//! * [`eps`] — Estimated Probability of Success.
//!
//! # Example
//!
//! ```
//! use weaver_fpqa::{FpqaDevice, FpqaParams, Location};
//!
//! let mut device = FpqaDevice::new(FpqaParams::default());
//! device.init_slm(&[(0.0, 0.0).into(), (5.5, 0.0).into()]).unwrap();
//! device.bind(0, Location::Slm(0)).unwrap();
//! device.bind(1, Location::Slm(1)).unwrap();
//! // Both atoms are within the Rydberg radius: one CZ group.
//! assert_eq!(device.rydberg_groups().unwrap(), vec![vec![0, 1]]);
//! ```

#![warn(missing_docs)]

mod device;
pub mod geometry;
mod noise;
mod params;
mod schedule;

pub use device::{FpqaDevice, FpqaError, Location, QubitId};
pub use geometry::Point;
pub use noise::{eps, op_success_probability};
pub use params::FpqaParams;
pub use schedule::{PulseOp, PulseSchedule};
