//! Stateful FPQA device model: trap layers, atom binding, motion and the
//! interaction semantics of Rydberg pulses (paper §2.3, §4.3).

use crate::geometry::{is_equidistant, proximity_clusters, Point};
use crate::FpqaParams;
use std::collections::HashMap;
use std::fmt;

/// Logical qubit identifier (matches circuit qubit indices).
pub type QubitId = usize;

/// Where an atom currently sits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Location {
    /// SLM (fixed-layer) trap by linear index.
    Slm(usize),
    /// AOD (reconfigurable-layer) trap by (column, row) grid index.
    Aod(usize, usize),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Slm(i) => write!(f, "slm[{i}]"),
            Location::Aod(c, r) => write!(f, "aod[{c}, {r}]"),
        }
    }
}

/// Violations of the FPQA pre-conditions of paper Table 1.
#[derive(Clone, Debug, PartialEq)]
pub enum FpqaError {
    /// A layer was (re)initialized while atoms are bound.
    ReinitWithAtoms,
    /// Trap coordinates violate the minimum spacing.
    TrapsTooClose {
        /// The offending distance.
        distance: f64,
        /// The required minimum.
        minimum: f64,
    },
    /// AOD coordinates not strictly increasing.
    AodNotIncreasing,
    /// Referenced trap index out of range.
    TrapOutOfRange(Location),
    /// Target trap is already occupied.
    TrapOccupied(Location),
    /// Source trap is empty (or both/neither side occupied for transfer).
    TransferAmbiguous {
        /// SLM side occupancy.
        slm_occupied: bool,
        /// AOD side occupancy.
        aod_occupied: bool,
    },
    /// Transfer distance exceeds the maximum.
    TransferTooFar {
        /// Actual distance.
        distance: f64,
        /// Allowed maximum.
        maximum: f64,
    },
    /// A shuttle would cross or crowd a neighbouring row/column.
    ShuttleCrossing {
        /// Description of the conflict.
        detail: String,
    },
    /// Qubit is already bound to a trap.
    QubitAlreadyBound(QubitId),
    /// Qubit is not bound to any trap.
    QubitUnbound(QubitId),
    /// A Rydberg interaction group is not equidistant (digital-computation
    /// assumption: a clean CⁿZ needs pairwise-equal spacing for n ≥ 2).
    GroupNotEquidistant {
        /// The atoms in the offending group.
        qubits: Vec<QubitId>,
    },
    /// Uninitialized layer referenced.
    LayerUninitialized(&'static str),
}

impl fmt::Display for FpqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpqaError::ReinitWithAtoms => write!(f, "cannot reinitialize a layer holding atoms"),
            FpqaError::TrapsTooClose { distance, minimum } => write!(
                f,
                "traps {distance:.2} µm apart, below the {minimum:.2} µm minimum"
            ),
            FpqaError::AodNotIncreasing => {
                write!(f, "AOD coordinates must be strictly increasing")
            }
            FpqaError::TrapOutOfRange(loc) => write!(f, "trap {loc} out of range"),
            FpqaError::TrapOccupied(loc) => write!(f, "trap {loc} is occupied"),
            FpqaError::TransferAmbiguous {
                slm_occupied,
                aod_occupied,
            } => write!(
                f,
                "transfer needs exactly one occupied side (slm: {slm_occupied}, aod: {aod_occupied})"
            ),
            FpqaError::TransferTooFar { distance, maximum } => write!(
                f,
                "transfer over {distance:.2} µm exceeds the {maximum:.2} µm maximum"
            ),
            FpqaError::ShuttleCrossing { detail } => write!(f, "illegal shuttle: {detail}"),
            FpqaError::QubitAlreadyBound(q) => write!(f, "qubit {q} already bound"),
            FpqaError::QubitUnbound(q) => write!(f, "qubit {q} is not bound to a trap"),
            FpqaError::GroupNotEquidistant { qubits } => {
                write!(f, "interaction group {qubits:?} is not equidistant")
            }
            FpqaError::LayerUninitialized(layer) => {
                write!(f, "{layer} layer not initialized")
            }
        }
    }
}

impl std::error::Error for FpqaError {}

/// The mutable FPQA device state.
///
/// # Examples
///
/// ```
/// use weaver_fpqa::{FpqaDevice, FpqaParams, Location};
/// let mut d = FpqaDevice::new(FpqaParams::default());
/// d.init_slm(&[(0.0, 0.0).into(), (10.0, 0.0).into()]).unwrap();
/// d.init_aod(&[5.0], &[8.0]).unwrap();
/// d.bind(0, Location::Slm(0)).unwrap();
/// d.bind(1, Location::Aod(0, 0)).unwrap();
/// assert_eq!(d.num_atoms(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct FpqaDevice {
    params: FpqaParams,
    slm_positions: Vec<Point>,
    slm_occupants: Vec<Option<QubitId>>,
    aod_xs: Vec<f64>,
    aod_ys: Vec<f64>,
    aod_occupants: HashMap<(usize, usize), QubitId>,
    locations: HashMap<QubitId, Location>,
}

impl FpqaDevice {
    /// Creates an empty device with the given physical parameters.
    pub fn new(params: FpqaParams) -> Self {
        FpqaDevice {
            params,
            slm_positions: Vec::new(),
            slm_occupants: Vec::new(),
            aod_xs: Vec::new(),
            aod_ys: Vec::new(),
            aod_occupants: HashMap::new(),
            locations: HashMap::new(),
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &FpqaParams {
        &self.params
    }

    /// Number of bound atoms.
    pub fn num_atoms(&self) -> usize {
        self.locations.len()
    }

    /// Number of SLM traps.
    pub fn num_slm_traps(&self) -> usize {
        self.slm_positions.len()
    }

    /// AOD grid dimensions (columns, rows).
    pub fn aod_dims(&self) -> (usize, usize) {
        (self.aod_xs.len(), self.aod_ys.len())
    }

    /// Initializes the SLM layer (`@slm`).
    ///
    /// # Errors
    ///
    /// [`FpqaError::TrapsTooClose`] if spacing is violated;
    /// [`FpqaError::ReinitWithAtoms`] if atoms are bound.
    pub fn init_slm(&mut self, positions: &[Point]) -> Result<(), FpqaError> {
        if self.slm_occupants.iter().any(Option::is_some) {
            return Err(FpqaError::ReinitWithAtoms);
        }
        for (i, a) in positions.iter().enumerate() {
            for b in &positions[..i] {
                let d = a.distance(*b);
                if d < self.params.min_trap_distance {
                    return Err(FpqaError::TrapsTooClose {
                        distance: d,
                        minimum: self.params.min_trap_distance,
                    });
                }
            }
        }
        self.slm_positions = positions.to_vec();
        self.slm_occupants = vec![None; positions.len()];
        Ok(())
    }

    /// Initializes the AOD layer (`@aod`) with column x-coordinates and row
    /// y-coordinates.
    ///
    /// # Errors
    ///
    /// [`FpqaError::AodNotIncreasing`] / [`FpqaError::TrapsTooClose`] on
    /// ordering/spacing violations; [`FpqaError::ReinitWithAtoms`] if atoms
    /// are bound.
    /// Re-initialization is allowed while the AOD holds no atoms: turning
    /// the deflector beams off and on recreates empty traps anywhere, which
    /// is how compiled programs reposition the AOD between pickups.
    pub fn init_aod(&mut self, xs: &[f64], ys: &[f64]) -> Result<(), FpqaError> {
        if !self.aod_occupants.is_empty() {
            return Err(FpqaError::ReinitWithAtoms);
        }
        for coords in [xs, ys] {
            for w in coords.windows(2) {
                if w[1] <= w[0] {
                    return Err(FpqaError::AodNotIncreasing);
                }
                if w[1] - w[0] < self.params.min_trap_distance {
                    return Err(FpqaError::TrapsTooClose {
                        distance: w[1] - w[0],
                        minimum: self.params.min_trap_distance,
                    });
                }
            }
        }
        self.aod_xs = xs.to_vec();
        self.aod_ys = ys.to_vec();
        self.aod_occupants.clear();
        Ok(())
    }

    fn check_location(&self, loc: Location) -> Result<(), FpqaError> {
        match loc {
            Location::Slm(i) => {
                if self.slm_positions.is_empty() {
                    Err(FpqaError::LayerUninitialized("SLM"))
                } else if i >= self.slm_positions.len() {
                    Err(FpqaError::TrapOutOfRange(loc))
                } else {
                    Ok(())
                }
            }
            Location::Aod(c, r) => {
                if self.aod_xs.is_empty() || self.aod_ys.is_empty() {
                    Err(FpqaError::LayerUninitialized("AOD"))
                } else if c >= self.aod_xs.len() || r >= self.aod_ys.len() {
                    Err(FpqaError::TrapOutOfRange(loc))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn occupant(&self, loc: Location) -> Option<QubitId> {
        match loc {
            Location::Slm(i) => self.slm_occupants[i],
            Location::Aod(c, r) => self.aod_occupants.get(&(c, r)).copied(),
        }
    }

    fn set_occupant(&mut self, loc: Location, q: Option<QubitId>) {
        match loc {
            Location::Slm(i) => self.slm_occupants[i] = q,
            Location::Aod(c, r) => {
                match q {
                    Some(q) => {
                        self.aod_occupants.insert((c, r), q);
                    }
                    None => {
                        self.aod_occupants.remove(&(c, r));
                    }
                };
            }
        }
    }

    /// Physical position of a trap.
    ///
    /// # Errors
    ///
    /// [`FpqaError::TrapOutOfRange`] / [`FpqaError::LayerUninitialized`].
    pub fn trap_position(&self, loc: Location) -> Result<Point, FpqaError> {
        self.check_location(loc)?;
        Ok(match loc {
            Location::Slm(i) => self.slm_positions[i],
            Location::Aod(c, r) => Point::new(self.aod_xs[c], self.aod_ys[r]),
        })
    }

    /// Binds a qubit ID to a trap (`@bind`).
    ///
    /// # Errors
    ///
    /// Errors if the trap is out of range or occupied, or the qubit is
    /// already bound.
    pub fn bind(&mut self, qubit: QubitId, loc: Location) -> Result<(), FpqaError> {
        self.check_location(loc)?;
        if self.locations.contains_key(&qubit) {
            return Err(FpqaError::QubitAlreadyBound(qubit));
        }
        if self.occupant(loc).is_some() {
            return Err(FpqaError::TrapOccupied(loc));
        }
        self.set_occupant(loc, Some(qubit));
        self.locations.insert(qubit, loc);
        Ok(())
    }

    /// Current location of a qubit.
    ///
    /// # Errors
    ///
    /// [`FpqaError::QubitUnbound`] if the qubit is not bound.
    pub fn location(&self, qubit: QubitId) -> Result<Location, FpqaError> {
        self.locations
            .get(&qubit)
            .copied()
            .ok_or(FpqaError::QubitUnbound(qubit))
    }

    /// Current physical position of a qubit.
    ///
    /// # Errors
    ///
    /// [`FpqaError::QubitUnbound`] if the qubit is not bound.
    pub fn position(&self, qubit: QubitId) -> Result<Point, FpqaError> {
        self.trap_position(self.location(qubit)?)
    }

    /// All bound atoms with positions, sorted by qubit ID.
    pub fn atoms(&self) -> Vec<(QubitId, Point)> {
        let mut out: Vec<(QubitId, Point)> = self
            .locations
            .iter()
            .map(|(&q, &loc)| {
                (
                    q,
                    self.trap_position(loc)
                        .expect("bound location always valid"),
                )
            })
            .collect();
        out.sort_by_key(|&(q, _)| q);
        out
    }

    /// Transfers an atom between an SLM trap and an AOD trap (`@transfer`).
    /// Direction is inferred from occupancy: exactly one side must hold an
    /// atom and the other must be free.
    ///
    /// # Errors
    ///
    /// Errors on range, ambiguous occupancy, or excessive distance.
    pub fn transfer(&mut self, slm_index: usize, aod: (usize, usize)) -> Result<(), FpqaError> {
        let slm_loc = Location::Slm(slm_index);
        let aod_loc = Location::Aod(aod.0, aod.1);
        self.check_location(slm_loc)?;
        self.check_location(aod_loc)?;
        let d = self
            .trap_position(slm_loc)?
            .distance(self.trap_position(aod_loc)?);
        if d > self.params.max_transfer_distance {
            return Err(FpqaError::TransferTooFar {
                distance: d,
                maximum: self.params.max_transfer_distance,
            });
        }
        let (from, to) = match (self.occupant(slm_loc), self.occupant(aod_loc)) {
            (Some(_), None) => (slm_loc, aod_loc),
            (None, Some(_)) => (aod_loc, slm_loc),
            (slm, aod) => {
                return Err(FpqaError::TransferAmbiguous {
                    slm_occupied: slm.is_some(),
                    aod_occupied: aod.is_some(),
                })
            }
        };
        let q = self.occupant(from).expect("checked occupied");
        self.set_occupant(from, None);
        self.set_occupant(to, Some(q));
        self.locations.insert(q, to);
        Ok(())
    }

    /// Moves an AOD row (`axis = Row`, y offset) or column (`Column`, x
    /// offset) by `offset` µm (`@shuttle`).
    ///
    /// # Errors
    ///
    /// [`FpqaError::ShuttleCrossing`] if the move would cross or crowd a
    /// neighbouring row/column (pre-condition of §4.3);
    /// [`FpqaError::TrapOutOfRange`] for bad indices.
    pub fn shuttle_row(&mut self, index: usize, offset: f64) -> Result<(), FpqaError> {
        if index >= self.aod_ys.len() {
            return Err(FpqaError::TrapOutOfRange(Location::Aod(0, index)));
        }
        let new_y = self.aod_ys[index] + offset;
        if index > 0 && new_y - self.aod_ys[index - 1] < self.params.min_trap_distance {
            return Err(FpqaError::ShuttleCrossing {
                detail: format!(
                    "row {index} would come within {:.2} µm of row {}",
                    new_y - self.aod_ys[index - 1],
                    index - 1
                ),
            });
        }
        if index + 1 < self.aod_ys.len()
            && self.aod_ys[index + 1] - new_y < self.params.min_trap_distance
        {
            return Err(FpqaError::ShuttleCrossing {
                detail: format!(
                    "row {index} would come within {:.2} µm of row {}",
                    self.aod_ys[index + 1] - new_y,
                    index + 1
                ),
            });
        }
        self.aod_ys[index] = new_y;
        Ok(())
    }

    /// Column variant of [`FpqaDevice::shuttle_row`].
    ///
    /// # Errors
    ///
    /// Same conditions as `shuttle_row`.
    pub fn shuttle_column(&mut self, index: usize, offset: f64) -> Result<(), FpqaError> {
        if index >= self.aod_xs.len() {
            return Err(FpqaError::TrapOutOfRange(Location::Aod(index, 0)));
        }
        let new_x = self.aod_xs[index] + offset;
        if index > 0 && new_x - self.aod_xs[index - 1] < self.params.min_trap_distance {
            return Err(FpqaError::ShuttleCrossing {
                detail: format!(
                    "column {index} would come within {:.2} µm of column {}",
                    new_x - self.aod_xs[index - 1],
                    index - 1
                ),
            });
        }
        if index + 1 < self.aod_xs.len()
            && self.aod_xs[index + 1] - new_x < self.params.min_trap_distance
        {
            return Err(FpqaError::ShuttleCrossing {
                detail: format!(
                    "column {index} would come within {:.2} µm of column {}",
                    self.aod_xs[index + 1] - new_x,
                    index + 1
                ),
            });
        }
        self.aod_xs[index] = new_x;
        Ok(())
    }

    /// The interaction groups a global Rydberg pulse would entangle right
    /// now: connected clusters of atoms within the Rydberg radius, with
    /// singleton clusters dropped.
    ///
    /// # Errors
    ///
    /// [`FpqaError::GroupNotEquidistant`] if a 3+-atom group violates the
    /// digital-computation assumption (pairwise-equal spacing, §7).
    pub fn rydberg_groups(&self) -> Result<Vec<Vec<QubitId>>, FpqaError> {
        let atoms = self.atoms();
        let points: Vec<Point> = atoms.iter().map(|&(_, p)| p).collect();
        let clusters = proximity_clusters(&points, self.params.rydberg_radius);
        let mut groups = Vec::new();
        for cluster in clusters {
            if cluster.len() < 2 {
                continue;
            }
            let pts: Vec<Point> = cluster.iter().map(|&i| points[i]).collect();
            let qubits: Vec<QubitId> = cluster.iter().map(|&i| atoms[i].0).collect();
            if !is_equidistant(&pts, 0.1) {
                return Err(FpqaError::GroupNotEquidistant { qubits });
            }
            groups.push(qubits);
        }
        Ok(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> FpqaDevice {
        FpqaDevice::new(FpqaParams::default())
    }

    #[test]
    fn slm_spacing_enforced() {
        let mut d = device();
        let err = d
            .init_slm(&[Point::new(0.0, 0.0), Point::new(2.0, 0.0)])
            .unwrap_err();
        assert!(matches!(err, FpqaError::TrapsTooClose { .. }));
        d.init_slm(&[Point::new(0.0, 0.0), Point::new(6.0, 0.0)])
            .unwrap();
        assert_eq!(d.num_slm_traps(), 2);
    }

    #[test]
    fn aod_ordering_enforced() {
        let mut d = device();
        assert!(matches!(
            d.init_aod(&[10.0, 5.0], &[0.0]),
            Err(FpqaError::AodNotIncreasing)
        ));
        assert!(matches!(
            d.init_aod(&[0.0, 3.0], &[0.0]),
            Err(FpqaError::TrapsTooClose { .. })
        ));
        d.init_aod(&[0.0, 10.0], &[0.0, 10.0]).unwrap();
        assert_eq!(d.aod_dims(), (2, 2));
    }

    #[test]
    fn binding_and_positions() {
        let mut d = device();
        d.init_slm(&[Point::new(0.0, 0.0)]).unwrap();
        d.init_aod(&[10.0], &[10.0]).unwrap();
        d.bind(0, Location::Slm(0)).unwrap();
        d.bind(1, Location::Aod(0, 0)).unwrap();
        assert_eq!(d.position(0).unwrap(), Point::new(0.0, 0.0));
        assert_eq!(d.position(1).unwrap(), Point::new(10.0, 10.0));
        assert!(matches!(
            d.bind(0, Location::Slm(0)),
            Err(FpqaError::QubitAlreadyBound(0))
        ));
        assert!(matches!(
            d.bind(2, Location::Aod(0, 0)),
            Err(FpqaError::TrapOccupied(_))
        ));
        assert!(matches!(d.position(9), Err(FpqaError::QubitUnbound(9))));
    }

    #[test]
    fn transfer_moves_atom_between_layers() {
        let mut d = device();
        d.init_slm(&[Point::new(0.0, 0.0)]).unwrap();
        d.init_aod(&[3.0], &[0.0]).unwrap(); // 3 µm from the SLM trap
        d.bind(0, Location::Slm(0)).unwrap();
        d.transfer(0, (0, 0)).unwrap();
        assert_eq!(d.location(0).unwrap(), Location::Aod(0, 0));
        // And back.
        d.transfer(0, (0, 0)).unwrap();
        assert_eq!(d.location(0).unwrap(), Location::Slm(0));
    }

    #[test]
    fn transfer_distance_enforced() {
        let mut d = device();
        d.init_slm(&[Point::new(0.0, 0.0)]).unwrap();
        d.init_aod(&[50.0], &[0.0]).unwrap();
        d.bind(0, Location::Slm(0)).unwrap();
        assert!(matches!(
            d.transfer(0, (0, 0)),
            Err(FpqaError::TransferTooFar { .. })
        ));
    }

    #[test]
    fn transfer_requires_exactly_one_occupied_side() {
        let mut d = device();
        d.init_slm(&[Point::new(0.0, 0.0)]).unwrap();
        d.init_aod(&[3.0], &[0.0]).unwrap();
        // Both empty.
        assert!(matches!(
            d.transfer(0, (0, 0)),
            Err(FpqaError::TransferAmbiguous { .. })
        ));
    }

    #[test]
    fn shuttle_moves_and_respects_neighbors() {
        let mut d = device();
        d.init_aod(&[0.0, 10.0, 20.0], &[0.0]).unwrap();
        // Move middle column right by 4: gap to column 2 becomes 6 ≥ 5. OK.
        d.shuttle_column(1, 4.0).unwrap();
        // Moving it further right by 2 would leave gap 4 < 5.
        assert!(matches!(
            d.shuttle_column(1, 2.0),
            Err(FpqaError::ShuttleCrossing { .. })
        ));
        // Rows likewise.
        let mut d = device();
        d.init_aod(&[0.0], &[0.0, 8.0]).unwrap();
        assert!(matches!(
            d.shuttle_row(0, 5.0),
            Err(FpqaError::ShuttleCrossing { .. })
        ));
        d.shuttle_row(1, 100.0).unwrap();
    }

    #[test]
    fn shuttle_moves_atoms_with_the_row() {
        let mut d = device();
        d.init_aod(&[0.0], &[0.0]).unwrap();
        d.init_slm(&[Point::new(100.0, 100.0)]).unwrap();
        d.bind(0, Location::Aod(0, 0)).unwrap();
        d.shuttle_column(0, 7.5).unwrap();
        d.shuttle_row(0, -2.5).unwrap();
        assert_eq!(d.position(0).unwrap(), Point::new(7.5, -2.5));
    }

    #[test]
    fn rydberg_groups_pairs_and_triangles() {
        let mut d = device();
        // Equilateral triangle of side 5.5 (within radius 6) + far pair.
        let h = 5.5 * 3f64.sqrt() / 2.0;
        d.init_slm(&[
            Point::new(0.0, 0.0),
            Point::new(5.5, 0.0),
            Point::new(2.75, h),
            Point::new(100.0, 0.0),
            Point::new(105.5, 0.0),
            Point::new(200.0, 200.0),
        ])
        .unwrap();
        for q in 0..6 {
            d.bind(q, Location::Slm(q)).unwrap();
        }
        let groups = d.rydberg_groups().unwrap();
        assert_eq!(groups.len(), 2);
        assert!(groups.contains(&vec![0, 1, 2]));
        assert!(groups.contains(&vec![3, 4]));
    }

    #[test]
    fn non_equidistant_triple_rejected() {
        let mut d = device();
        // Three collinear atoms, 5.5 µm gaps: 0–2 distance is 11 > radius…
        // use a bent chain where all are within radius but unequal.
        d.init_slm(&[
            Point::new(0.0, 0.0),
            Point::new(5.2, 0.0),
            Point::new(2.6, 5.0),
        ])
        .unwrap();
        for q in 0..3 {
            d.bind(q, Location::Slm(q)).unwrap();
        }
        // Distances: 5.2, ~5.63, ~5.63 — connected under radius 6, unequal.
        assert!(matches!(
            d.rydberg_groups(),
            Err(FpqaError::GroupNotEquidistant { .. })
        ));
    }

    #[test]
    fn reinit_with_atoms_rejected() {
        let mut d = device();
        d.init_slm(&[Point::new(0.0, 0.0)]).unwrap();
        d.bind(0, Location::Slm(0)).unwrap();
        assert!(matches!(
            d.init_slm(&[Point::new(0.0, 0.0)]),
            Err(FpqaError::ReinitWithAtoms)
        ));
        // The AOD holds no atoms, so repositioning its (empty) traps is fine.
        d.init_aod(&[0.0], &[0.0]).unwrap();
        d.init_aod(&[40.0], &[40.0]).unwrap();
        // But not while it carries an atom.
        d.init_slm(&[Point::new(0.0, 0.0), Point::new(40.0, 35.0)])
            .unwrap_err(); // still occupied — unchanged
        d.transfer(0, (0, 0)).unwrap_err(); // too far, state unchanged
    }
}
