//! Physical parameters of the modelled FPQA device.
//!
//! Values follow the Rubidium-atom platforms the paper configures from
//! Schmid et al. 2024 [83] and Evered et al. 2023 [26]: ~0.995 two-qubit
//! (CZ) fidelity, CCZ around 0.98 (the paper's §8.4 baseline), slow atom
//! motion relative to gates, and second-scale coherence.

/// Physical and noise parameters of an FPQA backend. All lengths in
/// micrometres, durations in microseconds, fidelities as success
/// probabilities in `(0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct FpqaParams {
    /// Minimum distance between any two occupied traps (5–10 µm per §4.3).
    pub min_trap_distance: f64,
    /// Blockade radius within which a Rydberg pulse entangles atoms.
    pub rydberg_radius: f64,
    /// Maximum SLM↔AOD distance for an atom transfer.
    pub max_transfer_distance: f64,
    /// AOD movement speed (µm/µs). Motion must stay slow to keep atoms.
    pub movement_speed: f64,
    /// Fixed per-shuttle ramp-up/ramp-down overhead (µs).
    pub shuttle_overhead: f64,
    /// Duration of a local Raman pulse (µs).
    pub raman_local_duration: f64,
    /// Duration of a global Raman pulse (µs).
    pub raman_global_duration: f64,
    /// Duration of a global Rydberg pulse (µs).
    pub rydberg_duration: f64,
    /// Duration of an atom transfer between layers (µs).
    pub transfer_duration: f64,
    /// Single-qubit (Raman) gate fidelity.
    pub fidelity_1q: f64,
    /// Two-qubit CZ fidelity.
    pub fidelity_cz: f64,
    /// Three-qubit CCZ fidelity (paper §8.4 sweeps this; default 0.98).
    pub fidelity_ccz: f64,
    /// Atom-transfer success probability.
    pub fidelity_transfer: f64,
    /// Per-µm movement fidelity cost (heating); success ≈ exp(-d·this).
    pub movement_loss_per_um: f64,
    /// Qubit coherence time T2 (µs) — idle decoherence reference.
    pub t2_coherence: f64,
}

impl FpqaParams {
    /// Rubidium-atom defaults from the literature the paper configures
    /// against ([26, 83]).
    pub fn rubidium() -> Self {
        FpqaParams {
            min_trap_distance: 5.0,
            rydberg_radius: 6.0,
            max_transfer_distance: 5.0,
            movement_speed: 0.55,
            shuttle_overhead: 10.0,
            raman_local_duration: 2.0,
            raman_global_duration: 1.0,
            rydberg_duration: 0.4,
            transfer_duration: 15.0,
            fidelity_1q: 0.9997,
            fidelity_cz: 0.995,
            fidelity_ccz: 0.98,
            fidelity_transfer: 0.999,
            movement_loss_per_um: 1e-5,
            t2_coherence: 1_500_000.0, // 1.5 s
        }
    }

    /// Returns a copy with a different CCZ fidelity (Fig. 10c sweep).
    pub fn with_ccz_fidelity(mut self, fidelity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fidelity),
            "fidelity must be in (0, 1], got {fidelity}"
        );
        self.fidelity_ccz = fidelity;
        self
    }

    /// Time to move an AOD row/column by `distance` µm, including ramps.
    pub fn shuttle_time(&self, distance: f64) -> f64 {
        self.shuttle_overhead + distance.abs() / self.movement_speed
    }

    /// Success probability of a shuttle over `distance` µm.
    pub fn shuttle_fidelity(&self, distance: f64) -> f64 {
        (-distance.abs() * self.movement_loss_per_um).exp()
    }

    /// Fidelity of one Rydberg interaction group of the given size
    /// (2 ⇒ CZ, 3 ⇒ CCZ, larger groups extrapolate multiplicatively).
    pub fn rydberg_group_fidelity(&self, group_size: usize) -> f64 {
        match group_size {
            0 | 1 => 1.0,
            2 => self.fidelity_cz,
            3 => self.fidelity_ccz,
            n => {
                // CnZ for n ≥ 3 controls: degrade by the CCZ/CZ ratio per
                // extra atom (conservative extrapolation).
                let extra = (n - 3) as f64;
                self.fidelity_ccz * (self.fidelity_ccz / self.fidelity_cz).powf(extra)
            }
        }
    }

    /// Idle-decoherence survival factor for `num_qubits` qubits over
    /// `duration` µs: `exp(-n·t/T2)`.
    pub fn decoherence_factor(&self, num_qubits: usize, duration: f64) -> f64 {
        (-(num_qubits as f64) * duration / self.t2_coherence).exp()
    }
}

impl Default for FpqaParams {
    fn default() -> Self {
        FpqaParams::rubidium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        let p = FpqaParams::default();
        assert!(p.min_trap_distance >= 5.0 && p.min_trap_distance <= 10.0);
        assert!(p.fidelity_cz > p.fidelity_ccz);
        assert!(p.rydberg_duration < p.transfer_duration);
        assert!((0.0..1.0).contains(&p.movement_loss_per_um));
    }

    #[test]
    fn shuttle_time_increases_with_distance() {
        let p = FpqaParams::default();
        assert!(p.shuttle_time(100.0) > p.shuttle_time(10.0));
        assert!(p.shuttle_time(0.0) == p.shuttle_overhead);
        assert_eq!(p.shuttle_time(-20.0), p.shuttle_time(20.0));
    }

    #[test]
    fn fidelities_bounded() {
        let p = FpqaParams::default();
        for d in [0.0, 5.0, 500.0] {
            let f = p.shuttle_fidelity(d);
            assert!((0.0..=1.0).contains(&f));
        }
        for n in 0..6 {
            let f = p.rydberg_group_fidelity(n);
            assert!((0.0..=1.0).contains(&f), "group {n} fidelity {f}");
        }
    }

    #[test]
    fn group_fidelity_monotone_in_size() {
        let p = FpqaParams::default();
        assert!(p.rydberg_group_fidelity(2) > p.rydberg_group_fidelity(3));
        assert!(p.rydberg_group_fidelity(3) > p.rydberg_group_fidelity(4));
    }

    #[test]
    fn ccz_sweep() {
        let p = FpqaParams::default().with_ccz_fidelity(0.9916);
        assert_eq!(p.rydberg_group_fidelity(3), 0.9916);
    }

    #[test]
    fn decoherence_factor_shape() {
        let p = FpqaParams::default();
        assert!(p.decoherence_factor(10, 0.0) == 1.0);
        assert!(p.decoherence_factor(10, 1000.0) < 1.0);
        assert!(p.decoherence_factor(20, 1000.0) < p.decoherence_factor(10, 1000.0));
    }
}
