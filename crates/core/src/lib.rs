//! **weaver-core** — the Weaver retargetable compiler (the paper's primary
//! contribution): the wOptimizer pass pipeline, wQasm code generation, and
//! the wChecker equivalence checker.
//!
//! * [`backend`] — the retargetable [`Backend`] trait, the per-target pass
//!   manager, and the [`BackendRegistry`] every dispatch site goes through,
//! * [`frontend`] — the mirror-image [`Frontend`] trait and
//!   [`FrontendRegistry`]: pluggable workload ingestion (DIMACS/WCNF,
//!   max-cut edge lists, direct wQasm) into the unified [`Workload`] IR,
//! * [`cache`] — content hashing (BLAKE2s) and the shared compilation
//!   memo store threaded through codegen and the checker,
//! * [`coloring`] — clause coloring via DSatur (§5.2, Algorithm 1),
//! * [`plan`] — site geometry and parallel shuttle batching (§5.3,
//!   Algorithm 2),
//! * [`compress`] — 3-qubit gate compression (§5.4, Fig. 7),
//! * [`codegen`] — annotated wQasm + pulse-schedule emission,
//! * [`checker`] — the wChecker (§6, Fig. 9),
//! * [`pipeline`] — the retargetable entry point ([`Weaver`]).
//!
//! # Example
//!
//! Compile a benchmark down both paths and verify the FPQA output:
//!
//! ```
//! use weaver_core::Weaver;
//! use weaver_sat::generator;
//! use weaver_superconducting::CouplingMap;
//!
//! let formula = generator::instance(20, 1);
//! let weaver = Weaver::new();
//!
//! let fpqa = weaver.compile_fpqa(&formula);
//! assert!(weaver.verify(&fpqa, &formula).passed());
//!
//! let sc = weaver.compile_superconducting(&formula, &CouplingMap::ibm_washington());
//! assert!(fpqa.metrics.eps > sc.metrics.eps);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod checker;
pub mod codegen;
pub mod coloring;
pub mod compress;
pub mod frontend;
pub mod pipeline;
pub mod plan;

pub use backend::{
    Backend, BackendError, BackendInfo, BackendRegistry, CompileOutput, CompiledArtifact, PassStat,
};
pub use cache::{CacheHandle, CacheStats, Digest, Fingerprint};
pub use checker::{check, check_with_cache, CheckReport};
pub use codegen::{CodegenOptions, CompiledFpqa};
pub use frontend::{
    Frontend, FrontendError, FrontendInfo, FrontendRegistry, Workload, WorkloadKind,
};
pub use pipeline::{FpqaResult, Metrics, SuperconductingResult, Weaver};
