//! The retargetable compilation pipeline (paper Fig. 3).
//!
//! One entry point, many backends: a Max-3SAT workload is lowered to a
//! hardware-agnostic native circuit and dispatched through the
//! [`BackendRegistry`]. The FPQA target
//! runs the wOptimizer (coloring → shuttling → compression) and emits
//! annotated wQasm plus a pulse schedule (verified by the wChecker), the
//! superconducting target routes through the SABRE transpiler onto a
//! coupling map, and the simulator target executes the native circuit on
//! the ideal state-vector simulator. [`Weaver::compile_target`] reaches any
//! of them by name; [`Weaver::compile_fpqa`] and
//! [`Weaver::compile_superconducting`] remain as thin shims over the same
//! trait-dispatched path.

use crate::backend::{
    Backend as _, BackendError, BackendRegistry, CompileOutput, CompiledArtifact, FpqaBackend,
    SuperconductingBackend,
};
use crate::checker::{self, CheckReport};
use crate::codegen::{CodegenOptions, CompiledFpqa};
use weaver_circuit::{native, Circuit, NativeBasis};
use weaver_fpqa::{FpqaParams, PulseSchedule};
use weaver_sat::{qaoa, Formula};
use weaver_superconducting::{CouplingMap, SuperconductingParams, TranspileResult};
use weaver_wqasm::Program;

/// The paper's evaluation metrics for one compilation (§8.1).
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Wall-clock compilation time in seconds.
    pub compilation_seconds: f64,
    /// Estimated execution time of one shot in µs.
    pub execution_micros: f64,
    /// Estimated probability of success.
    pub eps: f64,
    /// Number of laser pulses (FPQA) or gates (superconducting).
    pub pulses: usize,
    /// Number of atom-motion operations (FPQA only; 0 for superconducting).
    pub motion_ops: usize,
    /// Internal work-step counter (complexity instrumentation, Fig. 10a).
    pub steps: u64,
}

impl Metrics {
    /// The metrics of an FPQA pulse schedule — the one shared constructor
    /// behind the Weaver pipeline and every baseline compiler (they
    /// previously each hand-rolled the same five fields).
    pub fn for_schedule(
        schedule: &PulseSchedule,
        params: &FpqaParams,
        num_atoms: usize,
        compilation_seconds: f64,
        steps: u64,
    ) -> Metrics {
        Metrics {
            compilation_seconds,
            execution_micros: schedule.duration(params),
            eps: weaver_fpqa::eps(schedule, params, num_atoms),
            pulses: schedule.pulse_count(),
            motion_ops: schedule.motion_count(),
            steps,
        }
    }

    /// The metrics of a routed superconducting circuit.
    pub fn for_transpiled(result: &TranspileResult, compilation_seconds: f64) -> Metrics {
        Metrics {
            compilation_seconds,
            execution_micros: result.execution_time,
            eps: result.eps,
            pulses: result.circuit.gate_count(),
            motion_ops: 0,
            steps: result.steps,
        }
    }
}

/// Result of the FPQA path.
#[derive(Clone, Debug)]
pub struct FpqaResult {
    /// The compiled program, schedule, and logical circuit.
    pub compiled: CompiledFpqa,
    /// Evaluation metrics.
    pub metrics: Metrics,
}

/// Result of the superconducting path.
#[derive(Clone, Debug)]
pub struct SuperconductingResult {
    /// The routed physical circuit.
    pub circuit: Circuit,
    /// SWAPs inserted by routing.
    pub swap_count: usize,
    /// Evaluation metrics.
    pub metrics: Metrics,
}

/// The Weaver retargetable compiler.
///
/// # Examples
///
/// ```
/// use weaver_core::pipeline::Weaver;
/// use weaver_sat::generator;
///
/// let formula = generator::instance(20, 1);
/// let weaver = Weaver::new();
/// let fpqa = weaver.compile_fpqa(&formula);
/// assert!(fpqa.metrics.eps > 0.0);
/// let report = weaver.verify(&fpqa, &formula);
/// assert!(report.passed(), "{:?}", report.errors);
/// ```
#[derive(Clone, Debug)]
pub struct Weaver {
    /// FPQA hardware parameters.
    pub fpqa_params: FpqaParams,
    /// wOptimizer options.
    pub options: CodegenOptions,
    /// Superconducting backend parameters.
    pub superconducting_params: SuperconductingParams,
}

impl Weaver {
    /// A compiler with default (Rubidium / IBM-Eagle) parameters.
    pub fn new() -> Self {
        Weaver {
            fpqa_params: FpqaParams::default(),
            options: CodegenOptions::default(),
            superconducting_params: SuperconductingParams::default(),
        }
    }

    /// Replaces the FPQA parameters (e.g. for the Fig. 10c CCZ sweep).
    pub fn with_fpqa_params(mut self, params: FpqaParams) -> Self {
        self.fpqa_params = params;
        self
    }

    /// Replaces the wOptimizer options (ablation switches).
    pub fn with_options(mut self, options: CodegenOptions) -> Self {
        self.options = options;
        self
    }

    /// Compiles a Max-3SAT formula for the target resolved from `name` by
    /// the [global registry](BackendRegistry::global) — a registered name
    /// or alias (`fpqa`, `superconducting`/`sc`, `simulator`/`sim`, the
    /// `sc:*` device family) or a parameterized device like
    /// `sc:grid:<w>x<h>`, minted on demand. To dispatch to a custom
    /// backend, build your own [`BackendRegistry`], `register` it, and call
    /// [`crate::backend::Backend::compile`] on the looked-up entry (see the
    /// module example in [`crate::backend`]).
    ///
    /// # Errors
    ///
    /// An unknown target name, or a workload the target cannot hold (see
    /// [`BackendInfo::max_qubits`](crate::backend::BackendInfo::max_qubits)).
    ///
    /// # Examples
    ///
    /// ```
    /// use weaver_core::Weaver;
    /// use weaver_sat::generator;
    ///
    /// let formula = generator::instance(10, 1);
    /// let weaver = Weaver::new();
    /// for target in ["fpqa", "sc", "simulator", "sc:eagle", "sc:grid:3x4"] {
    ///     let out = weaver.compile_target(target, &formula).unwrap();
    ///     assert!(out.metrics.eps > 0.0, "{target}");
    /// }
    /// assert!(weaver.compile_target("ion-trap", &formula).is_err());
    /// ```
    pub fn compile_target(
        &self,
        name: &str,
        formula: &Formula,
    ) -> Result<CompileOutput, BackendError> {
        self.compile_target_cached(name, formula, None)
    }

    /// Like [`Weaver::compile_target`], threading a shared compilation
    /// cache through the backend's passes. Output is byte-identical with
    /// and without a cache; only [`Metrics::compilation_seconds`] may
    /// differ.
    pub fn compile_target_cached(
        &self,
        name: &str,
        formula: &Formula,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        let backend = BackendRegistry::global().resolve(name)?;
        backend.compile(self, formula, cache)
    }

    /// Runs the producing backend's verify hook on a [`CompileOutput`]
    /// (dispatched by [`CompileOutput::backend`] through the global
    /// registry): `Some(report)` on the FPQA path (the wChecker), `None`
    /// for targets without a checker. Parameterized `sc:*` devices are
    /// deliberately *not* re-minted here: the only mintable backend kind
    /// ([`SuperconductingBackend`]) has no verify hook, and minting one
    /// eagerly rebuilds the coupling map's all-pairs distance table just
    /// to call the default `None`. For a backend living only in a local
    /// registry, call [`crate::backend::Backend::verify`] on it directly.
    pub fn verify_output(
        &self,
        output: &CompileOutput,
        formula: &Formula,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> Option<CheckReport> {
        BackendRegistry::global()
            .get(&output.backend)
            .and_then(|backend| backend.verify(self, output, formula, cache))
    }

    /// Compiles any frontend-produced [`Workload`](crate::frontend::Workload)
    /// for the target resolved
    /// from `name` by the [global registry](BackendRegistry::global).
    /// Formula workloads take exactly the [`Weaver::compile_target`] path;
    /// circuit workloads dispatch through
    /// [`Backend::compile_circuit`](crate::backend::Backend::compile_circuit)
    /// and are rejected with a typed
    /// [`UnsupportedWorkload`](crate::backend::BackendErrorKind::UnsupportedWorkload)
    /// error by targets that only accept formulas (the FPQA wOptimizer).
    ///
    /// # Errors
    ///
    /// An unknown target name, a register the target cannot hold, or a
    /// circuit workload sent to a formula-only target.
    ///
    /// # Examples
    ///
    /// ```
    /// use weaver_core::{FrontendRegistry, Weaver, Workload};
    ///
    /// let registry = FrontendRegistry::global();
    /// let workload = registry
    ///     .get("dimacs")
    ///     .unwrap()
    ///     .parse("p cnf 2 2\n1 2 0\n-1 -2 0\n")
    ///     .unwrap();
    /// let weaver = Weaver::new();
    /// let out = weaver.compile_workload("simulator", &workload).unwrap();
    /// assert!(out.metrics.eps > 0.0);
    /// ```
    pub fn compile_workload(
        &self,
        name: &str,
        workload: &crate::frontend::Workload,
    ) -> Result<CompileOutput, BackendError> {
        self.compile_workload_cached(name, workload, None)
    }

    /// Like [`Weaver::compile_workload`], threading a shared compilation
    /// cache through the backend's passes.
    pub fn compile_workload_cached(
        &self,
        name: &str,
        workload: &crate::frontend::Workload,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        let backend = BackendRegistry::global().resolve(name)?;
        backend.compile_workload(self, workload, cache)
    }

    /// Workload-aware twin of [`Weaver::verify_output`]: formula workloads
    /// run the producing backend's verify hook (the wChecker on the FPQA
    /// path), circuit workloads have no formula-level checker and return
    /// `None`.
    pub fn verify_workload(
        &self,
        output: &CompileOutput,
        workload: &crate::frontend::Workload,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> Option<CheckReport> {
        match workload {
            crate::frontend::Workload::MaxSat(formula) => {
                self.verify_output(output, formula, cache)
            }
            crate::frontend::Workload::Circuit(_) => None,
        }
    }

    /// Compiles a Max-3SAT formula down the FPQA path (wOptimizer). Thin
    /// shim over the trait-dispatched [`FpqaBackend`]; output is
    /// byte-identical to pre-registry releases.
    pub fn compile_fpqa(&self, formula: &Formula) -> FpqaResult {
        self.compile_fpqa_cached(formula, None)
    }

    /// Like [`Weaver::compile_fpqa`], but threading a shared compilation
    /// cache through codegen (memoized clause plans). Output is
    /// byte-identical with and without a cache; only
    /// [`Metrics::compilation_seconds`] may differ.
    pub fn compile_fpqa_cached(
        &self,
        formula: &Formula,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> FpqaResult {
        let output = FpqaBackend
            .compile(self, formula, cache)
            .expect("the FPQA backend accepts any register");
        match output.artifact {
            CompiledArtifact::Fpqa(compiled) => FpqaResult {
                compiled,
                metrics: output.metrics,
            },
            _ => unreachable!("FpqaBackend emits FPQA artifacts"),
        }
    }

    /// Compiles a Max-3SAT formula down the superconducting path (QAOA
    /// lowering + SABRE transpilation onto `coupling`). Thin shim over the
    /// trait-dispatched [`SuperconductingBackend`].
    ///
    /// # Panics
    ///
    /// Panics if the formula needs more qubits than the device offers.
    pub fn compile_superconducting(
        &self,
        formula: &Formula,
        coupling: &CouplingMap,
    ) -> SuperconductingResult {
        let output = SuperconductingBackend::with_coupling(coupling.clone())
            .compile(self, formula, None)
            .unwrap_or_else(|e| panic!("{e}"));
        match output.artifact {
            CompiledArtifact::Superconducting {
                circuit,
                swap_count,
            } => SuperconductingResult {
                circuit,
                swap_count,
                metrics: output.metrics,
            },
            _ => unreachable!("SuperconductingBackend emits routed circuits"),
        }
    }

    /// Lowers an arbitrary circuit to the hardware-agnostic native basis
    /// (`{U3, CZ}` + `CCZ` for the FPQA path) — paper Fig. 3, stage (a).
    pub fn nativize(&self, circuit: &Circuit, fpqa: bool) -> Circuit {
        let basis = if fpqa {
            NativeBasis::U3CzCcz
        } else {
            NativeBasis::U3Cz
        };
        native::nativize(circuit, basis)
    }

    /// Runs the wChecker on an FPQA compilation result, comparing against
    /// the QAOA reference circuit when the register is small enough.
    pub fn verify(&self, result: &FpqaResult, formula: &Formula) -> CheckReport {
        self.verify_cached(result, formula, None)
    }

    /// Like [`Weaver::verify`], but consulting a shared cache for memoized
    /// per-annotation device traces: re-checking an unchanged program skips
    /// the pulse re-simulation (see [`checker::check_with_cache`]).
    pub fn verify_cached(
        &self,
        result: &FpqaResult,
        formula: &Formula,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> CheckReport {
        self.verify_program(&result.compiled.program, formula, cache)
    }

    /// Runs the wChecker on any annotated wQasm program claiming to
    /// implement `formula`'s QAOA circuit (the [`FpqaBackend`] verify hook).
    pub(crate) fn verify_program(
        &self,
        program: &Program,
        formula: &Formula,
        cache: Option<&crate::cache::CacheHandle>,
    ) -> CheckReport {
        let reference = if formula.num_vars() <= weaver_simulator::UnitaryBuilder::MAX_QUBITS {
            Some(qaoa::build_circuit(formula, &self.options.qaoa, false))
        } else {
            None
        };
        checker::check_with_cache(program, &self.fpqa_params, reference.as_ref(), cache)
    }
}

impl Default for Weaver {
    fn default() -> Self {
        Weaver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::generator;

    #[test]
    fn pipeline_types_are_send_and_sync() {
        // The batch engine shares one `Weaver` per job and one cache
        // handle across worker threads; losing these bounds (e.g. by
        // introducing hidden `Rc`/`RefCell` state) must fail to compile.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Weaver>();
        assert_send_sync::<FpqaResult>();
        assert_send_sync::<SuperconductingResult>();
        assert_send_sync::<crate::cache::CacheHandle>();
        assert_send_sync::<crate::codegen::CompiledFpqa>();
        assert_send_sync::<crate::checker::CheckReport>();
    }

    #[test]
    fn fpqa_path_end_to_end() {
        let f = generator::instance(20, 1);
        let weaver = Weaver::new();
        let out = weaver.compile_fpqa(&f);
        assert!(out.metrics.eps > 0.0 && out.metrics.eps <= 1.0);
        assert!(out.metrics.execution_micros > 0.0);
        assert!(out.metrics.pulses > 0);
        assert!(out.metrics.motion_ops > 0);
        let report = weaver.verify(&out, &f);
        assert!(report.passed(), "{:?}", report.errors);
    }

    #[test]
    fn superconducting_path_end_to_end() {
        let f = generator::instance(20, 2);
        let weaver = Weaver::new();
        let coupling = CouplingMap::ibm_washington();
        let out = weaver.compile_superconducting(&f, &coupling);
        assert!(out.swap_count > 0, "QAOA on heavy-hex must route");
        assert!(out.metrics.eps >= 0.0 && out.metrics.eps <= 1.0);
        assert!(weaver_superconducting::sabre::respects_coupling(
            &out.circuit,
            &coupling
        ));
    }

    #[test]
    fn low_ccz_fidelity_disables_compression() {
        let f = generator::instance(20, 3);
        let weaver = Weaver::new().with_fpqa_params(FpqaParams::default().with_ccz_fidelity(0.90));
        let out = weaver.compile_fpqa(&f);
        // Ladder mode: no CCZ pulses at all, and far more Rydberg slots
        // (≈10 per color instead of 4) plus more atom motion.
        let baseline = Weaver::new().compile_fpqa(&f);
        let rydbergs = |r: &FpqaResult| {
            r.compiled
                .schedule
                .ops()
                .iter()
                .filter(|o| matches!(o, weaver_fpqa::PulseOp::Rydberg { .. }))
                .count()
        };
        let has_ccz = |r: &FpqaResult| {
            r.compiled.schedule.ops().iter().any(|o| {
                matches!(o, weaver_fpqa::PulseOp::Rydberg { groups }
                    if groups.iter().any(|g| g.len() == 3))
            })
        };
        assert!(rydbergs(&out) > rydbergs(&baseline));
        assert!(!has_ccz(&out), "ladder mode must not use CCZ");
        assert!(has_ccz(&baseline), "compressed mode must use CCZ");
        assert!(out.metrics.motion_ops > baseline.metrics.motion_ops);
    }

    #[test]
    fn fpqa_beats_superconducting_eps_at_scale() {
        // The paper's headline (Fig. 12b): Weaver's EPS exceeds the
        // superconducting baseline already at 20 variables.
        let f = generator::instance(20, 1);
        let weaver = Weaver::new();
        let fpqa = weaver.compile_fpqa(&f);
        let sc = weaver.compile_superconducting(&f, &CouplingMap::ibm_washington());
        assert!(
            fpqa.metrics.eps > sc.metrics.eps,
            "FPQA {} ≤ SC {}",
            fpqa.metrics.eps,
            sc.metrics.eps
        );
    }
}
