//! Geometric execution plan and shuttle scheduling (paper §5.3,
//! Algorithm 2).
//!
//! Layout model (a concrete realization of the paper's zone scheme,
//! documented in DESIGN.md): every logical qubit owns a *home* SLM trap on
//! a widely spaced baseline row. A 3-literal clause executes at a
//! *triangle site* around its target's home trap (two control traps at
//! Rydberg distance, equilateral — the `CCZ` geometry of §5.4); the
//! control–control `CZ` then runs at a *pair site* lifted away from the
//! target ("the control qubits are shuttled apart from the target"). Two-
//! literal clauses use a *pair-2 site* next to the host variable's home.
//! All sites of concurrently executing clauses are far apart, so one global
//! Rydberg pulse drives every clause of a color at once.
//!
//! Atom motion between sites is planned as [`AtomMove`]s and batched by
//! [`batch_moves`] — the paper's Algorithm 2: moves that preserve relative
//! order ride one AOD row in parallel.

use weaver_fpqa::Point;

/// Site geometry constants (all µm).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteLayout {
    /// Home-trap spacing along the baseline (far above the Rydberg radius).
    pub home_spacing: f64,
    /// Side of the equilateral interaction triangle (within the Rydberg
    /// radius, above the trap minimum distance).
    pub interaction_distance: f64,
    /// Vertical lift separating the pair site from the triangle site.
    pub pair_lift: f64,
}

impl SiteLayout {
    /// A layout consistent with the default Rubidium parameters
    /// (min distance 5 µm < 5.5 µm ≤ Rydberg radius 6 µm; homes 30 µm).
    pub fn for_default_params() -> Self {
        SiteLayout {
            home_spacing: 30.0,
            interaction_distance: 5.5,
            pair_lift: 20.0,
        }
    }

    /// Derives a legal layout from arbitrary device parameters: the
    /// interaction distance sits between the trap minimum and the Rydberg
    /// radius, homes five radii apart, the pair lift at ~3.3 radii.
    ///
    /// # Panics
    ///
    /// Panics if `rydberg_radius ≤ min_trap_distance` — no interaction
    /// distance can then satisfy both constraints.
    pub fn for_params(params: &weaver_fpqa::FpqaParams) -> Self {
        assert!(
            params.rydberg_radius > params.min_trap_distance,
            "Rydberg radius {} must exceed the trap minimum {}",
            params.rydberg_radius,
            params.min_trap_distance
        );
        let interaction = (params.rydberg_radius * 0.92).max(params.min_trap_distance * 1.02);
        SiteLayout {
            home_spacing: params.rydberg_radius * 5.0,
            interaction_distance: interaction.min(params.rydberg_radius),
            pair_lift: params.rydberg_radius * 10.0 / 3.0,
        }
    }

    /// Height of the equilateral interaction triangle.
    pub fn triangle_height(&self) -> f64 {
        self.interaction_distance * 3f64.sqrt() / 2.0
    }

    /// Home trap of a variable.
    pub fn home(&self, var: usize) -> Point {
        Point::new(self.home_spacing * var as f64, 0.0)
    }

    /// Left control trap of the triangle around target `t`.
    pub fn triangle_left(&self, t: usize) -> Point {
        Point::new(
            self.home_spacing * t as f64 - self.interaction_distance / 2.0,
            self.triangle_height(),
        )
    }

    /// Right control trap of the triangle around target `t`.
    pub fn triangle_right(&self, t: usize) -> Point {
        Point::new(
            self.home_spacing * t as f64 + self.interaction_distance / 2.0,
            self.triangle_height(),
        )
    }

    /// Left trap of the lifted pair site above target `t`.
    pub fn pair_left(&self, t: usize) -> Point {
        Point::new(
            self.home_spacing * t as f64 - self.interaction_distance / 2.0,
            self.triangle_height() + self.pair_lift,
        )
    }

    /// Right trap of the lifted pair site above target `t`.
    pub fn pair_right(&self, t: usize) -> Point {
        Point::new(
            self.home_spacing * t as f64 + self.interaction_distance / 2.0,
            self.triangle_height() + self.pair_lift,
        )
    }

    /// Guest trap next to host variable `h`'s home (2-literal clauses and
    /// the uncompressed CNOT-ladder visits).
    pub fn guest(&self, host: usize) -> Point {
        Point::new(
            self.home_spacing * host as f64 - self.interaction_distance,
            0.0,
        )
    }
}

/// One planned atom move between SLM traps (via a transient AOD pickup).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AtomMove {
    /// The logical qubit being moved.
    pub qubit: usize,
    /// Source trap position.
    pub from: Point,
    /// Destination trap position.
    pub to: Point,
}

impl AtomMove {
    /// Total rectilinear travel distance (column move + row move).
    pub fn distance(&self) -> f64 {
        (self.to.x - self.from.x).abs() + (self.to.y - self.from.y).abs()
    }
}

/// Batches moves for parallel execution on a shared AOD row — the paper's
/// Algorithm 2. Two moves share a batch iff they start on the same row,
/// end on the same row, their horizontal order is preserved, and both
/// source and destination spacings respect `min_gap`. With
/// `parallel = false` (ablation) every move is its own batch.
pub fn batch_moves(moves: &[AtomMove], min_gap: f64, parallel: bool) -> Vec<Vec<AtomMove>> {
    if !parallel {
        return moves.iter().map(|m| vec![*m]).collect();
    }
    // Group by (from.y, to.y) rows; keys ordered for determinism.
    let mut groups: Vec<((i64, i64), Vec<AtomMove>)> = Vec::new();
    for m in moves {
        let key = (to_key(m.from.y), to_key(m.to.y));
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, g)) => g.push(*m),
            None => groups.push((key, vec![*m])),
        }
    }
    let mut batches = Vec::new();
    for (_, mut group) in groups {
        group.sort_by(|a, b| a.from.x.total_cmp(&b.from.x));
        // Greedy order-preserving batching: scan in source order, keep a
        // batch while destinations stay increasing with enough spacing.
        let mut current: Vec<AtomMove> = Vec::new();
        for m in group {
            let ok = match current.last() {
                None => true,
                Some(prev) => {
                    m.to.x > prev.to.x
                        && m.to.x - prev.to.x >= min_gap
                        && m.from.x - prev.from.x >= min_gap
                }
            };
            if ok {
                current.push(m);
            } else {
                batches.push(std::mem::take(&mut current));
                current.push(m);
            }
        }
        if !current.is_empty() {
            batches.push(current);
        }
    }
    batches
}

/// Orders the column shuttles of one batch so no intermediate state crosses
/// or crowds a neighbour: right-movers are emitted rightmost-first, then
/// left-movers leftmost-first. Returns indices into the batch.
pub fn safe_shuttle_order(batch: &[AtomMove]) -> Vec<usize> {
    let mut right: Vec<usize> = (0..batch.len())
        .filter(|&i| batch[i].to.x >= batch[i].from.x)
        .collect();
    right.sort_by(|&a, &b| batch[b].from.x.total_cmp(&batch[a].from.x));
    let mut left: Vec<usize> = (0..batch.len())
        .filter(|&i| batch[i].to.x < batch[i].from.x)
        .collect();
    left.sort_by(|&a, &b| batch[a].from.x.total_cmp(&batch[b].from.x));
    right.into_iter().chain(left).collect()
}

fn to_key(v: f64) -> i64 {
    (v * 1000.0).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(q: usize, fx: f64, fy: f64, tx: f64, ty: f64) -> AtomMove {
        AtomMove {
            qubit: q,
            from: Point::new(fx, fy),
            to: Point::new(tx, ty),
        }
    }

    #[test]
    fn layout_respects_physical_limits() {
        let l = SiteLayout::for_default_params();
        let t = 3;
        // Triangle is equilateral at the interaction distance.
        let a = l.triangle_left(t);
        let b = l.triangle_right(t);
        let c = l.home(t);
        assert!((a.distance(b) - l.interaction_distance).abs() < 1e-9);
        assert!((a.distance(c) - l.interaction_distance).abs() < 1e-9);
        assert!((b.distance(c) - l.interaction_distance).abs() < 1e-9);
        // Pair site is far from the target's home.
        assert!(l.pair_left(t).distance(c) > 10.0);
        // Guest site is close to the host, far from the host's neighbours.
        assert!((l.guest(t).distance(l.home(t)) - l.interaction_distance).abs() < 1e-9);
        assert!(l.guest(t).distance(l.home(t - 1)) > 10.0);
    }

    #[test]
    fn order_preserving_moves_batch_together() {
        // Two clause's controls all moving home-row → triangle-row, order
        // preserved.
        let l = SiteLayout::for_default_params();
        let h = l.triangle_height();
        let moves = vec![
            mv(0, 0.0, 0.0, 57.25, h),
            mv(2, 60.0, 0.0, 62.75, h),
            mv(3, 90.0, 0.0, 147.25, h),
            mv(5, 150.0, 0.0, 152.75, h),
        ];
        let batches = batch_moves(&moves, 5.0, true);
        assert_eq!(batches.len(), 1, "{batches:?}");
        assert_eq!(batches[0].len(), 4);
    }

    #[test]
    fn order_violation_splits_batches() {
        let moves = vec![
            mv(0, 0.0, 0.0, 100.0, 5.0),
            mv(1, 30.0, 0.0, 50.0, 5.0), // destination order flips
        ];
        let batches = batch_moves(&moves, 5.0, true);
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn different_rows_never_share_a_batch() {
        let moves = vec![mv(0, 0.0, 0.0, 10.0, 5.0), mv(1, 30.0, 2.0, 40.0, 5.0)];
        let batches = batch_moves(&moves, 5.0, true);
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn sequential_mode_isolates_every_move() {
        let moves = vec![
            mv(0, 0.0, 0.0, 10.0, 5.0),
            mv(1, 30.0, 0.0, 40.0, 5.0),
            mv(2, 60.0, 0.0, 70.0, 5.0),
        ];
        assert_eq!(batch_moves(&moves, 5.0, false).len(), 3);
        assert_eq!(batch_moves(&moves, 5.0, true).len(), 1);
    }

    #[test]
    fn tight_destinations_split() {
        let moves = vec![
            mv(0, 0.0, 0.0, 10.0, 5.0),
            mv(1, 30.0, 0.0, 12.0, 5.0), // only 2 µm right of the previous
        ];
        let batches = batch_moves(&moves, 5.0, true);
        assert_eq!(batches.len(), 2);
    }

    #[test]
    fn shuttle_order_right_movers_first_descending() {
        let batch = vec![
            mv(0, 0.0, 0.0, 20.0, 0.0),  // right
            mv(1, 30.0, 0.0, 50.0, 0.0), // right
            mv(2, 60.0, 0.0, 55.0, 0.0), // left
            mv(3, 90.0, 0.0, 70.0, 0.0), // left
        ];
        let order = safe_shuttle_order(&batch);
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn move_distance_is_rectilinear() {
        let m = mv(0, 0.0, 0.0, 3.0, 4.0);
        assert!((m.distance() - 7.0).abs() < 1e-12);
    }
}
