//! Content hashing and the compilation-cache handle threaded through the
//! pipeline (`weaver-engine`'s artifact cache builds on these primitives).
//!
//! Two things live here:
//!
//! * [`Blake2s`] / [`Digest`] / [`Fingerprint`] — a dependency-free
//!   BLAKE2s-256 implementation used to content-address compilation
//!   artifacts (canonical formula ⊕ target parameters ⊕ options ⊕ compiler
//!   version) and checker device traces,
//! * [`CacheHandle`] — a cheaply clonable, thread-safe memo store shared by
//!   concurrent compilations: the wChecker's per-annotation device-state
//!   traces (so re-checking an unchanged annotation stream skips pulse
//!   re-simulation) and the wOptimizer's per-clause execution plans.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Compiler version folded into every artifact key, so a new release never
/// serves artifacts produced by an old one.
pub const COMPILER_VERSION: &str = env!("CARGO_PKG_VERSION");

// ---------------------------------------------------------------------------
// BLAKE2s-256
// ---------------------------------------------------------------------------

/// A 256-bit content digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex rendering (cache file names, JSONL records).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

/// Streaming BLAKE2s-256 hasher (RFC 7693, unkeyed, sequential mode).
#[derive(Clone)]
pub struct Blake2s {
    h: [u32; 8],
    t: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Blake2s {
    /// A fresh hasher.
    pub fn new() -> Self {
        let mut h = IV;
        // Parameter block: digest_length = 32, key_length = 0, fanout = 1,
        // depth = 1.
        h[0] ^= 0x0101_0020;
        Blake2s {
            h,
            t: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            if self.buf_len == 64 {
                // Only compress a full buffer once more input exists — the
                // final block must be compressed with the last-block flag.
                self.t += 64;
                let block = self.buf;
                self.compress(&block, false);
                self.buf_len = 0;
            }
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        self.t += self.buf_len as u64;
        let mut block = [0u8; 64];
        block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        self.compress(&block, true);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64], last: bool) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut v = [0u32; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t as u32;
        v[13] ^= (self.t >> 32) as u32;
        if last {
            v[14] = !v[14];
        }
        #[inline(always)]
        fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(12);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(8);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(7);
        }
        for s in &SIGMA {
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

impl Default for Blake2s {
    fn default() -> Self {
        Blake2s::new()
    }
}

/// A typed writer over [`Blake2s`] for building structured cache keys.
/// Every field write is length- or tag-framed, so adjacent variable-length
/// fields cannot collide by concatenation.
#[derive(Clone, Default)]
pub struct Fingerprint {
    hasher: Blake2s,
}

impl Fingerprint {
    /// A fresh fingerprint builder.
    pub fn new() -> Self {
        Fingerprint::default()
    }

    /// Writes a domain-separation / variant tag.
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.hasher.update(&[t]);
        self
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.hasher.update(&v.to_le_bytes());
        self
    }

    /// Writes a `usize` (as `u64`, portable across word sizes).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Writes an `f64` by bit pattern (distinguishes `-0.0` from `0.0`,
    /// which is exactly what byte-identical artifacts need).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Writes a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.tag(v as u8)
    }

    /// Writes a length-prefixed string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len());
        self.hasher.update(s.as_bytes());
        self
    }

    /// Writes length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.usize(b.len());
        self.hasher.update(b);
        self
    }

    /// Finishes the key.
    pub fn digest(self) -> Digest {
        self.hasher.finalize()
    }
}

// ---------------------------------------------------------------------------
// Shared memo store
// ---------------------------------------------------------------------------

/// One recorded device interaction of a wChecker run, in encounter order.
/// Replaying a trace yields exactly the outcomes a live [`weaver_fpqa::FpqaDevice`]
/// simulation would produce for the same annotation stream.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviceEvent {
    /// A setup annotation (`@slm`, `@aod`, `@bind`) outcome.
    Setup(Result<(), String>),
    /// A motion annotation (`@transfer`, `@shuttle`) outcome.
    Motion(Result<(), String>),
    /// A `@rydberg` interaction-group query outcome.
    Groups(Result<Vec<Vec<usize>>, String>),
}

/// The full device interaction trace of one checker run.
pub type DeviceTrace = Vec<DeviceEvent>;

/// Cache hit/miss counters, snapshotted by [`CacheHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Checker device-trace hits (pulse re-simulation skipped).
    pub checker_hits: u64,
    /// Checker device-trace misses (live simulation recorded).
    pub checker_misses: u64,
    /// Clause-plan memo hits.
    pub plan_hits: u64,
    /// Clause-plan memo misses.
    pub plan_misses: u64,
}

#[derive(Default)]
struct CacheInner {
    device_traces: Mutex<HashMap<Digest, Arc<DeviceTrace>>>,
    clause_plans: Mutex<HashMap<Digest, Arc<crate::codegen::ClausePlan>>>,
    checker_hits: AtomicU64,
    checker_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

/// A cheaply clonable, thread-safe handle to the shared compilation memo
/// store. All clones see the same underlying store; `Default` builds an
/// empty one.
///
/// # Examples
///
/// ```
/// use weaver_core::cache::CacheHandle;
/// use weaver_core::Weaver;
/// use weaver_sat::generator;
///
/// let cache = CacheHandle::new();
/// let weaver = Weaver::new();
/// let f = generator::instance(20, 1);
/// let out = weaver.compile_fpqa_cached(&f, Some(&cache));
/// // First verification records the device trace, the second replays it.
/// assert!(weaver.verify_cached(&out, &f, Some(&cache)).passed());
/// assert!(weaver.verify_cached(&out, &f, Some(&cache)).passed());
/// assert_eq!(cache.stats().checker_hits, 1);
/// ```
#[derive(Clone, Default)]
pub struct CacheHandle {
    inner: Arc<CacheInner>,
}

impl fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheHandle")
            .field("stats", &self.stats())
            .finish()
    }
}

impl CacheHandle {
    /// An empty memo store.
    pub fn new() -> Self {
        CacheHandle::default()
    }

    /// Looks up a recorded checker device trace, counting hit/miss.
    pub fn device_trace(&self, key: &Digest) -> Option<Arc<DeviceTrace>> {
        let found = self.inner.device_traces.lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.inner.checker_hits.fetch_add(1, Ordering::Relaxed),
            None => self.inner.checker_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a checker device trace.
    pub fn store_device_trace(&self, key: Digest, trace: DeviceTrace) {
        self.inner
            .device_traces
            .lock()
            .unwrap()
            .insert(key, Arc::new(trace));
    }

    pub(crate) fn clause_plan(&self, key: &Digest) -> Option<Arc<crate::codegen::ClausePlan>> {
        let found = self.inner.clause_plans.lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.inner.plan_hits.fetch_add(1, Ordering::Relaxed),
            None => self.inner.plan_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    pub(crate) fn store_clause_plan(&self, key: Digest, plan: crate::codegen::ClausePlan) {
        self.inner
            .clause_plans
            .lock()
            .unwrap()
            .insert(key, Arc::new(plan));
    }

    /// A point-in-time snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            checker_hits: self.inner.checker_hits.load(Ordering::Relaxed),
            checker_misses: self.inner.checker_misses.load(Ordering::Relaxed),
            plan_hits: self.inner.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.inner.plan_misses.load(Ordering::Relaxed),
        }
    }
}

/// Hashes the full parameter set of an FPQA backend into `fp` — every field
/// that can influence compilation or checking.
pub fn fingerprint_fpqa_params(fp: &mut Fingerprint, p: &weaver_fpqa::FpqaParams) {
    fp.tag(0xF0);
    fp.f64(p.min_trap_distance)
        .f64(p.rydberg_radius)
        .f64(p.max_transfer_distance)
        .f64(p.movement_speed)
        .f64(p.shuttle_overhead)
        .f64(p.raman_local_duration)
        .f64(p.raman_global_duration)
        .f64(p.rydberg_duration)
        .f64(p.transfer_duration)
        .f64(p.fidelity_1q)
        .f64(p.fidelity_cz)
        .f64(p.fidelity_ccz)
        .f64(p.fidelity_transfer)
        .f64(p.movement_loss_per_um)
        .f64(p.t2_coherence);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        let mut h = Blake2s::new();
        h.update(data);
        h.finalize().to_hex()
    }

    #[test]
    fn blake2s_rfc7693_vectors() {
        // RFC 7693 appendix B ("abc") and the standard empty-input vector.
        assert_eq!(
            hex(b"abc"),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
        assert_eq!(
            hex(b""),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn blake2s_streaming_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        let oneshot = hex(&data);
        for chunk in [1usize, 3, 63, 64, 65, 127, 997] {
            let mut h = Blake2s::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize().to_hex(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn fingerprint_framing_prevents_concat_collisions() {
        let mut a = Fingerprint::new();
        a.str("ab").str("c");
        let mut b = Fingerprint::new();
        b.str("a").str("bc");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn cache_handle_counts_hits_and_misses() {
        let cache = CacheHandle::new();
        let key = Fingerprint::new().digest();
        assert!(cache.device_trace(&key).is_none());
        cache.store_device_trace(key, vec![DeviceEvent::Setup(Ok(()))]);
        assert!(cache.device_trace(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.checker_hits, stats.checker_misses), (1, 1));
    }

    #[test]
    fn clones_share_the_store() {
        let cache = CacheHandle::new();
        let clone = cache.clone();
        let key = Fingerprint::new().digest();
        clone.store_device_trace(key, Vec::new());
        assert!(cache.device_trace(&key).is_some());
    }
}
