//! Clause coloring (paper §5.2, Algorithm 1).
//!
//! Clauses that share no variable can have their cost-Hamiltonian fragments
//! executed in parallel under one global Rydberg pulse. Building the clause
//! conflict graph (edge ⇔ shared variable) turns clustering into graph
//! coloring, solved greedily with DSatur (Brélaz 1979) in `O(N²)`.

use std::collections::HashSet;
use weaver_sat::Formula;

/// The coloring produced by Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClauseColoring {
    /// Color of each clause, indexed by clause position in the formula.
    pub colors: Vec<usize>,
    /// Number of colors used (= number of sequential execution rounds).
    pub num_colors: usize,
}

impl ClauseColoring {
    /// Clause indices of one color, in formula order.
    pub fn clauses_of_color(&self, color: usize) -> Vec<usize> {
        self.colors
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == color)
            .map(|(i, _)| i)
            .collect()
    }

    /// Iterator over color groups `0..num_colors`.
    pub fn groups(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.num_colors).map(|c| self.clauses_of_color(c))
    }
}

/// The clause conflict graph: `adjacency[i]` lists clauses sharing a
/// variable with clause `i`.
pub fn conflict_graph(formula: &Formula) -> Vec<Vec<usize>> {
    let clauses = formula.clauses();
    let n = clauses.len();
    // Index clauses by variable for O(M·k) construction instead of O(M²)
    // pair scans on large formulas.
    let mut by_var: Vec<Vec<usize>> = vec![Vec::new(); formula.num_vars()];
    for (i, c) in clauses.iter().enumerate() {
        for v in c.vars() {
            by_var[v].push(i);
        }
    }
    let mut adjacency: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for bucket in &by_var {
        for (k, &i) in bucket.iter().enumerate() {
            for &j in &bucket[k + 1..] {
                adjacency[i].insert(j);
                adjacency[j].insert(i);
            }
        }
    }
    adjacency
        .into_iter()
        .map(|s| {
            let mut v: Vec<usize> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// Colors the clause conflict graph with DSatur: repeatedly pick the
/// uncolored vertex with the highest saturation degree (number of distinct
/// neighbour colors), tie-broken by degree, and give it the smallest free
/// color.
///
/// # Examples
///
/// ```
/// use weaver_core::coloring::color_clauses;
/// use weaver_sat::generator;
/// let f = generator::instance(20, 1);
/// let coloring = color_clauses(&f);
/// assert!(coloring.num_colors >= 1);
/// ```
pub fn color_clauses(formula: &Formula) -> ClauseColoring {
    let adjacency = conflict_graph(formula);
    dsatur(&adjacency)
}

/// DSatur graph coloring over an adjacency list.
pub fn dsatur(adjacency: &[Vec<usize>]) -> ClauseColoring {
    let n = adjacency.len();
    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; n];
    let mut neighbor_colors: Vec<HashSet<usize>> = vec![HashSet::new(); n];

    for _ in 0..n {
        // Pick uncolored vertex with max saturation, tie-break on degree.
        let v = (0..n)
            .filter(|&v| colors[v] == UNCOLORED)
            .max_by_key(|&v| (neighbor_colors[v].len(), adjacency[v].len()))
            .expect("an uncolored vertex remains");
        // Smallest color not used by neighbours.
        let mut c = 0;
        while neighbor_colors[v].contains(&c) {
            c += 1;
        }
        colors[v] = c;
        for &u in &adjacency[v] {
            neighbor_colors[u].insert(c);
        }
    }

    let num_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
    ClauseColoring { colors, num_colors }
}

/// A naive first-fit greedy coloring in input order — the ablation baseline
/// against DSatur (DESIGN.md §6).
pub fn greedy_first_fit(adjacency: &[Vec<usize>]) -> ClauseColoring {
    let n = adjacency.len();
    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; n];
    for v in 0..n {
        let used: HashSet<usize> = adjacency[v]
            .iter()
            .map(|&u| colors[u])
            .filter(|&c| c != UNCOLORED)
            .collect();
        let mut c = 0;
        while used.contains(&c) {
            c += 1;
        }
        colors[v] = c;
    }
    let num_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
    ClauseColoring { colors, num_colors }
}

/// Checks that no two adjacent vertices share a color.
pub fn is_valid_coloring(adjacency: &[Vec<usize>], coloring: &ClauseColoring) -> bool {
    adjacency.iter().enumerate().all(|(v, neighbors)| {
        neighbors
            .iter()
            .all(|&u| coloring.colors[v] != coloring.colors[u])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::{generator, Clause, Lit};

    /// The paper's running example (Fig. 5): clauses 0 and 1 are disjoint,
    /// clause 2 intersects both.
    fn paper_formula() -> Formula {
        Formula::new(
            6,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(3), Lit::neg(4), Lit::pos(5)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(4), Lit::neg(5)]),
            ],
        )
    }

    #[test]
    fn paper_example_uses_two_colors() {
        let f = paper_formula();
        let coloring = color_clauses(&f);
        assert_eq!(coloring.num_colors, 2);
        assert_eq!(coloring.colors[0], coloring.colors[1]);
        assert_ne!(coloring.colors[0], coloring.colors[2]);
    }

    #[test]
    fn conflict_graph_matches_intersections() {
        let f = paper_formula();
        let g = conflict_graph(&f);
        assert_eq!(g[0], vec![2]);
        assert_eq!(g[1], vec![2]);
        assert_eq!(g[2], vec![0, 1]);
    }

    #[test]
    fn dsatur_valid_on_benchmarks() {
        for variant in 1..=3 {
            let f = generator::instance(20, variant);
            let g = conflict_graph(&f);
            let coloring = dsatur(&g);
            assert!(is_valid_coloring(&g, &coloring), "variant {variant}");
        }
    }

    #[test]
    fn dsatur_no_worse_than_first_fit_on_average() {
        let mut dsatur_total = 0;
        let mut greedy_total = 0;
        for variant in 1..=10 {
            let f = generator::instance(50, variant);
            let g = conflict_graph(&f);
            dsatur_total += dsatur(&g).num_colors;
            greedy_total += greedy_first_fit(&g).num_colors;
        }
        assert!(
            dsatur_total <= greedy_total,
            "DSatur {dsatur_total} vs greedy {greedy_total}"
        );
    }

    #[test]
    fn dsatur_optimal_on_known_graphs() {
        // Triangle needs 3 colors.
        let triangle = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        assert_eq!(dsatur(&triangle).num_colors, 3);
        // Even cycle is 2-chromatic; DSatur is exact on bipartite graphs.
        let c6: Vec<Vec<usize>> = (0..6).map(|i| vec![(i + 5) % 6, (i + 1) % 6]).collect();
        assert_eq!(dsatur(&c6).num_colors, 2);
        // Star graph: 2 colors.
        let mut star = vec![vec![]; 7];
        star[0] = (1..7).collect();
        for leaf in star.iter_mut().skip(1) {
            *leaf = vec![0];
        }
        assert_eq!(dsatur(&star).num_colors, 2);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(dsatur(&[]).num_colors, 0);
        assert_eq!(dsatur(&[vec![]]).num_colors, 1);
    }

    #[test]
    fn groups_partition_clauses() {
        let f = generator::instance(20, 4);
        let coloring = color_clauses(&f);
        let mut seen = vec![false; f.num_clauses()];
        for group in coloring.groups() {
            for idx in group {
                assert!(!seen[idx], "clause {idx} in two groups");
                seen[idx] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn colors_bounded_by_max_degree_plus_one() {
        let f = generator::instance(50, 6);
        let g = conflict_graph(&f);
        let max_deg = g.iter().map(|n| n.len()).max().unwrap_or(0);
        let coloring = dsatur(&g);
        assert!(coloring.num_colors <= max_deg + 1);
    }
}
