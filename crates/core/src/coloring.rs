//! Clause coloring (paper §5.2, Algorithm 1).
//!
//! Clauses that share no variable can have their cost-Hamiltonian fragments
//! executed in parallel under one global Rydberg pulse. Building the clause
//! conflict graph (edge ⇔ shared variable) turns clustering into graph
//! coloring, solved greedily with DSatur (Brélaz 1979).
//!
//! The hot path is tuned for the paper's full-scale sweep (250-variable
//! formulas, ~1000 clauses): the conflict graph is a deduplicated CSR
//! adjacency built by sorting the shared-variable pair list once, DSatur
//! picks its next vertex from a lazy max-heap keyed on (saturation, degree)
//! with per-vertex color bitsets instead of an `O(n)` argmax + `HashSet`
//! per step, and [`ClauseColoring`] precomputes its color groups at
//! construction so `clauses_of_color`/`groups` return slices. The
//! pre-optimization implementations survive as
//! [`conflict_graph_reference`]/[`dsatur_reference`], the oracles for
//! `tests/coloring_equivalence.rs` and the speedup baseline for
//! `figures bench-figures`.

use std::collections::{BinaryHeap, HashSet};
use weaver_sat::Formula;

/// The coloring produced by Algorithm 1.
///
/// Color groups are materialized once at construction (a counting sort of
/// clause indices by color), so group accessors are allocation-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClauseColoring {
    /// Color of each clause, indexed by clause position in the formula.
    pub colors: Vec<usize>,
    /// Number of colors used (= number of sequential execution rounds).
    pub num_colors: usize,
    /// CSR offsets into `group_members`, one row per color.
    group_offsets: Vec<usize>,
    /// Clause indices grouped by color, each group in formula order.
    group_members: Vec<usize>,
}

impl ClauseColoring {
    /// Builds a coloring from per-clause colors, precomputing the color
    /// groups. Colors must be dense: every value in `0..max+1` is a group.
    pub fn new(colors: Vec<usize>) -> Self {
        let num_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
        let mut group_offsets = vec![0usize; num_colors + 1];
        for &c in &colors {
            group_offsets[c + 1] += 1;
        }
        for k in 1..=num_colors {
            group_offsets[k] += group_offsets[k - 1];
        }
        let mut cursor = group_offsets.clone();
        let mut group_members = vec![0usize; colors.len()];
        for (i, &c) in colors.iter().enumerate() {
            group_members[cursor[c]] = i;
            cursor[c] += 1;
        }
        ClauseColoring {
            colors,
            num_colors,
            group_offsets,
            group_members,
        }
    }

    /// Clause indices of one color, in formula order.
    pub fn clauses_of_color(&self, color: usize) -> &[usize] {
        &self.group_members[self.group_offsets[color]..self.group_offsets[color + 1]]
    }

    /// Iterator over color groups `0..num_colors`.
    pub fn groups(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.num_colors).map(|c| self.clauses_of_color(c))
    }
}

/// The clause conflict graph as a compact CSR adjacency: `neighbors(i)`
/// lists the clauses sharing a variable with clause `i`, sorted and
/// deduplicated (clause pairs sharing several variables contribute one
/// edge).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictGraph {
    /// Row offsets into `neighbors`, length `len() + 1`.
    offsets: Vec<usize>,
    /// Concatenated neighbor lists, each row sorted ascending.
    neighbors: Vec<usize>,
}

impl ConflictGraph {
    /// Builds a CSR graph from per-vertex adjacency lists (as produced by
    /// [`conflict_graph_reference`] or hand-written in tests). Lists are
    /// sorted and deduplicated on the way in.
    pub fn from_adjacency(adjacency: &[Vec<usize>]) -> Self {
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        offsets.push(0);
        let mut neighbors = Vec::new();
        let mut row_scratch = Vec::new();
        for row in adjacency {
            row_scratch.clone_from(row);
            row_scratch.sort_unstable();
            row_scratch.dedup();
            neighbors.extend_from_slice(&row_scratch);
            offsets.push(neighbors.len());
        }
        ConflictGraph { offsets, neighbors }
    }

    /// Number of vertices (clauses).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted, deduplicated neighbor list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum vertex degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

/// Builds the clause conflict graph of a formula (edge ⇔ shared variable).
///
/// Clauses are bucketed by variable (`O(M·k)`), then each CSR row is built
/// directly: clause `i`'s row is every other clause in the buckets of its
/// variables, deduplicated with an `O(1)` stamp array and sorted in place.
/// Rows are emitted in vertex order, so the offsets fall out of the
/// construction — no per-clause `HashSet`s, no global pair list, and no
/// `O(E log E)` sort over all directed edges.
pub fn conflict_graph(formula: &Formula) -> ConflictGraph {
    let clauses = formula.clauses();
    let n = clauses.len();
    let mut by_var: Vec<Vec<u32>> = vec![Vec::new(); formula.num_vars()];
    for (i, c) in clauses.iter().enumerate() {
        for v in c.vars() {
            by_var[v].push(i as u32);
        }
    }
    let mut offsets = vec![0usize; n + 1];
    let mut neighbors: Vec<usize> = Vec::new();
    // seen[j] == stamp of the row currently being built ⇔ j already pushed.
    let mut seen: Vec<u32> = vec![u32::MAX; n];
    for (i, c) in clauses.iter().enumerate() {
        let stamp = i as u32;
        seen[i] = stamp; // exclude the self-edge
        let start = neighbors.len();
        for v in c.vars() {
            for &j in &by_var[v] {
                if seen[j as usize] != stamp {
                    seen[j as usize] = stamp;
                    neighbors.push(j as usize);
                }
            }
        }
        neighbors[start..].sort_unstable();
        offsets[i + 1] = neighbors.len();
    }
    ConflictGraph { offsets, neighbors }
}

/// Colors the clause conflict graph with DSatur: repeatedly pick the
/// uncolored vertex with the highest saturation degree (number of distinct
/// neighbour colors), tie-broken by degree, and give it the smallest free
/// color.
///
/// Vertex selection pops a lazy max-heap of `(saturation, degree, vertex)`
/// entries (stale entries are skipped), and per-vertex neighbour-color sets
/// are flat bitsets — any vertex needs at most `max_degree + 1` colors, so
/// the bitsets have fixed width. Produces exactly the coloring of
/// [`dsatur_reference`].
///
/// # Examples
///
/// ```
/// use weaver_core::coloring::color_clauses;
/// use weaver_sat::generator;
/// let f = generator::instance(20, 1);
/// let coloring = color_clauses(&f);
/// assert!(coloring.num_colors >= 1);
/// ```
pub fn dsatur(graph: &ConflictGraph) -> ClauseColoring {
    let n = graph.len();
    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; n];
    // Any vertex sees at most max_degree neighbour colors, so the smallest
    // free color is ≤ max_degree; one extra slot keeps the "all lower bits
    // set" scan in range.
    let words = (graph.max_degree() + 2).div_ceil(64);
    let mut sat_bits = vec![0u64; n * words];
    let mut sat_count = vec![0usize; n];
    // The heap is lazy: a vertex is re-pushed whenever its saturation
    // grows, and pops not matching the current (uncolored, saturation)
    // state are discarded. Max-lexicographic `(sat, degree, vertex)` order
    // reproduces the reference's `max_by_key` tie-breaking exactly (last
    // maximal element = largest index).
    let mut heap: BinaryHeap<(usize, usize, usize)> =
        (0..n).map(|v| (0, graph.degree(v), v)).collect();

    let mut colored = 0usize;
    while colored < n {
        let (sat, _deg, v) = heap.pop().expect("every uncolored vertex has a live entry");
        if colors[v] != UNCOLORED || sat != sat_count[v] {
            continue;
        }
        // Smallest color not used by neighbours: first zero bit.
        let bits = &sat_bits[v * words..(v + 1) * words];
        let mut c = 0;
        for (w, &word) in bits.iter().enumerate() {
            if word != u64::MAX {
                c = w * 64 + (!word).trailing_zeros() as usize;
                break;
            }
        }
        colors[v] = c;
        colored += 1;
        for &u in graph.neighbors(v) {
            if colors[u] != UNCOLORED {
                continue;
            }
            let slot = &mut sat_bits[u * words + c / 64];
            let bit = 1u64 << (c % 64);
            if *slot & bit == 0 {
                *slot |= bit;
                sat_count[u] += 1;
                heap.push((sat_count[u], graph.degree(u), u));
            }
        }
    }

    ClauseColoring::new(colors)
}

/// A naive first-fit greedy coloring in input order — the ablation baseline
/// against DSatur (DESIGN.md §6). Used colors are tracked with a stamp
/// array instead of a per-vertex `HashSet`.
pub fn greedy_first_fit(graph: &ConflictGraph) -> ClauseColoring {
    let n = graph.len();
    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; n];
    // mark[c] == v ⇔ color c is used by a neighbour of the current vertex.
    let mut mark = vec![usize::MAX; n + 1];
    for v in 0..n {
        for &u in graph.neighbors(v) {
            if colors[u] != UNCOLORED {
                mark[colors[u]] = v;
            }
        }
        let mut c = 0;
        while mark[c] == v {
            c += 1;
        }
        colors[v] = c;
    }
    ClauseColoring::new(colors)
}

/// Checks that no two adjacent vertices share a color.
pub fn is_valid_coloring(graph: &ConflictGraph, coloring: &ClauseColoring) -> bool {
    (0..graph.len()).all(|v| {
        graph
            .neighbors(v)
            .iter()
            .all(|&u| coloring.colors[v] != coloring.colors[u])
    })
}

/// Builds the conflict graph and colors it (the §5.2 pipeline entry point).
pub fn color_clauses(formula: &Formula) -> ClauseColoring {
    dsatur(&conflict_graph(formula))
}

// ---- reference implementations ---------------------------------------------

/// The pre-optimization conflict-graph construction (per-clause `HashSet`
/// adjacency), preserved as the equivalence oracle for the CSR builder and
/// the speedup baseline for `figures bench-figures`. Not for production
/// use.
pub fn conflict_graph_reference(formula: &Formula) -> Vec<Vec<usize>> {
    let clauses = formula.clauses();
    let n = clauses.len();
    let mut by_var: Vec<Vec<usize>> = vec![Vec::new(); formula.num_vars()];
    for (i, c) in clauses.iter().enumerate() {
        for v in c.vars() {
            by_var[v].push(i);
        }
    }
    let mut adjacency: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for bucket in &by_var {
        for (k, &i) in bucket.iter().enumerate() {
            for &j in &bucket[k + 1..] {
                adjacency[i].insert(j);
                adjacency[j].insert(i);
            }
        }
    }
    adjacency
        .into_iter()
        .map(|s| {
            let mut v: Vec<usize> = s.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// The pre-optimization DSatur (`O(n)` argmax scan per step, `HashSet`
/// saturation sets), preserved as the oracle proving the heap-based
/// [`dsatur`] picks identical vertices and colors. Not for production use.
pub fn dsatur_reference(adjacency: &[Vec<usize>]) -> ClauseColoring {
    let n = adjacency.len();
    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; n];
    let mut neighbor_colors: Vec<HashSet<usize>> = vec![HashSet::new(); n];

    for _ in 0..n {
        // Pick uncolored vertex with max saturation, tie-break on degree.
        let v = (0..n)
            .filter(|&v| colors[v] == UNCOLORED)
            .max_by_key(|&v| (neighbor_colors[v].len(), adjacency[v].len()))
            .expect("an uncolored vertex remains");
        // Smallest color not used by neighbours.
        let mut c = 0;
        while neighbor_colors[v].contains(&c) {
            c += 1;
        }
        colors[v] = c;
        for &u in &adjacency[v] {
            neighbor_colors[u].insert(c);
        }
    }

    ClauseColoring::new(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::{generator, Clause, Lit};

    /// The paper's running example (Fig. 5): clauses 0 and 1 are disjoint,
    /// clause 2 intersects both.
    fn paper_formula() -> Formula {
        Formula::new(
            6,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(3), Lit::neg(4), Lit::pos(5)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(4), Lit::neg(5)]),
            ],
        )
    }

    #[test]
    fn paper_example_uses_two_colors() {
        let f = paper_formula();
        let coloring = color_clauses(&f);
        assert_eq!(coloring.num_colors, 2);
        assert_eq!(coloring.colors[0], coloring.colors[1]);
        assert_ne!(coloring.colors[0], coloring.colors[2]);
    }

    #[test]
    fn conflict_graph_matches_intersections() {
        let f = paper_formula();
        let g = conflict_graph(&f);
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    #[test]
    fn csr_matches_reference_adjacency() {
        for variant in 1..=5 {
            let f = generator::instance(30, variant);
            let reference = conflict_graph_reference(&f);
            let csr = conflict_graph(&f);
            assert_eq!(csr, ConflictGraph::from_adjacency(&reference));
        }
    }

    #[test]
    fn heap_dsatur_matches_reference() {
        for variant in 1..=5 {
            let f = generator::instance(30, variant);
            let reference = dsatur_reference(&conflict_graph_reference(&f));
            let fast = dsatur(&conflict_graph(&f));
            assert_eq!(fast, reference, "variant {variant}");
        }
    }

    #[test]
    fn dsatur_valid_on_benchmarks() {
        for variant in 1..=3 {
            let f = generator::instance(20, variant);
            let g = conflict_graph(&f);
            let coloring = dsatur(&g);
            assert!(is_valid_coloring(&g, &coloring), "variant {variant}");
        }
    }

    #[test]
    fn dsatur_no_worse_than_first_fit_on_average() {
        let mut dsatur_total = 0;
        let mut greedy_total = 0;
        for variant in 1..=10 {
            let f = generator::instance(50, variant);
            let g = conflict_graph(&f);
            dsatur_total += dsatur(&g).num_colors;
            greedy_total += greedy_first_fit(&g).num_colors;
        }
        assert!(
            dsatur_total <= greedy_total,
            "DSatur {dsatur_total} vs greedy {greedy_total}"
        );
    }

    #[test]
    fn dsatur_optimal_on_known_graphs() {
        // Triangle needs 3 colors.
        let triangle = ConflictGraph::from_adjacency(&[vec![1, 2], vec![0, 2], vec![0, 1]]);
        assert_eq!(dsatur(&triangle).num_colors, 3);
        // Even cycle is 2-chromatic; DSatur is exact on bipartite graphs.
        let c6: Vec<Vec<usize>> = (0..6).map(|i| vec![(i + 5) % 6, (i + 1) % 6]).collect();
        assert_eq!(dsatur(&ConflictGraph::from_adjacency(&c6)).num_colors, 2);
        // Star graph: 2 colors.
        let mut star = vec![vec![]; 7];
        star[0] = (1..7).collect();
        for leaf in star.iter_mut().skip(1) {
            *leaf = vec![0];
        }
        assert_eq!(dsatur(&ConflictGraph::from_adjacency(&star)).num_colors, 2);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(dsatur(&ConflictGraph::from_adjacency(&[])).num_colors, 0);
        assert_eq!(
            dsatur(&ConflictGraph::from_adjacency(&[vec![]])).num_colors,
            1
        );
    }

    #[test]
    fn groups_partition_clauses() {
        let f = generator::instance(20, 4);
        let coloring = color_clauses(&f);
        let mut seen = vec![false; f.num_clauses()];
        for group in coloring.groups() {
            for &idx in group {
                assert!(!seen[idx], "clause {idx} in two groups");
                seen[idx] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn groups_are_slices_in_formula_order() {
        let f = generator::instance(20, 2);
        let coloring = color_clauses(&f);
        for color in 0..coloring.num_colors {
            let group = coloring.clauses_of_color(color);
            assert!(!group.is_empty(), "dense colors: every group inhabited");
            assert!(group.windows(2).all(|w| w[0] < w[1]));
            assert!(group.iter().all(|&i| coloring.colors[i] == color));
        }
    }

    #[test]
    fn colors_bounded_by_max_degree_plus_one() {
        let f = generator::instance(50, 6);
        let g = conflict_graph(&f);
        let coloring = dsatur(&g);
        assert!(coloring.num_colors <= g.max_degree() + 1);
    }
}
