//! Front ends: pluggable workload ingestion, mirroring the [`Backend`]
//! registry on the input side of the compiler.
//!
//! A [`Frontend`] parses source text into the unified [`Workload`] IR —
//! either a (possibly weighted/partial) MAX-SAT [`Formula`] or a wQasm
//! circuit — and a [`FrontendRegistry`] resolves formats by explicit name,
//! file extension, or content sniffing. Three front ends ship by default:
//!
//! * `dimacs` (aliases `cnf`, `wcnf`) — DIMACS CNF and standard
//!   weighted-partial WCNF (top-weight = hard clauses),
//! * `maxcut` (aliases `mc`, `graph`) — edge-list graphs, lowered through
//!   the u≠v two-clause encoding ([`Formula::max_cut`]),
//! * `wqasm` (aliases `wq`, `qasm`) — direct circuit ingestion, entering
//!   the pipeline at the circuit IR (routed only to circuit-capable
//!   backends).
//!
//! [`Backend`]: crate::backend::Backend

use std::fmt;
use std::path::Path;
use std::sync::OnceLock;
use weaver_sat::dimacs::{self, DimacsError};
use weaver_sat::Formula;
use weaver_wqasm::{ParseError, Program, Statement};

// ---------------------------------------------------------------------------
// Workload IR
// ---------------------------------------------------------------------------

/// The two entry points into the compiler. Front ends produce one of these;
/// backends declare which kinds they accept.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// A (weighted/partial) MAX-SAT formula, lowered via QAOA.
    MaxSat,
    /// A wQasm/OpenQASM circuit, entering at the circuit IR.
    Circuit,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::MaxSat => f.write_str("max-sat"),
            WorkloadKind::Circuit => f.write_str("circuit"),
        }
    }
}

/// The unified workload IR every front end parses into.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// A MAX-SAT formula (uniform, weighted, or partial).
    MaxSat(Formula),
    /// A circuit, as a parsed wQasm program.
    Circuit(Program),
}

impl Workload {
    /// Which entry point this workload takes.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            Workload::MaxSat(_) => WorkloadKind::MaxSat,
            Workload::Circuit(_) => WorkloadKind::Circuit,
        }
    }

    /// Canonical byte serialization for content addressing, generalizing
    /// [`Formula::canonical_bytes`]: MAX-SAT workloads serialize to exactly
    /// the formula's bytes (engine artifact keys are unchanged for every
    /// existing workload, regardless of which front end parsed it), and
    /// circuit workloads to a tagged canonical print of the program.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Workload::MaxSat(formula) => formula.canonical_bytes(),
            Workload::Circuit(program) => {
                let mut out = Vec::from(&b"workload:circuit\0"[..]);
                out.extend(weaver_wqasm::print(program).into_bytes());
                out
            }
        }
    }

    /// One-line human description, e.g. `20 variables, 91 clauses`.
    pub fn describe(&self) -> String {
        match self {
            Workload::MaxSat(f) => {
                let weighted = if f.is_weighted() { " (weighted)" } else { "" };
                format!(
                    "{} variables, {} clauses{weighted}",
                    f.num_vars(),
                    f.num_clauses()
                )
            }
            Workload::Circuit(p) => {
                let qubits: usize = p
                    .statements
                    .iter()
                    .map(|s| match s {
                        Statement::QregDecl { size, .. } => *size,
                        _ => 0,
                    })
                    .sum();
                format!("{} qubits, {} statements", qubits, p.statements.len())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A structured parse failure from a front end, carrying the source
/// position when one is known (0 = unknown/whole input).
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendError {
    /// Primary name of the front end that failed.
    pub frontend: String,
    /// 1-based source line (0 = whole input).
    pub line: usize,
    /// 1-based source column (0 = whole line).
    pub col: usize,
    /// One-line description.
    pub message: String,
}

impl FrontendError {
    /// An error at a specific line and column.
    pub fn at(frontend: &str, line: usize, col: usize, message: String) -> Self {
        FrontendError {
            frontend: frontend.to_string(),
            line,
            col,
            message,
        }
    }

    /// An error with no usable source position.
    pub fn whole_input(frontend: &str, message: String) -> Self {
        FrontendError::at(frontend, 0, 0, message)
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.frontend)?;
        if self.line > 0 && self.col > 0 {
            write!(f, "line {}, column {}: ", self.line, self.col)?;
        } else if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        f.write_str(&self.message)
    }
}

impl std::error::Error for FrontendError {}

impl From<DimacsError> for FrontendError {
    fn from(e: DimacsError) -> Self {
        FrontendError::at("dimacs", e.line, e.col, e.message)
    }
}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::at("wqasm", e.line, e.col, e.message)
    }
}

// ---------------------------------------------------------------------------
// The Frontend trait
// ---------------------------------------------------------------------------

/// Facts about a front end, surfaced by `weaverc frontends`.
#[derive(Clone, Debug)]
pub struct FrontendInfo {
    /// Primary registry key.
    pub name: String,
    /// Alternate registry keys.
    pub aliases: Vec<String>,
    /// One-line description.
    pub description: String,
    /// File extensions (without the dot) this front end claims.
    pub extensions: Vec<String>,
    /// The workload kind `parse` produces.
    pub produces: WorkloadKind,
}

/// An input format: parses source text into the unified [`Workload`] IR.
///
/// # Examples
///
/// A front end for a toy format where each line is one always-positive
/// clause:
///
/// ```
/// use weaver_core::frontend::{Frontend, FrontendError, FrontendInfo, Workload, WorkloadKind};
/// use weaver_sat::{Clause, Formula, Lit};
///
/// struct PositiveLines;
///
/// impl Frontend for PositiveLines {
///     fn info(&self) -> FrontendInfo {
///         FrontendInfo {
///             name: "positive-lines".to_string(),
///             aliases: Vec::new(),
///             description: "one positive clause per line".to_string(),
///             extensions: vec!["pos".to_string()],
///             produces: WorkloadKind::MaxSat,
///         }
///     }
///
///     fn sniff(&self, _text: &str) -> bool {
///         false // too ambiguous to claim by content
///     }
///
///     fn parse(&self, text: &str) -> Result<Workload, FrontendError> {
///         let mut clauses = Vec::new();
///         let mut num_vars = 0;
///         for (i, line) in text.lines().enumerate() {
///             let lits: Result<Vec<usize>, _> =
///                 line.split_whitespace().map(str::parse).collect();
///             let lits = lits.map_err(|_| {
///                 FrontendError::at("positive-lines", i + 1, 1, "bad variable".into())
///             })?;
///             num_vars = num_vars.max(lits.iter().max().map_or(0, |&v| v + 1));
///             clauses.push(Clause::new(lits.into_iter().map(Lit::pos).collect()));
///         }
///         Ok(Workload::MaxSat(Formula::new(num_vars, clauses)))
///     }
/// }
///
/// let w = PositiveLines.parse("0 1\n1 2\n").unwrap();
/// assert_eq!(w.kind(), WorkloadKind::MaxSat);
/// ```
pub trait Frontend: Send + Sync {
    /// Name, aliases, description, extensions, and produced workload kind.
    fn info(&self) -> FrontendInfo;

    /// Whether `text` looks like this format — used as a last resort when
    /// neither an explicit name nor a file extension identifies the format.
    fn sniff(&self, text: &str) -> bool;

    /// Parses source text into a [`Workload`].
    ///
    /// # Errors
    ///
    /// [`FrontendError`] with the source position of the first problem.
    fn parse(&self, text: &str) -> Result<Workload, FrontendError>;

    /// Serializes a workload back to this front end's format, if it can
    /// represent it — the inverse of [`Frontend::parse`], used by the
    /// conformance suite's parse→print→parse roundtrips. The default
    /// cannot print anything.
    fn print(&self, workload: &Workload) -> Option<String> {
        let _ = workload;
        None
    }
}

// ---------------------------------------------------------------------------
// DIMACS front end
// ---------------------------------------------------------------------------

/// DIMACS CNF and weighted-partial WCNF (`p wcnf`, top-weight = hard).
#[derive(Clone, Copy, Debug, Default)]
pub struct DimacsFrontend;

impl Frontend for DimacsFrontend {
    fn info(&self) -> FrontendInfo {
        FrontendInfo {
            name: "dimacs".to_string(),
            aliases: vec!["cnf".to_string(), "wcnf".to_string()],
            description: "DIMACS CNF / weighted-partial WCNF Max-SAT (top-weight = hard)"
                .to_string(),
            extensions: vec!["cnf".to_string(), "dimacs".to_string(), "wcnf".to_string()],
            produces: WorkloadKind::MaxSat,
        }
    }

    fn sniff(&self, text: &str) -> bool {
        first_content_line(text).is_some_and(|l| l.starts_with("p cnf") || l.starts_with("p wcnf"))
    }

    fn parse(&self, text: &str) -> Result<Workload, FrontendError> {
        Ok(Workload::MaxSat(dimacs::parse(text)?))
    }

    fn print(&self, workload: &Workload) -> Option<String> {
        match workload {
            Workload::MaxSat(f) => Some(dimacs::to_string(f)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// MaxCut front end
// ---------------------------------------------------------------------------

/// Edge-list graphs for max-cut, lowered through the u≠v two-clause
/// encoding ([`Formula::max_cut`]).
///
/// Format: an optional `p mc <vertices> <edges>` header, then one edge per
/// line as `u v [weight]` (1-based vertices, weight defaults to 1; a
/// leading `e` token is tolerated). `c`/`#` lines are comments.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxCutFrontend;

impl Frontend for MaxCutFrontend {
    fn info(&self) -> FrontendInfo {
        FrontendInfo {
            name: "maxcut".to_string(),
            aliases: vec!["mc".to_string(), "graph".to_string()],
            description: "edge-list graphs, lowered via the u≠v two-clause cut encoding"
                .to_string(),
            extensions: vec!["mc".to_string(), "graph".to_string()],
            produces: WorkloadKind::MaxSat,
        }
    }

    fn sniff(&self, text: &str) -> bool {
        first_content_line(text).is_some_and(|l| l.starts_with("p mc"))
    }

    fn parse(&self, text: &str) -> Result<Workload, FrontendError> {
        let name = "maxcut";
        let mut declared: Option<(usize, usize)> = None;
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        let mut max_vertex = 0usize;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('#') {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens[0] == "p" {
                if tokens.len() != 4 || tokens[1] != "mc" {
                    return Err(FrontendError::at(
                        name,
                        lineno,
                        1,
                        format!("malformed header `{line}` (expected `p mc <vertices> <edges>`)"),
                    ));
                }
                let v: usize = tokens[2].parse().map_err(|_| {
                    FrontendError::at(name, lineno, 1, format!("bad vertex count `{}`", tokens[2]))
                })?;
                let e: usize = tokens[3].parse().map_err(|_| {
                    FrontendError::at(name, lineno, 1, format!("bad edge count `{}`", tokens[3]))
                })?;
                declared = Some((v, e));
                continue;
            }
            let fields: &[&str] = if tokens[0] == "e" {
                &tokens[1..]
            } else {
                &tokens[..]
            };
            if fields.len() != 2 && fields.len() != 3 {
                return Err(FrontendError::at(
                    name,
                    lineno,
                    1,
                    format!("expected `u v [weight]`, got `{line}`"),
                ));
            }
            let endpoint = |tok: &str| -> Result<usize, FrontendError> {
                let v: usize = tok.parse().map_err(|_| {
                    FrontendError::at(name, lineno, 1, format!("bad vertex `{tok}`"))
                })?;
                if v == 0 {
                    return Err(FrontendError::at(
                        name,
                        lineno,
                        1,
                        "vertices are 1-based".to_string(),
                    ));
                }
                Ok(v - 1)
            };
            let u = endpoint(fields[0])?;
            let v = endpoint(fields[1])?;
            if u == v {
                return Err(FrontendError::at(
                    name,
                    lineno,
                    1,
                    format!("self-loop on vertex {}", u + 1),
                ));
            }
            let w: u64 = match fields.get(2) {
                Some(tok) => tok.parse().map_err(|_| {
                    FrontendError::at(name, lineno, 1, format!("bad edge weight `{tok}`"))
                })?,
                None => 1,
            };
            if w == 0 {
                return Err(FrontendError::at(
                    name,
                    lineno,
                    1,
                    "edge weight must be positive".to_string(),
                ));
            }
            if let Some((nv, _)) = declared {
                if u >= nv || v >= nv {
                    return Err(FrontendError::at(
                        name,
                        lineno,
                        1,
                        format!("vertex {} exceeds declared count {nv}", u.max(v) + 1),
                    ));
                }
            }
            max_vertex = max_vertex.max(u).max(v);
            edges.push((u, v, w));
        }
        if edges.is_empty() {
            return Err(FrontendError::whole_input(name, "no edges".to_string()));
        }
        if let Some((_, ne)) = declared {
            if edges.len() != ne {
                return Err(FrontendError::whole_input(
                    name,
                    format!("header declares {ne} edges, found {}", edges.len()),
                ));
            }
        }
        let num_vertices = declared.map_or(max_vertex + 1, |(nv, _)| nv);
        Ok(Workload::MaxSat(Formula::max_cut(num_vertices, &edges)))
    }

    fn print(&self, workload: &Workload) -> Option<String> {
        // A max-cut lowering is a sequence of clause pairs
        // (u ∨ v), (¬u ∨ ¬v) of equal weight; reconstruct the edge list or
        // report the workload as unprintable in this format.
        let Workload::MaxSat(f) = workload else {
            return None;
        };
        if f.num_clauses() % 2 != 0 {
            return None;
        }
        let mut out = format!("p mc {} {}\n", f.num_vars(), f.num_clauses() / 2);
        for pair in f.clauses().chunks(2) {
            let (pos, neg) = (&pair[0], &pair[1]);
            if pos.is_hard() || neg.is_hard() || pos.weight() != neg.weight() {
                return None;
            }
            let [a, b] = pos.lits() else { return None };
            let [na, nb] = neg.lits() else { return None };
            if a.negated || b.negated || !na.negated || !nb.negated {
                return None;
            }
            if (a.var, b.var) != (na.var, nb.var) {
                return None;
            }
            out.push_str(&format!("{} {} {}\n", a.var + 1, b.var + 1, pos.weight()));
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// wQasm front end
// ---------------------------------------------------------------------------

/// Direct wQasm/OpenQASM circuit ingestion: the workload enters at the
/// circuit IR and is routed only to circuit-capable backends.
#[derive(Clone, Copy, Debug, Default)]
pub struct WqasmFrontend;

impl Frontend for WqasmFrontend {
    fn info(&self) -> FrontendInfo {
        FrontendInfo {
            name: "wqasm".to_string(),
            aliases: vec!["wq".to_string(), "qasm".to_string()],
            description: "direct wQasm/OpenQASM circuit ingestion (circuit-capable targets only)"
                .to_string(),
            extensions: vec!["wq".to_string(), "qasm".to_string(), "wqasm".to_string()],
            produces: WorkloadKind::Circuit,
        }
    }

    fn sniff(&self, text: &str) -> bool {
        text.lines()
            .take(20)
            .any(|l| l.trim_start().starts_with("OPENQASM") || l.trim_start().starts_with("qreg"))
    }

    fn parse(&self, text: &str) -> Result<Workload, FrontendError> {
        Ok(Workload::Circuit(weaver_wqasm::parse(text)?))
    }

    fn print(&self, workload: &Workload) -> Option<String> {
        match workload {
            Workload::Circuit(p) => Some(weaver_wqasm::print(p)),
            _ => None,
        }
    }
}

/// The first non-empty, non-comment line (for content sniffing).
fn first_content_line(text: &str) -> Option<&str> {
    text.lines().map(str::trim).find(|l| {
        !l.is_empty() && !l.starts_with('c') && !l.starts_with('#') && !l.starts_with('%')
    })
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A name → [`Frontend`] table, mirroring
/// [`BackendRegistry`](crate::backend::BackendRegistry): the single place an
/// input format plugs into the compiler. Lookups match the primary name or
/// any alias; [`FrontendRegistry::resolve`] adds extension-based inference
/// and content sniffing for sources without an explicit format.
///
/// # Examples
///
/// ```
/// use weaver_core::frontend::{FrontendRegistry, Workload};
///
/// let registry = FrontendRegistry::global();
/// assert_eq!(registry.names(), vec!["dimacs", "maxcut", "wqasm"]);
///
/// // Aliases and extensions resolve to the same front end.
/// assert_eq!(registry.get("wcnf").unwrap().info().name, "dimacs");
/// let by_ext = registry.for_path("graphs/k5.mc".as_ref()).unwrap();
/// assert_eq!(by_ext.info().name, "maxcut");
///
/// // One dispatch site, three formats:
/// let w = registry
///     .resolve(None, Some("uf3.cnf".as_ref()), "p cnf 3 1\n1 -2 3 0\n")
///     .unwrap()
///     .parse("p cnf 3 1\n1 -2 3 0\n")
///     .unwrap();
/// let Workload::MaxSat(f) = w else { unreachable!() };
/// assert_eq!(f.num_clauses(), 1);
/// ```
pub struct FrontendRegistry {
    frontends: Vec<Box<dyn Frontend>>,
}

impl FrontendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FrontendRegistry {
            frontends: Vec::new(),
        }
    }

    /// The registry with the three default front ends: `dimacs`, `maxcut`,
    /// `wqasm`.
    pub fn with_default_frontends() -> Self {
        let mut registry = FrontendRegistry::new();
        registry.register(Box::new(DimacsFrontend));
        registry.register(Box::new(MaxCutFrontend));
        registry.register(Box::new(WqasmFrontend));
        registry
    }

    /// The process-wide shared registry of default front ends, used by every
    /// ingestion site (the batch engine, `weaverc`, the conformance suites).
    pub fn global() -> &'static FrontendRegistry {
        static GLOBAL: OnceLock<FrontendRegistry> = OnceLock::new();
        GLOBAL.get_or_init(FrontendRegistry::with_default_frontends)
    }

    /// Adds a front end. A duplicate primary name replaces the old entry.
    pub fn register(&mut self, frontend: Box<dyn Frontend>) {
        let name = frontend.info().name;
        self.frontends.retain(|f| f.info().name != name);
        self.frontends.push(frontend);
    }

    /// Looks up a registered front end by primary name or alias.
    pub fn get(&self, name: &str) -> Option<&dyn Frontend> {
        self.frontends
            .iter()
            .find(|f| {
                let info = f.info();
                info.name == name || info.aliases.iter().any(|a| a == name)
            })
            .map(|f| f.as_ref())
    }

    /// The front end claiming the path's extension (case-insensitive).
    pub fn for_path(&self, path: &Path) -> Option<&dyn Frontend> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        self.frontends
            .iter()
            .find(|f| f.info().extensions.contains(&ext))
            .map(|f| f.as_ref())
    }

    /// The first front end (in registration order) whose sniffer claims the
    /// text.
    pub fn detect(&self, text: &str) -> Option<&dyn Frontend> {
        self.frontends
            .iter()
            .find(|f| f.sniff(text))
            .map(|f| f.as_ref())
    }

    /// Resolves the front end for a source: an explicit format name wins,
    /// then the path's extension, then content sniffing.
    ///
    /// # Errors
    ///
    /// A one-line `unknown format` diagnostic listing the registered front
    /// ends (for an explicit name that matches nothing) or the claimed
    /// extensions (when inference fails).
    pub fn resolve(
        &self,
        explicit: Option<&str>,
        path: Option<&Path>,
        text: &str,
    ) -> Result<&dyn Frontend, String> {
        if let Some(name) = explicit {
            return self.get(name).ok_or_else(|| self.unknown_format(name));
        }
        if let Some(frontend) = path.and_then(|p| self.for_path(p)) {
            return Ok(frontend);
        }
        self.detect(text).ok_or_else(|| {
            let what = path
                .map(|p| format!("`{}`", p.display()))
                .unwrap_or_else(|| "input".to_string());
            format!(
                "cannot determine the format of {what} (known extensions: {}; pass an explicit front end)",
                self.extensions()
                    .iter()
                    .map(|e| format!(".{e}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }

    /// Registered front ends, in registration order.
    pub fn frontends(&self) -> impl Iterator<Item = &dyn Frontend> {
        self.frontends.iter().map(|f| f.as_ref())
    }

    /// Primary names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.frontends.iter().map(|f| f.info().name).collect()
    }

    /// Every claimed extension, in registration order.
    pub fn extensions(&self) -> Vec<String> {
        self.frontends
            .iter()
            .flat_map(|f| f.info().extensions)
            .collect()
    }

    /// Extensions of front ends producing the given workload kind — the
    /// engine's directory discovery only auto-targets MAX-SAT formats,
    /// since circuit files are target-constrained.
    pub fn extensions_for(&self, kind: WorkloadKind) -> Vec<String> {
        self.frontends
            .iter()
            .filter(|f| f.info().produces == kind)
            .flat_map(|f| f.info().extensions)
            .collect()
    }

    /// The canonical `unknown format` diagnostic for `name`.
    pub fn unknown_format(&self, name: &str) -> String {
        format!(
            "unknown front end `{name}` (known front ends: {})",
            self.names().join(", ")
        )
    }
}

impl Default for FrontendRegistry {
    fn default() -> Self {
        FrontendRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::generator;

    #[test]
    fn registry_resolves_names_aliases_and_extensions() {
        let registry = FrontendRegistry::with_default_frontends();
        for (key, name) in [
            ("dimacs", "dimacs"),
            ("cnf", "dimacs"),
            ("wcnf", "dimacs"),
            ("maxcut", "maxcut"),
            ("mc", "maxcut"),
            ("graph", "maxcut"),
            ("wqasm", "wqasm"),
            ("wq", "wqasm"),
            ("qasm", "wqasm"),
        ] {
            assert_eq!(registry.get(key).unwrap().info().name, name, "{key}");
        }
        assert!(registry.get("smtlib").is_none());
        for (path, name) in [
            ("a/b/uf20-01.cnf", "dimacs"),
            ("x.WCNF", "dimacs"),
            ("k5.mc", "maxcut"),
            ("bell.wq", "wqasm"),
            ("bell.qasm", "wqasm"),
        ] {
            assert_eq!(
                registry.for_path(path.as_ref()).unwrap().info().name,
                name,
                "{path}"
            );
        }
        assert!(registry.for_path("noext".as_ref()).is_none());
    }

    #[test]
    fn sniffing_detects_each_format() {
        let registry = FrontendRegistry::with_default_frontends();
        for (text, name) in [
            ("c comment\np cnf 2 1\n1 2 0\n", "dimacs"),
            ("p wcnf 2 1 5\n3 1 2 0\n", "dimacs"),
            ("# graph\np mc 3 2\n1 2\n2 3\n", "maxcut"),
            ("OPENQASM 2.0;\nqreg q[2];\nh q[0];\n", "wqasm"),
            ("qreg q[1];\nx q[0];\n", "wqasm"),
        ] {
            assert_eq!(registry.detect(text).unwrap().info().name, name, "{text:?}");
        }
        assert!(registry.detect("not a workload").is_none());
    }

    #[test]
    fn resolve_prefers_explicit_then_extension_then_content() {
        let registry = FrontendRegistry::with_default_frontends();
        let text = "p cnf 2 1\n1 2 0\n";
        // Explicit wins even against a contradicting extension.
        let f = registry
            .resolve(Some("maxcut"), Some("x.cnf".as_ref()), text)
            .unwrap();
        assert_eq!(f.info().name, "maxcut");
        // Extension next.
        let f = registry.resolve(None, Some("x.mc".as_ref()), text).unwrap();
        assert_eq!(f.info().name, "maxcut");
        // Content sniffing last.
        let f = registry
            .resolve(None, Some("noext".as_ref()), text)
            .unwrap();
        assert_eq!(f.info().name, "dimacs");
        // Structured failures.
        let err = registry
            .resolve(Some("smtlib"), None, text)
            .map(|f| f.info().name)
            .unwrap_err();
        assert!(err.contains("unknown front end `smtlib`"), "{err}");
        assert!(err.contains("dimacs, maxcut, wqasm"), "{err}");
        let err = registry
            .resolve(None, Some("mystery.bin".as_ref()), "???")
            .map(|f| f.info().name)
            .unwrap_err();
        assert!(err.contains("cannot determine the format"), "{err}");
        assert!(err.contains(".cnf"), "{err}");
    }

    #[test]
    fn maxcut_parses_and_lowers() {
        let text = "# triangle, one heavy edge\np mc 3 3\n1 2\n2 3\ne 1 3 4\n";
        let Workload::MaxSat(f) = MaxCutFrontend.parse(text).unwrap() else {
            panic!("maxcut produces formulas");
        };
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 6);
        assert!(f.is_weighted());
        assert_eq!(f, Formula::max_cut(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 4)]));
    }

    #[test]
    fn maxcut_errors_carry_positions() {
        for (text, line, needle) in [
            ("p mc 2 1\n1 1\n", 2, "self-loop"),
            ("p mc 2 1\n1 5\n", 2, "exceeds"),
            ("1 2 0 extra\n", 1, "expected"),
            ("p mc 2 1\n1 2 0\n", 2, "positive"),
            ("p mc 2 2\n1 2\n", 0, "declares 2 edges"),
        ] {
            let err = MaxCutFrontend.parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(err.message.contains(needle), "{text:?}: {}", err.message);
        }
    }

    #[test]
    fn maxcut_print_roundtrips_and_rejects_foreign_formulas() {
        let w = MaxCutFrontend
            .parse("p mc 4 3\n1 2 2\n2 3 1\n1 4 5\n")
            .unwrap();
        let printed = MaxCutFrontend.print(&w).unwrap();
        assert_eq!(MaxCutFrontend.parse(&printed).unwrap(), w);
        // A non-cut formula is not printable as a graph.
        let foreign = Workload::MaxSat(generator::instance(6, 1));
        assert!(MaxCutFrontend.print(&foreign).is_none());
    }

    #[test]
    fn dimacs_and_wqasm_print_roundtrip() {
        let w = DimacsFrontend
            .parse("p wcnf 3 2 9\n4 1 -2 0\n9 -1 3 0\n")
            .unwrap();
        let printed = DimacsFrontend.print(&w).unwrap();
        assert_eq!(DimacsFrontend.parse(&printed).unwrap(), w);

        let c = WqasmFrontend
            .parse("qreg q[2];\nh q[0];\ncz q[0], q[1];\nmeasure q[0];")
            .unwrap();
        let printed = WqasmFrontend.print(&c).unwrap();
        assert_eq!(WqasmFrontend.parse(&printed).unwrap(), c);
        // Cross-kind printing declines.
        assert!(WqasmFrontend.print(&w).is_none());
        assert!(DimacsFrontend.print(&c).is_none());
    }

    #[test]
    fn workload_canonical_bytes_generalize_formula_bytes() {
        let f = generator::instance(10, 1);
        let w = Workload::MaxSat(f.clone());
        assert_eq!(w.canonical_bytes(), f.canonical_bytes());
        let c = WqasmFrontend.parse("qreg q[1];\nh q[0];\n").unwrap();
        assert_ne!(c.canonical_bytes(), w.canonical_bytes());
        assert!(c.canonical_bytes().starts_with(b"workload:circuit\0"));
    }

    #[test]
    fn frontend_error_positions_flow_from_parsers() {
        let err = DimacsFrontend.parse("p cnf 2 1\n1 zz 0\n").unwrap_err();
        assert_eq!((err.line, err.col), (2, 3));
        assert!(err.to_string().starts_with("dimacs: line 2, column 3:"));
        let err = WqasmFrontend.parse("qreg q[2];\nh q[;\n").unwrap_err();
        assert_eq!(err.frontend, "wqasm");
        assert!(err.line > 0);
    }
}
