//! The retargetable backend interface (paper Fig. 3): one front end, many
//! hardware targets.
//!
//! A [`Backend`] turns a Max-3SAT workload into a target-specific artifact
//! by running a named sequence of lowering passes through a [`PassManager`];
//! every pass is individually timed and step-counted ([`PassStat`]), and the
//! result is a unified [`CompileOutput`] regardless of target. Backends are
//! looked up by name (and aliases) in a [`BackendRegistry`], so every
//! dispatch site — the [`Weaver`] pipeline, the batch engine, `weaverc`,
//! the benchmark harness — goes through one table instead of hard-coded
//! `match` arms.
//!
//! Three core targets ship in the default registry:
//!
//! * `fpqa` — the wOptimizer path (coloring → shuttle planning → wQasm),
//! * `superconducting` (alias `sc`) — QAOA lowering + SABRE routing,
//! * `simulator` (alias `sim`) — ideal state-vector execution, reporting the
//!   noiseless probability of measuring a Max-3SAT-optimal assignment —
//!
//! plus the `sc:*` device family: one [`SuperconductingBackend`] per
//! declarative [`DeviceSpec`] (`sc:line`, `sc:grid`, `sc:eagle`,
//! `sc:heron`), with arbitrary rectangular lattices minted on demand by
//! [`BackendRegistry::resolve`] from parameterized names like
//! `sc:grid:<w>x<h>`.
//!
//! # Adding a target
//!
//! Implement [`Backend`] and register it:
//!
//! ```
//! use weaver_core::backend::{
//!     Backend, BackendError, BackendInfo, BackendRegistry, CompileOutput, CompiledArtifact,
//! };
//! use weaver_core::cache::CacheHandle;
//! use weaver_core::{Metrics, Weaver};
//! use weaver_sat::{generator, Formula};
//!
//! /// A toy target that "lowers" by counting clauses.
//! struct CountingBackend;
//!
//! impl Backend for CountingBackend {
//!     fn info(&self) -> BackendInfo {
//!         BackendInfo {
//!             name: "counting".to_string(),
//!             aliases: Vec::new(),
//!             description: "counts clauses instead of compiling".to_string(),
//!             max_qubits: None,
//!         }
//!     }
//!
//!     fn passes(&self) -> Vec<&'static str> {
//!         vec!["count"]
//!     }
//!
//!     fn compile(
//!         &self,
//!         weaver: &Weaver,
//!         formula: &Formula,
//!         _cache: Option<&CacheHandle>,
//!     ) -> Result<CompileOutput, BackendError> {
//!         let circuit = weaver_sat::qaoa::build_circuit(formula, &weaver.options.qaoa, false);
//!         Ok(CompileOutput {
//!             backend: "counting".to_string(),
//!             artifact: CompiledArtifact::Superconducting {
//!                 circuit,
//!                 swap_count: 0,
//!             },
//!             metrics: Metrics {
//!                 compilation_seconds: 0.0,
//!                 execution_micros: 0.0,
//!                 eps: 1.0,
//!                 pulses: formula.num_clauses(),
//!                 motion_ops: 0,
//!                 steps: formula.num_clauses() as u64,
//!             },
//!             passes: Vec::new(),
//!         })
//!     }
//! }
//!
//! let mut registry = BackendRegistry::with_default_targets();
//! registry.register(std::sync::Arc::new(CountingBackend));
//! let out = registry
//!     .get("counting")
//!     .unwrap()
//!     .compile(&Weaver::new(), &generator::instance(6, 1), None)
//!     .unwrap();
//! assert_eq!(out.metrics.pulses, generator::instance(6, 1).num_clauses());
//! ```

use crate::cache::CacheHandle;
use crate::checker::CheckReport;
use crate::codegen::{self, CompiledFpqa};
use crate::coloring::ClauseColoring;
use crate::frontend::Workload;
use crate::pipeline::{Metrics, Weaver};
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use weaver_circuit::{native, Circuit, NativeBasis};
use weaver_sat::{qaoa, Formula};
use weaver_superconducting::{
    device, transpile, CouplingMap, DeviceSpec, RouteError, TranspileResult,
};
use weaver_wqasm::Program;

// ---------------------------------------------------------------------------
// Pass manager
// ---------------------------------------------------------------------------

/// Instrumentation of one lowering pass: wall-clock time plus the pass's
/// work-step count (the paper's Fig. 10a complexity counter, where the pass
/// exposes one).
#[derive(Clone, Debug, PartialEq)]
pub struct PassStat {
    /// Pass name, unique within its backend's pipeline.
    pub name: &'static str,
    /// Wall-clock seconds spent in the pass.
    pub seconds: f64,
    /// Work steps attributed to the pass (0 when uninstrumented).
    pub steps: u64,
}

impl From<&PassStat> for weaver_obs::PassRecord {
    fn from(stat: &PassStat) -> Self {
        weaver_obs::PassRecord {
            name: stat.name.to_string(),
            seconds: stat.seconds,
            steps: stat.steps,
        }
    }
}

/// Runs one named pass body under an obs span (category `"pass"`) and
/// records its duration into the `weaver_pass_duration_seconds{pass=…}`
/// histogram. The body returns `(value, steps)`; the caller gets the value
/// back alongside the canonical [`PassStat`] — every pass in the
/// workspace, whether driven by a [`PassManager`] or hand-rolled in a
/// `compile_circuit` path, reports through this single chokepoint.
pub fn timed_pass<T>(name: &'static str, body: impl FnOnce() -> (T, u64)) -> (T, PassStat) {
    let mut span = weaver_obs::span::span("pass", name);
    let start = Instant::now();
    let (value, steps) = body();
    let seconds = start.elapsed().as_secs_f64();
    span.set_arg("steps", steps);
    drop(span);
    weaver_obs::metrics::histogram_with(
        "weaver_pass_duration_seconds",
        "Wall-clock duration of individual compiler passes.",
        &[("pass", name)],
        &weaver_obs::metrics::DEFAULT_LATENCY_BUCKETS,
    )
    .observe(seconds);
    (
        value,
        PassStat {
            name,
            seconds,
            steps,
        },
    )
}

/// Read-only inputs shared by every pass of one compilation.
pub struct PassContext<'a> {
    /// The compiler configuration (target parameters, wOptimizer options).
    pub weaver: &'a Weaver,
    /// The workload being lowered.
    pub formula: &'a Formula,
    /// Optional shared memo store (clause plans, checker traces).
    pub cache: Option<&'a CacheHandle>,
}

/// One named lowering pass over backend-specific state `S`; returns the
/// work steps it performed.
type PassFn<S> = fn(&mut S, &PassContext<'_>) -> u64;

/// A small pass manager: an ordered list of named passes over a
/// backend-specific lowering state, with per-pass timing and step counting.
///
/// Backends build one per compilation (construction is a handful of
/// function pointers) and surface the same names through
/// [`Backend::passes`].
pub struct PassManager<S> {
    passes: Vec<(&'static str, PassFn<S>)>,
}

impl<S> PassManager<S> {
    /// An empty pipeline.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// Appends a named pass.
    pub fn pass(mut self, name: &'static str, run: PassFn<S>) -> Self {
        self.passes.push((name, run));
        self
    }

    /// The pass names, in execution order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|(n, _)| *n).collect()
    }

    /// Runs every pass in order, returning one [`PassStat`] per pass. Each
    /// pass executes under [`timed_pass`], so it shows up as a `"pass"`
    /// span in the trace and feeds the per-pass duration histogram.
    pub fn run(&self, state: &mut S, ctx: &PassContext<'_>) -> Vec<PassStat> {
        self.passes
            .iter()
            .map(|(name, run)| timed_pass(name, || ((), run(state, ctx))).1)
            .collect()
    }
}

impl<S> Default for PassManager<S> {
    fn default() -> Self {
        PassManager::new()
    }
}

// ---------------------------------------------------------------------------
// Unified output
// ---------------------------------------------------------------------------

/// The target-specific half of a [`CompileOutput`].
#[derive(Clone, Debug)]
pub enum CompiledArtifact {
    /// FPQA path: annotated wQasm + pulse schedule (see [`CompiledFpqa`]).
    Fpqa(CompiledFpqa),
    /// Superconducting path: the routed physical circuit.
    Superconducting {
        /// The routed circuit (coupling-map legal).
        circuit: Circuit,
        /// SWAPs inserted by routing.
        swap_count: usize,
    },
    /// Simulator path: an ideal state-vector run of the native circuit.
    Simulator(SimulatorRun),
}

impl CompiledArtifact {
    /// The artifact as a printable wQasm program: the annotated program on
    /// the FPQA path, the routed/native circuit converted to plain OpenQASM
    /// statements otherwise.
    pub fn to_program(&self) -> Program {
        match self {
            CompiledArtifact::Fpqa(compiled) => compiled.program.clone(),
            CompiledArtifact::Superconducting { circuit, .. } => {
                weaver_wqasm::convert::circuit_to_program(circuit)
            }
            CompiledArtifact::Simulator(run) => {
                weaver_wqasm::convert::circuit_to_program(&run.native)
            }
        }
    }

    /// The artifact's wQasm text. Unlike [`CompiledArtifact::to_program`],
    /// the FPQA path prints its program by reference — no AST clone on the
    /// batch hot path.
    pub fn print_wqasm(&self) -> String {
        match self {
            CompiledArtifact::Fpqa(compiled) => weaver_wqasm::print(&compiled.program),
            _ => weaver_wqasm::print(&self.to_program()),
        }
    }

    /// Colors used by the clause coloring (FPQA only).
    pub fn num_colors(&self) -> Option<usize> {
        match self {
            CompiledArtifact::Fpqa(compiled) => Some(compiled.coloring.num_colors),
            _ => None,
        }
    }

    /// SWAPs inserted by routing (superconducting only).
    pub fn swap_count(&self) -> Option<usize> {
        match self {
            CompiledArtifact::Superconducting { swap_count, .. } => Some(*swap_count),
            _ => None,
        }
    }
}

/// Result of an ideal state-vector execution ([`SimulatorBackend`]).
#[derive(Clone, Debug)]
pub struct SimulatorRun {
    /// The native `{U3, CZ}` circuit that was simulated.
    pub native: Circuit,
    /// Probability of measuring an optimal outcome — the ideal (noiseless)
    /// EPS. For formula workloads, an assignment achieving
    /// [`SimulatorRun::max_satisfied`]; for circuit workloads, the most
    /// likely basis state.
    pub optimal_probability: f64,
    /// The MAX-SAT optimum: the largest simultaneously satisfiable
    /// *effective weight* (= clause count for unweighted formulas; 0 for
    /// circuit workloads, which have no formula objective).
    pub max_satisfied: u64,
    /// How many of the `2^n` basis states achieve the optimum.
    pub num_optimal: usize,
}

/// The unified result every [`Backend`] produces.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// Primary name of the backend that produced this output, so dispatch
    /// sites (e.g. [`Weaver::verify_output`]) can route back to the
    /// producing backend's hooks without re-deriving it from the artifact.
    /// Owned because device-family backends (`sc:grid:3x4`) are minted at
    /// resolution time.
    pub backend: String,
    /// The target-specific compiled artifact.
    pub artifact: CompiledArtifact,
    /// Evaluation metrics (paper §8.1), identical in meaning across targets.
    pub metrics: Metrics,
    /// Per-pass timing/step instrumentation, in execution order.
    pub passes: Vec<PassStat>,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a backend lookup or compilation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendErrorKind {
    /// No backend with the requested name is registered.
    UnknownTarget,
    /// The workload does not fit the target (e.g. register too wide).
    Unsupported,
    /// The workload *kind* does not enter this target (e.g. a circuit
    /// workload on a backend without circuit support).
    UnsupportedWorkload,
}

/// A structured backend failure.
#[derive(Clone, Debug, PartialEq)]
pub struct BackendError {
    /// Failure classification.
    pub kind: BackendErrorKind,
    /// One-line description.
    pub message: String,
}

impl BackendError {
    /// An [`BackendErrorKind::Unsupported`] error for a register wider than
    /// the target's capacity, in the engine's canonical wording.
    pub fn too_many_qubits(num_vars: usize, max_qubits: usize) -> Self {
        BackendError {
            kind: BackendErrorKind::Unsupported,
            message: format!("{num_vars} variables exceed the {max_qubits}-qubit backend"),
        }
    }

    /// The [`BackendErrorKind::UnsupportedWorkload`] rejection of a circuit
    /// workload by a target without circuit support, in the engine's
    /// canonical wording.
    pub fn circuit_unsupported(target: &str) -> Self {
        BackendError {
            kind: BackendErrorKind::UnsupportedWorkload,
            message: format!(
                "target `{target}` does not accept circuit workloads \
                 (circuit-capable targets: simulator, superconducting, sc:*)"
            ),
        }
    }
}

impl From<RouteError> for BackendError {
    /// Routing failures are workload-vs-device mismatches, not lookup
    /// failures.
    fn from(e: RouteError) -> Self {
        BackendError {
            kind: BackendErrorKind::Unsupported,
            message: e.to_string(),
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for BackendError {}

// ---------------------------------------------------------------------------
// The Backend trait
// ---------------------------------------------------------------------------

/// Facts about a backend, surfaced by `weaverc targets`. Owned data: the
/// `sc:*` device family derives names and descriptions from declarative
/// [`DeviceSpec`]s (including parameterized ones like `sc:grid:3x4`).
#[derive(Clone, Debug)]
pub struct BackendInfo {
    /// Primary registry key (the `Target` string).
    pub name: String,
    /// Alternate registry keys (e.g. `sc`).
    pub aliases: Vec<String>,
    /// One-line description.
    pub description: String,
    /// Largest register the target accepts; `None` means unbounded.
    pub max_qubits: Option<usize>,
}

/// A compilation target: lowers a Max-3SAT workload through a named pass
/// pipeline, emits a target-specific artifact, estimates the paper's
/// metrics, and optionally verifies its own output.
///
/// # Examples
///
/// Dispatch through the trait object held by the default registry:
///
/// ```
/// use weaver_core::backend::BackendRegistry;
/// use weaver_core::Weaver;
/// use weaver_sat::generator;
///
/// let registry = BackendRegistry::with_default_targets();
/// let formula = generator::instance(10, 1);
/// let weaver = Weaver::new();
/// for backend in registry.backends() {
///     let out = backend.compile(&weaver, &formula, None).unwrap();
///     assert!(out.metrics.eps > 0.0, "{}", backend.info().name);
///     assert!(!out.passes.is_empty());
/// }
/// ```
pub trait Backend: Send + Sync {
    /// Name, aliases, description, and capacity.
    fn info(&self) -> BackendInfo;

    /// The names of the lowering passes `compile` runs, in order.
    fn passes(&self) -> Vec<&'static str>;

    /// Compiles `formula` for this target under `weaver`'s configuration,
    /// optionally threading a shared memo `cache` through the passes.
    ///
    /// # Errors
    ///
    /// [`BackendErrorKind::Unsupported`] when the workload does not fit the
    /// target (see [`BackendInfo::max_qubits`]).
    fn compile(
        &self,
        weaver: &Weaver,
        formula: &Formula,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError>;

    /// Whether this target accepts direct circuit workloads (front ends
    /// like `wqasm` that enter at the circuit IR). Targets whose lowering
    /// starts from a formula — like the FPQA clause-coloring path — say
    /// `false` and reject circuits with a structured diagnostic.
    fn supports_circuits(&self) -> bool {
        false
    }

    /// Compiles a circuit workload for this target. The default rejects it
    /// with [`BackendErrorKind::UnsupportedWorkload`].
    ///
    /// # Errors
    ///
    /// [`BackendErrorKind::UnsupportedWorkload`] when
    /// [`Backend::supports_circuits`] is false;
    /// [`BackendErrorKind::Unsupported`] when the circuit does not fit the
    /// target.
    fn compile_circuit(
        &self,
        weaver: &Weaver,
        program: &Program,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        let _ = (weaver, program, cache);
        Err(BackendError::circuit_unsupported(&self.info().name))
    }

    /// Dispatches a unified [`Workload`] to the matching entry point:
    /// formulas to [`Backend::compile`], circuits to
    /// [`Backend::compile_circuit`].
    ///
    /// # Errors
    ///
    /// Whatever the dispatched entry point returns.
    fn compile_workload(
        &self,
        weaver: &Weaver,
        workload: &Workload,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        match workload {
            Workload::MaxSat(formula) => self.compile(weaver, formula, cache),
            Workload::Circuit(program) => self.compile_circuit(weaver, program, cache),
        }
    }

    /// Verifies a compilation produced by this backend, if the target has a
    /// checker. The default has none and returns `None`.
    fn verify(
        &self,
        weaver: &Weaver,
        output: &CompileOutput,
        formula: &Formula,
        cache: Option<&CacheHandle>,
    ) -> Option<CheckReport> {
        let _ = (weaver, output, formula, cache);
        None
    }
}

// ---------------------------------------------------------------------------
// FPQA backend
// ---------------------------------------------------------------------------

/// The wOptimizer path: clause coloring → site layout/shuttle planning →
/// compression → annotated wQasm + pulse schedule, verified by the wChecker.
#[derive(Clone, Copy, Debug, Default)]
pub struct FpqaBackend;

struct FpqaLowering {
    options: codegen::CodegenOptions,
    coloring: Option<ClauseColoring>,
    compiled: Option<CompiledFpqa>,
}

impl FpqaBackend {
    fn manager() -> PassManager<FpqaLowering> {
        PassManager::<FpqaLowering>::new()
            .pass("site-layout", |state, ctx| {
                // The site geometry follows the device parameters
                // (interaction distance within the Rydberg radius, homes
                // well separated), and the §5.4 profitability gate falls
                // back to CNOT ladders when the hardware's CCZ is too noisy
                // to pay off.
                let params = &ctx.weaver.fpqa_params;
                state.options.layout = crate::plan::SiteLayout::for_params(params);
                let typical_move = state.options.layout.home_spacing;
                if state.options.compression
                    && !crate::compress::compression_beneficial(params, typical_move)
                {
                    state.options.compression = false;
                }
                0
            })
            .pass("clause-coloring", |state, ctx| {
                state.coloring = Some(codegen::select_coloring(ctx.formula, &state.options));
                0
            })
            .pass("emit-wqasm", |state, ctx| {
                let coloring = state.coloring.take().expect("clause-coloring ran");
                let compiled = codegen::compile_formula_with_coloring_cached(
                    ctx.formula,
                    &ctx.weaver.fpqa_params,
                    &state.options,
                    coloring,
                    ctx.cache,
                );
                let steps = compiled.steps;
                state.compiled = Some(compiled);
                steps
            })
    }
}

impl Backend for FpqaBackend {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "fpqa".to_string(),
            aliases: Vec::new(),
            description: "wOptimizer + wChecker on a neutral-atom FPQA (the paper's path)"
                .to_string(),
            max_qubits: None,
        }
    }

    fn passes(&self) -> Vec<&'static str> {
        FpqaBackend::manager().names()
    }

    fn compile(
        &self,
        weaver: &Weaver,
        formula: &Formula,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        let start = Instant::now();
        let ctx = PassContext {
            weaver,
            formula,
            cache,
        };
        let mut state = FpqaLowering {
            options: weaver.options.clone(),
            coloring: None,
            compiled: None,
        };
        let passes = FpqaBackend::manager().run(&mut state, &ctx);
        let compiled = state.compiled.expect("emit-wqasm ran");
        let metrics = Metrics::for_schedule(
            &compiled.schedule,
            &weaver.fpqa_params,
            formula.num_vars(),
            start.elapsed().as_secs_f64(),
            compiled.steps,
        );
        Ok(CompileOutput {
            backend: self.info().name,
            artifact: CompiledArtifact::Fpqa(compiled),
            metrics,
            passes,
        })
    }

    fn verify(
        &self,
        weaver: &Weaver,
        output: &CompileOutput,
        formula: &Formula,
        cache: Option<&CacheHandle>,
    ) -> Option<CheckReport> {
        match &output.artifact {
            CompiledArtifact::Fpqa(compiled) => {
                Some(weaver.verify_program(&compiled.program, formula, cache))
            }
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Superconducting backend
// ---------------------------------------------------------------------------

/// The superconducting path: QAOA lowering + SABRE routing onto a coupling
/// map (IBM Washington by default). One instance per registry name — the
/// legacy `superconducting` target and every member of the `sc:*` device
/// family ([`SuperconductingBackend::for_device`]) share this type, so the
/// family's lowering is provably the same code path.
#[derive(Clone, Debug)]
pub struct SuperconductingBackend {
    info: BackendInfo,
    coupling: CouplingMap,
}

struct ScLowering {
    coupling: CouplingMap,
    circuit: Option<Circuit>,
    result: Option<Result<TranspileResult, RouteError>>,
}

impl SuperconductingBackend {
    /// The default target: SABRE onto the 127-qubit IBM Washington map.
    pub fn new() -> Self {
        SuperconductingBackend::named(
            "superconducting",
            &["sc"],
            "QAOA lowering + SABRE routing onto the IBM Washington heavy-hex map",
            CouplingMap::ibm_washington(),
        )
    }

    /// A backend routing onto a custom coupling map, under the legacy
    /// `superconducting` registry name.
    pub fn with_coupling(coupling: CouplingMap) -> Self {
        SuperconductingBackend::named(
            "superconducting",
            &["sc"],
            "QAOA lowering + SABRE routing onto a custom coupling map",
            coupling,
        )
    }

    /// The `sc:<device>` target of a declarative [`DeviceSpec`]: same
    /// lowering pipeline, device-specific coupling map and registry name.
    pub fn for_device(spec: &DeviceSpec) -> Self {
        SuperconductingBackend {
            info: BackendInfo {
                name: spec.full_name(),
                aliases: spec.full_aliases(),
                description: format!(
                    "{} — native 2q gate {}, SABRE-routed",
                    spec.description, spec.native_two_qubit
                ),
                max_qubits: Some(spec.num_qubits()),
            },
            coupling: spec.coupling(),
        }
    }

    fn named(name: &str, aliases: &[&str], description: &str, coupling: CouplingMap) -> Self {
        SuperconductingBackend {
            info: BackendInfo {
                name: name.to_string(),
                aliases: aliases.iter().map(|a| a.to_string()).collect(),
                description: description.to_string(),
                max_qubits: Some(coupling.num_qubits()),
            },
            coupling,
        }
    }

    fn manager() -> PassManager<ScLowering> {
        PassManager::<ScLowering>::new()
            .pass("qaoa-lower", |state, ctx| {
                state.circuit = Some(qaoa::build_circuit(
                    ctx.formula,
                    &ctx.weaver.options.qaoa,
                    ctx.weaver.options.measure,
                ));
                0
            })
            .pass("sabre-transpile", |state, ctx| {
                let circuit = state.circuit.take().expect("qaoa-lower ran");
                let result = transpile(
                    &circuit,
                    &state.coupling,
                    &ctx.weaver.superconducting_params,
                );
                let steps = result.as_ref().map_or(0, |r| r.steps);
                state.result = Some(result);
                steps
            })
    }
}

impl Default for SuperconductingBackend {
    fn default() -> Self {
        SuperconductingBackend::new()
    }
}

impl Backend for SuperconductingBackend {
    fn info(&self) -> BackendInfo {
        self.info.clone()
    }

    fn passes(&self) -> Vec<&'static str> {
        SuperconductingBackend::manager().names()
    }

    fn compile(
        &self,
        weaver: &Weaver,
        formula: &Formula,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        if formula.num_vars() > self.coupling.num_qubits() {
            return Err(BackendError::too_many_qubits(
                formula.num_vars(),
                self.coupling.num_qubits(),
            ));
        }
        let start = Instant::now();
        let ctx = PassContext {
            weaver,
            formula,
            cache,
        };
        let mut state = ScLowering {
            coupling: self.coupling.clone(),
            circuit: None,
            result: None,
        };
        let passes = SuperconductingBackend::manager().run(&mut state, &ctx);
        let result = state.result.expect("sabre-transpile ran")?;
        let metrics = Metrics::for_transpiled(&result, start.elapsed().as_secs_f64());
        Ok(CompileOutput {
            backend: self.info.name.clone(),
            artifact: CompiledArtifact::Superconducting {
                circuit: result.circuit,
                swap_count: result.swap_count,
            },
            metrics,
            passes,
        })
    }

    fn supports_circuits(&self) -> bool {
        true
    }

    fn compile_circuit(
        &self,
        weaver: &Weaver,
        program: &Program,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        let _ = cache;
        let start = Instant::now();
        let (ingested, ingest) = timed_pass("ingest-circuit", || {
            let result =
                weaver_wqasm::convert::program_to_circuit(program).map_err(|e| BackendError {
                    kind: BackendErrorKind::Unsupported,
                    message: e.to_string(),
                });
            let steps = result.as_ref().map_or(0, |c| c.gate_count() as u64);
            (result, steps)
        });
        let circuit = ingested?;
        if circuit.num_qubits() > self.coupling.num_qubits() {
            return Err(BackendError::too_many_qubits(
                circuit.num_qubits(),
                self.coupling.num_qubits(),
            ));
        }
        let (routed, route) = timed_pass("sabre-transpile", || {
            let result = transpile(&circuit, &self.coupling, &weaver.superconducting_params);
            let steps = result.as_ref().map_or(0, |r| r.steps);
            (result, steps)
        });
        let result = routed?;
        let metrics = Metrics::for_transpiled(&result, start.elapsed().as_secs_f64());
        Ok(CompileOutput {
            backend: self.info.name.clone(),
            artifact: CompiledArtifact::Superconducting {
                circuit: result.circuit,
                swap_count: result.swap_count,
            },
            metrics,
            passes: vec![ingest, route],
        })
    }
}

// ---------------------------------------------------------------------------
// Simulator backend
// ---------------------------------------------------------------------------

/// The ideal-execution target: lowers the QAOA circuit to the shared native
/// basis and runs it on the state-vector simulator, reporting the noiseless
/// probability of measuring a Max-3SAT-optimal assignment as EPS.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulatorBackend;

impl SimulatorBackend {
    /// Register cap: `2^20` amplitudes (16 MiB) keeps the full-vector run
    /// and the exhaustive optimum scan fast on one core, and covers the
    /// SATLIB uf20 fixture suite.
    pub const MAX_QUBITS: usize = 20;

    fn manager() -> PassManager<SimLowering> {
        PassManager::<SimLowering>::new()
            .pass("qaoa-lower", |state, ctx| {
                // No measurement statements: the backend reads the final
                // amplitudes directly instead of sampling.
                state.circuit = Some(qaoa::build_circuit(
                    ctx.formula,
                    &ctx.weaver.options.qaoa,
                    false,
                ));
                0
            })
            .pass("nativize", |state, _ctx| {
                let circuit = state.circuit.take().expect("qaoa-lower ran");
                let native = native::nativize(&circuit, NativeBasis::U3Cz);
                let steps = native.gate_count() as u64;
                state.native = Some(native);
                steps
            })
            .pass("statevector", |state, ctx| {
                let native = state.native.as_ref().expect("nativize ran");
                state.state = Some(native.statevector());
                // One butterfly sweep over the full vector per gate.
                (native.gate_count() as u64) << ctx.formula.num_vars()
            })
            .pass("ideal-eps", |state, ctx| {
                let vector = state.state.take().expect("statevector ran");
                let formula = ctx.formula;
                // Weighted formulas score basis states by effective weight;
                // unweighted ones keep the satisfied-clause count (same
                // scan, same floating-point accumulation order → identical
                // EPS bytes for every pre-weights workload).
                let weighted = formula.is_weighted();
                let score = |index: usize| -> u64 {
                    if weighted {
                        formula.weight_satisfied_by_index(index)
                    } else {
                        formula.count_satisfied_by_index(index) as u64
                    }
                };
                let mut max_satisfied = 0u64;
                let mut num_optimal = 0usize;
                let mut optimal_probability = 0.0f64;
                for (index, amp) in vector.amplitudes().iter().enumerate() {
                    let satisfied = score(index);
                    if satisfied > max_satisfied {
                        max_satisfied = satisfied;
                        num_optimal = 0;
                        optimal_probability = 0.0;
                    }
                    if satisfied == max_satisfied {
                        num_optimal += 1;
                        optimal_probability += amp.norm_sqr();
                    }
                }
                state.outcome = Some((optimal_probability, max_satisfied, num_optimal));
                (formula.num_clauses() as u64) << formula.num_vars()
            })
    }
}

struct SimLowering {
    circuit: Option<Circuit>,
    native: Option<Circuit>,
    state: Option<weaver_simulator::State>,
    outcome: Option<(f64, u64, usize)>,
}

impl Backend for SimulatorBackend {
    fn info(&self) -> BackendInfo {
        BackendInfo {
            name: "simulator".to_string(),
            aliases: vec!["sim".to_string()],
            description: "ideal state-vector execution (noiseless EPS reference)".to_string(),
            max_qubits: Some(SimulatorBackend::MAX_QUBITS),
        }
    }

    fn passes(&self) -> Vec<&'static str> {
        SimulatorBackend::manager().names()
    }

    fn compile(
        &self,
        weaver: &Weaver,
        formula: &Formula,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        if formula.num_vars() > SimulatorBackend::MAX_QUBITS {
            return Err(BackendError::too_many_qubits(
                formula.num_vars(),
                SimulatorBackend::MAX_QUBITS,
            ));
        }
        let start = Instant::now();
        let ctx = PassContext {
            weaver,
            formula,
            cache,
        };
        let mut state = SimLowering {
            circuit: None,
            native: None,
            state: None,
            outcome: None,
        };
        let passes = SimulatorBackend::manager().run(&mut state, &ctx);
        let native = state.native.expect("nativize ran");
        let (optimal_probability, max_satisfied, num_optimal) =
            state.outcome.expect("ideal-eps ran");
        let metrics = Metrics {
            compilation_seconds: start.elapsed().as_secs_f64(),
            // An ideal run has no hardware clock and no atom motion.
            execution_micros: 0.0,
            eps: optimal_probability,
            pulses: native.gate_count(),
            motion_ops: 0,
            steps: passes.iter().map(|p| p.steps).sum(),
        };
        Ok(CompileOutput {
            backend: self.info().name,
            artifact: CompiledArtifact::Simulator(SimulatorRun {
                native,
                optimal_probability,
                max_satisfied,
                num_optimal,
            }),
            metrics,
            passes,
        })
    }

    fn supports_circuits(&self) -> bool {
        true
    }

    fn compile_circuit(
        &self,
        weaver: &Weaver,
        program: &Program,
        cache: Option<&CacheHandle>,
    ) -> Result<CompileOutput, BackendError> {
        let _ = (weaver, cache);
        let start = Instant::now();
        let (ingested, ingest) = timed_pass("ingest-circuit", || {
            let result =
                weaver_wqasm::convert::program_to_circuit(program).map_err(|e| BackendError {
                    kind: BackendErrorKind::Unsupported,
                    message: e.to_string(),
                });
            let steps = result.as_ref().map_or(0, |c| c.gate_count() as u64);
            (result, steps)
        });
        let circuit = ingested?;
        if circuit.num_qubits() > SimulatorBackend::MAX_QUBITS {
            return Err(BackendError::too_many_qubits(
                circuit.num_qubits(),
                SimulatorBackend::MAX_QUBITS,
            ));
        }
        let (native, nativize_stat) = timed_pass("nativize", || {
            let native = native::nativize(&circuit, NativeBasis::U3Cz);
            let steps = native.gate_count() as u64;
            (native, steps)
        });
        let (vector, sim_stat) = timed_pass("statevector", || {
            let vector = native.statevector();
            let steps = (native.gate_count() as u64) << native.num_qubits();
            (vector, steps)
        });
        // Without a formula objective, "success" is the circuit's most
        // likely outcome: EPS = peak basis-state probability.
        let ((optimal_probability, num_optimal), peak) = timed_pass("peak-probability", || {
            let optimal_probability = vector
                .amplitudes()
                .iter()
                .map(|amp| amp.norm_sqr())
                .fold(0.0f64, f64::max);
            // Nativization rewrites gates into {U3, CZ}, so probabilities
            // that are equal in exact arithmetic can differ in the last few
            // ulps; count peaks up to a relative tolerance rather than
            // bitwise.
            let tolerance = optimal_probability * 1e-9;
            let num_optimal = vector
                .amplitudes()
                .iter()
                .filter(|amp| amp.norm_sqr() >= optimal_probability - tolerance)
                .count();
            (
                (optimal_probability, num_optimal),
                1u64 << native.num_qubits(),
            )
        });
        let passes = vec![ingest, nativize_stat, sim_stat, peak];
        let metrics = Metrics {
            compilation_seconds: start.elapsed().as_secs_f64(),
            execution_micros: 0.0,
            eps: optimal_probability,
            pulses: native.gate_count(),
            motion_ops: 0,
            steps: passes.iter().map(|p| p.steps).sum(),
        };
        Ok(CompileOutput {
            backend: self.info().name,
            artifact: CompiledArtifact::Simulator(SimulatorRun {
                native,
                optimal_probability,
                max_satisfied: 0,
                num_optimal,
            }),
            metrics,
            passes,
        })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A name → [`Backend`] table: the single place a target plugs into the
/// compiler. Lookups match the primary name or any alias;
/// [`BackendRegistry::resolve`] additionally mints `sc:*` device-family
/// backends from parameterized names (`sc:grid:<w>x<h>`).
///
/// # Examples
///
/// ```
/// use weaver_core::backend::BackendRegistry;
/// use weaver_core::Weaver;
/// use weaver_sat::generator;
///
/// let registry = BackendRegistry::with_default_targets();
/// assert_eq!(
///     registry.names(),
///     vec!["fpqa", "superconducting", "simulator", "sc:line", "sc:grid", "sc:eagle", "sc:heron"]
/// );
///
/// // Aliases resolve to the same backend.
/// let by_alias = registry.get("sc").unwrap();
/// assert_eq!(by_alias.info().name, "superconducting");
/// assert_eq!(registry.get("sc:washington").unwrap().info().name, "sc:eagle");
///
/// // Retarget one workload by string — including a device minted on demand.
/// let formula = generator::instance(10, 1);
/// let weaver = Weaver::new();
/// let ideal = registry
///     .get("simulator")
///     .unwrap()
///     .compile(&weaver, &formula, None)
///     .unwrap();
/// assert!(ideal.metrics.eps > 0.0 && ideal.metrics.eps <= 1.0);
/// let grid = registry.resolve("sc:grid:4x5").unwrap();
/// assert_eq!(grid.info().max_qubits, Some(20));
/// ```
pub struct BackendRegistry {
    backends: Vec<Arc<dyn Backend>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        BackendRegistry {
            backends: Vec::new(),
        }
    }

    /// The registry with the three core targets — `fpqa`,
    /// `superconducting` (alias `sc`), `simulator` (alias `sim`) — followed
    /// by the built-in `sc:*` device family ([`DeviceSpec::builtin`]).
    pub fn with_default_targets() -> Self {
        let mut registry = BackendRegistry::new();
        registry.register(Arc::new(FpqaBackend));
        registry.register(Arc::new(SuperconductingBackend::new()));
        registry.register(Arc::new(SimulatorBackend));
        for spec in DeviceSpec::builtin() {
            registry.register(Arc::new(SuperconductingBackend::for_device(&spec)));
        }
        registry
    }

    /// The process-wide shared registry of default targets, used by every
    /// dispatch site ([`Weaver::compile_target`], the batch engine,
    /// `weaverc`, the benchmark harness).
    pub fn global() -> &'static BackendRegistry {
        static GLOBAL: OnceLock<BackendRegistry> = OnceLock::new();
        GLOBAL.get_or_init(BackendRegistry::with_default_targets)
    }

    /// Adds a backend. A duplicate primary name replaces the old entry.
    pub fn register(&mut self, backend: Arc<dyn Backend>) {
        let name = backend.info().name;
        self.backends.retain(|b| b.info().name != name);
        self.backends.push(backend);
    }

    /// Looks up a registered backend by primary name or alias.
    pub fn get(&self, name: &str) -> Option<&dyn Backend> {
        self.entry(name).map(|b| b.as_ref())
    }

    fn entry(&self, name: &str) -> Option<&Arc<dyn Backend>> {
        self.backends.iter().find(|b| {
            let info = b.info();
            info.name == name || info.aliases.iter().any(|a| a == name)
        })
    }

    /// Resolves a target name to a backend: a registered name or alias
    /// first, then the parameterized `sc:*` namespace — `sc:grid:<w>x<h>`
    /// mints a [`SuperconductingBackend`] for that lattice on demand, so
    /// the device family is an open-ended axis rather than a fixed table.
    ///
    /// # Errors
    ///
    /// [`BackendErrorKind::UnknownTarget`], carrying the device-family
    /// diagnostic (unknown device, malformed or oversized grid dims) for
    /// `sc:*` names and the registry's known-target list otherwise.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn Backend>, BackendError> {
        if let Some(backend) = self.entry(name) {
            return Ok(backend.clone());
        }
        if name.starts_with(device::FAMILY_PREFIX) {
            let spec = DeviceSpec::resolve(name).map_err(|message| BackendError {
                kind: BackendErrorKind::UnknownTarget,
                message,
            })?;
            return Ok(Arc::new(SuperconductingBackend::for_device(&spec)));
        }
        Err(self.unknown_target(name))
    }

    /// Registered backends, in registration order.
    pub fn backends(&self) -> impl Iterator<Item = &dyn Backend> {
        self.backends.iter().map(|b| b.as_ref())
    }

    /// Primary names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.info().name).collect()
    }

    /// The canonical [`BackendErrorKind::UnknownTarget`] error for `name`.
    pub fn unknown_target(&self, name: &str) -> BackendError {
        BackendError {
            kind: BackendErrorKind::UnknownTarget,
            message: format!(
                "unknown target `{name}` (known targets: {}; arbitrary grids via sc:grid:<w>x<h>)",
                self.names().join(", ")
            ),
        }
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        BackendRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::generator;

    #[test]
    fn backend_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BackendRegistry>();
        assert_send_sync::<CompileOutput>();
        assert_send_sync::<FpqaBackend>();
        assert_send_sync::<SuperconductingBackend>();
        assert_send_sync::<SimulatorBackend>();
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        let registry = BackendRegistry::with_default_targets();
        for (key, name) in [
            ("fpqa", "fpqa"),
            ("superconducting", "superconducting"),
            ("sc", "superconducting"),
            ("simulator", "simulator"),
            ("sim", "simulator"),
            ("sc:line", "sc:line"),
            ("sc:grid", "sc:grid"),
            ("sc:eagle", "sc:eagle"),
            ("sc:washington", "sc:eagle"),
            ("sc:heron", "sc:heron"),
            ("sc:torino", "sc:heron"),
        ] {
            assert_eq!(registry.get(key).unwrap().info().name, name);
        }
        assert!(registry.get("ion-trap").is_none());
        let err = registry.unknown_target("ion-trap");
        assert_eq!(err.kind, BackendErrorKind::UnknownTarget);
        assert!(err.message.contains("fpqa, superconducting, simulator"));
        assert!(err.message.contains("sc:line, sc:grid, sc:eagle, sc:heron"));
    }

    #[test]
    fn resolve_mints_parameterized_grid_devices() {
        let registry = BackendRegistry::with_default_targets();
        let grid = registry.resolve("sc:grid:4x5").unwrap();
        assert_eq!(grid.info().name, "sc:grid:4x5");
        assert_eq!(grid.info().max_qubits, Some(20));
        // Not registered — minted per resolution, equal across calls.
        assert!(registry.get("sc:grid:4x5").is_none());
        let again = registry.resolve("sc:grid:4x5").unwrap();
        assert_eq!(again.info().name, grid.info().name);
        // Malformed and oversized grids are structured errors.
        for bad in ["sc:grid:0x4", "sc:grid:axb", "sc:grid:100x100"] {
            let err = registry.resolve(bad).err().expect("must fail");
            assert_eq!(err.kind, BackendErrorKind::UnknownTarget, "{bad}");
        }
        let err = registry.resolve("sc:osprey").err().expect("must fail");
        assert!(err.message.contains("known devices"), "{}", err.message);
    }

    #[test]
    fn device_family_routes_within_capacity() {
        let registry = BackendRegistry::with_default_targets();
        let weaver = Weaver::new();
        let f = generator::instance(10, 1);
        for name in ["sc:line", "sc:grid", "sc:eagle", "sc:heron", "sc:grid:3x4"] {
            let backend = registry.resolve(name).unwrap();
            let out = backend.compile(&weaver, &f, None).unwrap();
            assert_eq!(out.backend, backend.info().name, "{name}");
            assert!(out.artifact.swap_count().is_some(), "{name}");
        }
        // A workload wider than the device is a typed error, not a panic.
        let tiny = registry.resolve("sc:grid:2x2").unwrap();
        let err = tiny.compile(&weaver, &f, None).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Unsupported);
        assert!(err.message.contains("exceed the 4-qubit backend"), "{err}");
    }

    #[test]
    fn every_backend_names_its_passes() {
        let registry = BackendRegistry::with_default_targets();
        for backend in registry.backends() {
            let names = backend.passes();
            assert!(!names.is_empty(), "{}", backend.info().name);
            let out = backend
                .compile(&Weaver::new(), &generator::instance(8, 1), None)
                .unwrap();
            let ran: Vec<&'static str> = out.passes.iter().map(|p| p.name).collect();
            assert_eq!(ran, names, "{}", backend.info().name);
            assert!(out.passes.iter().all(|p| p.seconds >= 0.0));
        }
    }

    #[test]
    fn simulator_reports_ideal_eps() {
        let f = generator::instance(10, 1);
        let out = SimulatorBackend.compile(&Weaver::new(), &f, None).unwrap();
        let CompiledArtifact::Simulator(run) = &out.artifact else {
            panic!("simulator artifact expected");
        };
        assert!(run.optimal_probability > 0.0 && run.optimal_probability <= 1.0);
        assert_eq!(out.metrics.eps, run.optimal_probability);
        assert!(run.max_satisfied <= f.num_clauses() as u64);
        assert!(run.num_optimal >= 1);
        assert_eq!(out.metrics.motion_ops, 0);
        assert!(out.metrics.pulses > 0);
    }

    #[test]
    fn weighted_formula_changes_simulator_optimum() {
        use weaver_sat::{Clause, Lit};
        // One heavy clause (x0), one light (¬x0): the weighted optimum is
        // 5 (satisfy the heavy one), not the clause count.
        let f = Formula::new(
            1,
            vec![
                Clause::weighted(vec![Lit::pos(0)], 5),
                Clause::weighted(vec![Lit::neg(0)], 2),
            ],
        );
        let out = SimulatorBackend.compile(&Weaver::new(), &f, None).unwrap();
        let CompiledArtifact::Simulator(run) = &out.artifact else {
            panic!("simulator artifact expected");
        };
        assert_eq!(run.max_satisfied, 5);
        assert_eq!(run.num_optimal, 1);
    }

    #[test]
    fn circuit_workloads_route_by_backend_capability() {
        let program = weaver_wqasm::parse("qreg q[2];\nh q[0];\ncx q[0], q[1];\n").unwrap();
        let workload = Workload::Circuit(program.clone());
        let weaver = Weaver::new();

        // FPQA declares no circuit support and rejects structurally.
        assert!(!FpqaBackend.supports_circuits());
        let err = FpqaBackend
            .compile_workload(&weaver, &workload, None)
            .unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::UnsupportedWorkload);
        assert!(err.message.contains("`fpqa`"), "{err}");
        assert!(err.message.contains("circuit-capable"), "{err}");

        // The simulator runs it: a Bell pair peaks at p = 0.5 on two states.
        assert!(SimulatorBackend.supports_circuits());
        let out = SimulatorBackend
            .compile_workload(&weaver, &workload, None)
            .unwrap();
        let CompiledArtifact::Simulator(run) = &out.artifact else {
            panic!("simulator artifact expected");
        };
        assert!((run.optimal_probability - 0.5).abs() < 1e-9);
        assert_eq!(run.num_optimal, 2);
        assert_eq!(run.max_satisfied, 0);

        // Superconducting targets route it and report SWAP counts.
        let sc = SuperconductingBackend::new();
        assert!(sc.supports_circuits());
        let out = sc.compile_workload(&weaver, &workload, None).unwrap();
        assert!(out.artifact.swap_count().is_some());
        let ran: Vec<&str> = out.passes.iter().map(|p| p.name).collect();
        assert_eq!(ran, vec!["ingest-circuit", "sabre-transpile"]);

        // MaxSat workloads dispatch to the formula path unchanged.
        let f = generator::instance(8, 1);
        let via_workload = FpqaBackend
            .compile_workload(&weaver, &Workload::MaxSat(f.clone()), None)
            .unwrap();
        let direct = FpqaBackend.compile(&weaver, &f, None).unwrap();
        assert_eq!(
            via_workload.artifact.print_wqasm(),
            direct.artifact.print_wqasm()
        );
    }

    #[test]
    fn oversized_circuits_are_typed_errors() {
        let program = weaver_wqasm::parse("qreg q[25];\nh q[0];\n").unwrap();
        let err = SimulatorBackend
            .compile_circuit(&Weaver::new(), &program, None)
            .unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Unsupported);
        assert!(err.message.contains("exceed the 20-qubit backend"));
    }

    #[test]
    fn simulator_rejects_oversized_registers() {
        let f = generator::instance(50, 1);
        let err = SimulatorBackend
            .compile(&Weaver::new(), &f, None)
            .unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::Unsupported);
        assert!(err.message.contains("exceed the 20-qubit backend"));
    }

    #[test]
    fn fpqa_backend_verifies_its_own_output() {
        let f = generator::instance(10, 2);
        let weaver = Weaver::new();
        let out = FpqaBackend.compile(&weaver, &f, None).unwrap();
        let report = FpqaBackend
            .verify(&weaver, &out, &f, None)
            .expect("fpqa checks");
        assert!(report.passed(), "{:?}", report.errors);
        // Targets without a checker return None.
        let sc = SuperconductingBackend::new()
            .compile(&weaver, &f, None)
            .unwrap();
        assert!(SuperconductingBackend::new()
            .verify(&weaver, &sc, &f, None)
            .is_none());
    }
}
