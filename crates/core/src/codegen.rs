//! wQasm + pulse-schedule code generation for the FPQA path (paper Fig. 3
//! bottom, §5).
//!
//! The generator executes every annotation on a mirror [`FpqaDevice`] while
//! emitting it, so any geometric or ordering violation is caught at compile
//! time; the independent wChecker then re-validates the emitted program
//! from scratch.
//!
//! Per color (set of variable-disjoint clauses) the emitted structure is:
//!
//! 1. motion: controls shuttle to their interaction sites (batched per
//!    Algorithm 2),
//! 2. Raman segment pulses (fused single-qubit gates),
//! 3. one **global Rydberg pulse per entangler slot** — all clauses of the
//!    color fire their k-th `CCZ`/`CZ` simultaneously,
//! 4. motion between configurations (triangle → pair, guests home, …),
//! 5. closing Raman segments, atoms return home.

use crate::cache::{CacheHandle, Digest, Fingerprint};
use crate::coloring::{color_clauses, ClauseColoring};
use crate::compress::{append_compressed_clause, assign_roles};
use crate::plan::{batch_moves, safe_shuttle_order, AtomMove, SiteLayout};
use std::collections::HashMap;
use weaver_circuit::euler::{decompose_u3, decompose_zyx, is_identity_u3};
use weaver_circuit::{Circuit, Gate, Instruction};
use weaver_fpqa::{FpqaDevice, FpqaParams, Location, Point, PulseOp, PulseSchedule};
use weaver_sat::{qaoa::QaoaParams, Clause, Formula, PhasePolynomial};
use weaver_simulator::Matrix;
use weaver_wqasm::{Annotation, BindTarget, Program, QubitRef, ShuttleAxis, Statement};

/// Options controlling the wOptimizer passes (ablation switches of
/// DESIGN.md §6).
#[derive(Clone, Debug, PartialEq)]
pub struct CodegenOptions {
    /// Apply 3-qubit gate compression (§5.4). Off ⇒ Fig. 6 CNOT ladders.
    pub compression: bool,
    /// Batch order-preserving moves into parallel shuttles (Algorithm 2).
    pub parallel_shuttling: bool,
    /// Use DSatur for clause coloring; off ⇒ first-fit greedy (ablation).
    pub dsatur: bool,
    /// QAOA parameters.
    pub qaoa: QaoaParams,
    /// Site geometry.
    pub layout: SiteLayout,
    /// Append measurements on every qubit.
    pub measure: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            compression: true,
            parallel_shuttling: true,
            dsatur: true,
            qaoa: QaoaParams::default(),
            layout: SiteLayout::for_default_params(),
            measure: true,
        }
    }
}

/// A compiled FPQA program: the wQasm output, its pulse schedule, the
/// logical circuit of the emitted statements, and instrumentation.
#[derive(Clone, Debug)]
pub struct CompiledFpqa {
    /// The annotated wQasm program.
    pub program: Program,
    /// The low-level pulse schedule (timing/EPS input).
    pub schedule: PulseSchedule,
    /// The logical circuit the statements encode (ignoring annotations).
    pub logical: Circuit,
    /// Clause coloring used.
    pub coloring: ClauseColoring,
    /// Work-step counter (compilation-complexity instrumentation).
    pub steps: u64,
}

/// Compiles a Max-3SAT formula to an annotated wQasm program for an FPQA
/// backend.
///
/// # Panics
///
/// Panics if the internal device simulation rejects an emitted annotation —
/// that is a compiler bug by construction, not a user error.
pub fn compile_formula(
    formula: &Formula,
    params: &FpqaParams,
    options: &CodegenOptions,
) -> CompiledFpqa {
    compile_formula_cached(formula, params, options, None)
}

/// Like [`compile_formula`], but consulting `cache` for memoized per-clause
/// execution plans (shared across QAOA layers and across batch jobs that
/// repeat a clause under the same options and layout). The emitted program
/// is byte-identical with and without a cache.
pub fn compile_formula_cached(
    formula: &Formula,
    params: &FpqaParams,
    options: &CodegenOptions,
    cache: Option<&CacheHandle>,
) -> CompiledFpqa {
    let coloring = select_coloring(formula, options);
    compile_formula_with_coloring_cached(formula, params, options, coloring, cache)
}

/// The coloring policy the options select: DSatur, or first-fit greedy for
/// the ablation. Single source of truth shared by [`compile_formula_cached`]
/// and the backend pass pipeline.
pub(crate) fn select_coloring(formula: &Formula, options: &CodegenOptions) -> ClauseColoring {
    if options.dsatur {
        color_clauses(formula)
    } else {
        crate::coloring::greedy_first_fit(&crate::coloring::conflict_graph(formula))
    }
}

/// Like [`compile_formula`], but with an externally supplied clause
/// coloring (used e.g. by the DPQA baseline, which spends exponential
/// search on an exactly optimal coloring).
///
/// # Panics
///
/// Panics if the coloring is invalid for the formula (adjacent clauses
/// sharing a color) — the emitter's device simulation would reject the
/// resulting overlapping interaction sites.
pub fn compile_formula_with_coloring(
    formula: &Formula,
    params: &FpqaParams,
    options: &CodegenOptions,
    coloring: ClauseColoring,
) -> CompiledFpqa {
    compile_formula_with_coloring_cached(formula, params, options, coloring, None)
}

/// [`compile_formula_with_coloring`] with an optional clause-plan cache.
pub fn compile_formula_with_coloring_cached(
    formula: &Formula,
    params: &FpqaParams,
    options: &CodegenOptions,
    coloring: ClauseColoring,
    cache: Option<&CacheHandle>,
) -> CompiledFpqa {
    let mut emitter = Emitter::new(formula, params, options, coloring.clone(), cache);
    emitter.emit_program();
    CompiledFpqa {
        program: emitter.program,
        schedule: emitter.schedule,
        logical: emitter.logical,
        coloring,
        steps: emitter.steps,
    }
}

/// Per-clause execution plan: alternating Raman segments and entanglers,
/// plus the site configuration required at each entangler.
struct ClauseExec {
    vars: Vec<usize>,
    segments: Vec<Vec<Instruction>>,
    entanglers: Vec<Instruction>,
    /// `configs[k]`: required off-home positions at entangler `k`.
    configs: Vec<Vec<(usize, Point)>>,
}

/// The memoizable part of a [`ClauseExec`] — everything derived purely from
/// (clause literals, γ, compression flag, site layout), shared through a
/// [`CacheHandle`] across QAOA layers and across batch jobs repeating a
/// clause under identical options.
pub(crate) struct ClausePlan {
    segments: Vec<Vec<Instruction>>,
    entanglers: Vec<Instruction>,
    configs: Vec<Vec<(usize, Point)>>,
}

/// Content key of a clause plan.
fn clause_plan_key(clause: &Clause, gamma: f64, compression: bool, layout: &SiteLayout) -> Digest {
    let mut fp = Fingerprint::new();
    fp.tag(0xCE).str(crate::cache::COMPILER_VERSION);
    fp.usize(clause.lits().len());
    for lit in clause.lits() {
        fp.u64(lit.to_dimacs() as u64);
    }
    fp.f64(gamma)
        .bool(compression)
        .f64(layout.home_spacing)
        .f64(layout.interaction_distance)
        .f64(layout.pair_lift);
    fp.digest()
}

struct Emitter<'a> {
    formula: &'a Formula,
    params: &'a FpqaParams,
    options: &'a CodegenOptions,
    cache: Option<&'a CacheHandle>,
    coloring: ClauseColoring,
    layout: SiteLayout,
    device: FpqaDevice,
    traps: Vec<Point>,
    trap_index: HashMap<(i64, i64), usize>,
    program: Program,
    pending: Vec<Annotation>,
    schedule: PulseSchedule,
    logical: Circuit,
    steps: u64,
}

fn point_key(p: Point) -> (i64, i64) {
    ((p.x * 1000.0).round() as i64, (p.y * 1000.0).round() as i64)
}

impl<'a> Emitter<'a> {
    fn new(
        formula: &'a Formula,
        params: &'a FpqaParams,
        options: &'a CodegenOptions,
        coloring: ClauseColoring,
        cache: Option<&'a CacheHandle>,
    ) -> Self {
        Emitter {
            formula,
            params,
            options,
            cache,
            coloring,
            layout: options.layout,
            device: FpqaDevice::new(params.clone()),
            traps: Vec::new(),
            trap_index: HashMap::new(),
            program: Program::new(),
            pending: Vec::new(),
            schedule: PulseSchedule::new(),
            logical: Circuit::new(formula.num_vars()),
            steps: 0,
        }
    }

    fn register_trap(&mut self, p: Point) -> usize {
        let key = point_key(p);
        if let Some(&idx) = self.trap_index.get(&key) {
            return idx;
        }
        let idx = self.traps.len();
        self.traps.push(p);
        self.trap_index.insert(key, idx);
        idx
    }

    fn trap_of(&self, p: Point) -> usize {
        *self
            .trap_index
            .get(&point_key(p))
            .unwrap_or_else(|| panic!("no trap registered at {p}"))
    }

    // ---- program emission ---------------------------------------------------

    fn emit_program(&mut self) {
        let n = self.formula.num_vars();
        self.collect_traps();

        self.program.statements.push(Statement::QregDecl {
            name: "q".to_string(),
            size: n,
        });
        if self.options.measure {
            self.program.statements.push(Statement::CregDecl {
                name: "c".to_string(),
                size: n,
            });
        }
        // Device setup: SLM layer + home bindings.
        let slm = Annotation::Slm {
            positions: self.traps.iter().map(|p| (p.x, p.y)).collect(),
        };
        self.device
            .init_slm(&self.traps.clone())
            .expect("trap layout violates spacing");
        self.program.statements.push(Statement::Standalone(slm));
        for q in 0..n {
            let home_idx = self.trap_of(self.layout.home(q));
            self.device
                .bind(q, Location::Slm(home_idx))
                .expect("home binding failed");
            self.program
                .statements
                .push(Statement::Standalone(Annotation::Bind {
                    qubit: QubitRef::q(q),
                    target: BindTarget::Slm(home_idx),
                }));
        }

        // Initialization layer: global H.
        self.emit_global_raman(&Gate::H.matrix(), n);

        let layers = self.options.qaoa.layers.clone();
        for (gamma, beta) in layers {
            self.emit_cost_evolution(gamma);
            // Mixer: global RX(2β).
            self.emit_global_raman(&Gate::Rx(2.0 * beta).matrix(), n);
        }

        if self.options.measure {
            // Any pending motion annotations attach as standalone before the
            // measurements.
            let pending = std::mem::take(&mut self.pending);
            self.program
                .statements
                .extend(pending.into_iter().map(Statement::Standalone));
            for q in 0..n {
                self.program.statements.push(Statement::Measure {
                    qubit: QubitRef::q(q),
                    target: Some(QubitRef {
                        register: "c".to_string(),
                        index: q,
                    }),
                });
                self.logical.measure(q);
            }
        } else {
            let pending = std::mem::take(&mut self.pending);
            self.program
                .statements
                .extend(pending.into_iter().map(Statement::Standalone));
        }
    }

    /// Registers every SLM trap the whole program will ever use.
    fn collect_traps(&mut self) {
        for q in 0..self.formula.num_vars() {
            self.register_trap(self.layout.home(q));
        }
        for clause in self.formula.clauses() {
            match clause.lits().len() {
                3 => {
                    let (_, _, t) = assign_roles(clause);
                    self.register_trap(self.layout.triangle_left(t));
                    self.register_trap(self.layout.triangle_right(t));
                    if self.options.compression {
                        self.register_trap(self.layout.pair_left(t));
                        self.register_trap(self.layout.pair_right(t));
                    } else {
                        // CNOT-ladder visits use guest traps at each host.
                        let mut vars: Vec<usize> = clause.vars().collect();
                        vars.sort_unstable();
                        for v in vars {
                            self.register_trap(self.layout.guest(v));
                        }
                    }
                }
                2 => {
                    let mut vars: Vec<usize> = clause.vars().collect();
                    vars.sort_unstable();
                    self.register_trap(self.layout.guest(vars[1]));
                }
                _ => {}
            }
        }
    }

    // ---- cost evolution -----------------------------------------------------

    fn emit_cost_evolution(&mut self, gamma: f64) {
        for color in 0..self.coloring.num_colors {
            let group_len = self.coloring.clauses_of_color(color).len();
            let execs: Vec<ClauseExec> = (0..group_len)
                .map(|k| {
                    // Copy the clause index out so the coloring borrow ends
                    // before the mutable plan_clause call.
                    let ci = self.coloring.clauses_of_color(color)[k];
                    // Weighted MAX-SAT: a clause of effective weight w
                    // evolves under w·(its satisfaction polynomial), and the
                    // fragment builders are linear in gamma — so lowering at
                    // gamma·w is exact. Weight folds into the memo key via
                    // gamma, and weight-1 clauses lower byte-identically to
                    // the unweighted path (gamma · 1 ≡ gamma).
                    let w = self.formula.effective_weight(ci);
                    let clause_gamma = if w == 1 { gamma } else { gamma * w as f64 };
                    self.plan_clause(&self.formula.clauses()[ci].clone(), clause_gamma)
                })
                .collect();
            self.emit_color(&execs);
        }
    }

    /// Builds the per-clause execution plan from its fragment circuit,
    /// consulting the clause-plan memo first.
    fn plan_clause(&mut self, clause: &Clause, gamma: f64) -> ClauseExec {
        let mut vars: Vec<usize> = clause.vars().collect();
        vars.sort_unstable();
        let key = self
            .cache
            .map(|_| clause_plan_key(clause, gamma, self.options.compression, &self.layout));
        if let (Some(cache), Some(key)) = (self.cache, &key) {
            if let Some(plan) = cache.clause_plan(key) {
                return ClauseExec {
                    vars,
                    segments: plan.segments.clone(),
                    entanglers: plan.entanglers.clone(),
                    configs: plan.configs.clone(),
                };
            }
        }
        let n = self.formula.num_vars();
        let mut fragment = Circuit::new(n);
        if self.options.compression {
            append_compressed_clause(&mut fragment, clause, gamma);
        } else {
            let poly = PhasePolynomial::from_clause(clause);
            weaver_sat::qaoa::append_cost_evolution(&mut fragment, &poly, gamma);
        }
        // Split into segments and entanglers; the fragment builders emit
        // only 1q gates, CZ, CCZ (CX appears in the uncompressed ladder).
        let mut segments: Vec<Vec<Instruction>> = vec![Vec::new()];
        let mut entanglers: Vec<Instruction> = Vec::new();
        for instr in fragment.instructions() {
            match instr.gate {
                Gate::Cz | Gate::Ccz => {
                    entanglers.push(instr.clone());
                    segments.push(Vec::new());
                }
                Gate::Cx => {
                    // Uncompressed ladders emit CX; lower to H-CZ-H here so
                    // every entangler is Rydberg-native.
                    let (ctl, tgt) = (instr.qubits[0], instr.qubits[1]);
                    segments
                        .last_mut()
                        .expect("segment")
                        .push(Instruction::new(Gate::H, vec![tgt]));
                    entanglers.push(Instruction::new(Gate::Cz, vec![ctl, tgt]));
                    segments.push(vec![Instruction::new(Gate::H, vec![tgt])]);
                }
                ref g if g.num_qubits() == 1 => {
                    segments.last_mut().expect("segment").push(instr.clone());
                }
                ref g => panic!("unexpected gate {g} in clause fragment"),
            }
        }

        let configs = self.clause_configs(clause, &entanglers);
        if let (Some(cache), Some(key)) = (self.cache, key) {
            cache.store_clause_plan(
                key,
                ClausePlan {
                    segments: segments.clone(),
                    entanglers: entanglers.clone(),
                    configs: configs.clone(),
                },
            );
        }
        ClauseExec {
            vars,
            segments,
            entanglers,
            configs,
        }
    }

    /// Site configuration for each entangler of a clause.
    fn clause_configs(
        &self,
        clause: &Clause,
        entanglers: &[Instruction],
    ) -> Vec<Vec<(usize, Point)>> {
        let l = self.layout;
        if self.options.compression {
            match clause.lits().len() {
                3 => {
                    let (u, v, t) = assign_roles(clause);
                    let tri = vec![(u, l.triangle_left(t)), (v, l.triangle_right(t))];
                    let pair = vec![(u, l.pair_left(t)), (v, l.pair_right(t))];
                    debug_assert_eq!(entanglers.len(), 4);
                    vec![tri.clone(), tri, pair.clone(), pair]
                }
                2 => {
                    let mut vs: Vec<usize> = clause.vars().collect();
                    vs.sort_unstable();
                    let cfg = vec![(vs[0], l.guest(vs[1]))];
                    vec![cfg.clone(); entanglers.len()]
                }
                _ => Vec::new(),
            }
        } else {
            // Ladder mode: each CZ(x, y) hosts the pulse at y's home with x
            // visiting the guest trap.
            entanglers
                .iter()
                .map(|e| {
                    let (x, y) = (e.qubits[0], e.qubits[1]);
                    vec![(x, l.guest(y))]
                })
                .collect()
        }
    }

    /// Emits one color group: slot-by-slot motion, Raman segments, and one
    /// global Rydberg pulse per entangler slot.
    fn emit_color(&mut self, execs: &[ClauseExec]) {
        let max_slots = execs.iter().map(|e| e.entanglers.len()).max().unwrap_or(0);
        for slot in 0..max_slots {
            // Desired positions this slot: config for active clauses, home
            // for everything else touched by this color.
            let mut desired: HashMap<usize, Point> = HashMap::new();
            for exec in execs {
                for &v in &exec.vars {
                    desired.insert(v, self.layout.home(v));
                }
                if slot < exec.entanglers.len() {
                    for &(v, p) in &exec.configs[slot] {
                        desired.insert(v, p);
                    }
                }
            }
            self.emit_motion_to(&desired);

            // Raman segments of active clauses.
            for exec in execs {
                if slot < exec.entanglers.len() {
                    let seg = exec.segments[slot].clone();
                    self.emit_raman_segment(&seg);
                }
            }

            // One global Rydberg pulse for all slot-`slot` entanglers.
            let pulse_gates: Vec<Instruction> = execs
                .iter()
                .filter(|e| slot < e.entanglers.len())
                .map(|e| e.entanglers[slot].clone())
                .collect();
            self.emit_rydberg(&pulse_gates);
        }

        // Closing segments, then everyone home.
        for exec in execs {
            let seg = exec.segments.last().cloned().unwrap_or_default();
            self.emit_raman_segment(&seg);
        }
        let mut desired: HashMap<usize, Point> = HashMap::new();
        for exec in execs {
            for &v in &exec.vars {
                desired.insert(v, self.layout.home(v));
            }
        }
        self.emit_motion_to(&desired);
    }

    // ---- motion ---------------------------------------------------------------

    /// Moves atoms so each `var` sits at `desired[var]`. Homeward moves are
    /// emitted first (vacating shared guest traps), then outward moves.
    fn emit_motion_to(&mut self, desired: &HashMap<usize, Point>) {
        let mut homeward = Vec::new();
        let mut outward = Vec::new();
        for (&v, &to) in desired {
            let from = self.device.position(v).expect("atom bound");
            if from.approx_eq(to, 1e-6) {
                continue;
            }
            let mv = AtomMove { qubit: v, from, to };
            if to.approx_eq(self.layout.home(v), 1e-6) {
                homeward.push(mv);
            } else {
                outward.push(mv);
            }
        }
        // Deterministic order: the qubit tie-break makes emission
        // independent of `HashMap` iteration order (byte-identical wQasm
        // across runs and thread counts).
        let move_order =
            |a: &AtomMove, b: &AtomMove| a.from.x.total_cmp(&b.from.x).then(a.qubit.cmp(&b.qubit));
        homeward.sort_by(move_order);
        outward.sort_by(move_order);
        for phase in [homeward, outward] {
            let batches = batch_moves(
                &phase,
                self.params.min_trap_distance,
                self.options.parallel_shuttling,
            );
            for batch in batches {
                self.emit_batch(&batch);
            }
        }
    }

    /// Emits one parallel shuttle batch: AOD init at the pickup points,
    /// transfers in, column shuttles (safe order), a shared row shuttle,
    /// transfers out.
    fn emit_batch(&mut self, batch: &[AtomMove]) {
        if batch.is_empty() {
            return;
        }
        self.steps += batch.len() as u64;
        let xs: Vec<f64> = batch.iter().map(|m| m.from.x).collect();
        let y = batch[0].from.y;
        self.device
            .init_aod(&xs, &[y])
            .unwrap_or_else(|e| panic!("AOD init failed: {e}"));
        self.pending.push(Annotation::Aod {
            xs: xs.clone(),
            ys: vec![y],
        });
        // Pick up: one parallel beam event for the whole batch.
        for (col, m) in batch.iter().enumerate() {
            let slm_index = self.trap_of(m.from);
            self.device
                .transfer(slm_index, (col, 0))
                .unwrap_or_else(|e| panic!("pickup transfer failed: {e}"));
            self.pending.push(Annotation::Transfer {
                slm_index,
                aod: (col, 0),
            });
        }
        self.schedule
            .push(PulseOp::TransferBatch { atoms: batch.len() });
        // Column moves in crossing-safe order; one schedule op for the whole
        // parallel move (duration = the longest individual distance).
        let mut max_dx = 0.0f64;
        for col in safe_shuttle_order(batch) {
            let dx = batch[col].to.x - batch[col].from.x;
            if dx.abs() > 1e-9 {
                self.device
                    .shuttle_column(col, dx)
                    .unwrap_or_else(|e| panic!("column shuttle failed: {e}"));
                self.pending.push(Annotation::Shuttle {
                    axis: ShuttleAxis::Column,
                    index: col,
                    offset: dx,
                });
                max_dx = max_dx.max(dx.abs());
            }
        }
        if max_dx > 0.0 {
            self.schedule.push(PulseOp::Shuttle { distance: max_dx });
        }
        // Shared row move.
        let dy = batch[0].to.y - batch[0].from.y;
        if dy.abs() > 1e-9 {
            self.device
                .shuttle_row(0, dy)
                .unwrap_or_else(|e| panic!("row shuttle failed: {e}"));
            self.pending.push(Annotation::Shuttle {
                axis: ShuttleAxis::Row,
                index: 0,
                offset: dy,
            });
            self.schedule.push(PulseOp::Shuttle { distance: dy.abs() });
        }
        // Drop off, likewise in parallel.
        for (col, m) in batch.iter().enumerate() {
            let slm_index = self.trap_of(m.to);
            self.device
                .transfer(slm_index, (col, 0))
                .unwrap_or_else(|e| panic!("dropoff transfer failed: {e}"));
            self.pending.push(Annotation::Transfer {
                slm_index,
                aod: (col, 0),
            });
        }
        self.schedule
            .push(PulseOp::TransferBatch { atoms: batch.len() });
    }

    // ---- pulses ----------------------------------------------------------------

    /// Fuses a run of single-qubit gates per qubit and emits each fused
    /// unitary as one `u3` statement with a `@raman local` annotation.
    fn emit_raman_segment(&mut self, instrs: &[Instruction]) {
        // Per-qubit accumulation in first-touch order.
        let mut order: Vec<usize> = Vec::new();
        let mut acc: HashMap<usize, Matrix> = HashMap::new();
        for i in instrs {
            debug_assert_eq!(i.gate.num_qubits(), 1);
            let q = i.qubits[0];
            let m = i.gate.matrix();
            match acc.get_mut(&q) {
                Some(prev) => *prev = &m * prev,
                None => {
                    order.push(q);
                    acc.insert(q, m);
                }
            }
        }
        for q in order {
            let m = &acc[&q];
            let u = decompose_u3(m);
            if is_identity_u3(u.theta, u.phi, u.lambda, 1e-12) {
                continue;
            }
            let zyx = decompose_zyx(m);
            let mut annotations = std::mem::take(&mut self.pending);
            annotations.push(Annotation::RamanLocal {
                qubit: QubitRef::q(q),
                x: zyx.x,
                y: zyx.y,
                z: zyx.z,
            });
            self.program.statements.push(Statement::GateCall {
                annotations,
                name: "u3".to_string(),
                params: vec![u.theta, u.phi, u.lambda],
                qubits: vec![QubitRef::q(q)],
            });
            self.logical.push(Gate::U3(u.theta, u.phi, u.lambda), &[q]);
            self.schedule.push(PulseOp::RamanLocal {
                qubit: q,
                angles: (zyx.x, zyx.y, zyx.z),
            });
        }
    }

    /// Emits one global Raman pulse applying `matrix` to every qubit:
    /// `n` logical `u3` statements, annotation on the first.
    fn emit_global_raman(&mut self, matrix: &Matrix, n: usize) {
        let u = decompose_u3(matrix);
        let zyx = decompose_zyx(matrix);
        for q in 0..n {
            let mut annotations = std::mem::take(&mut self.pending);
            if q == 0 {
                annotations.push(Annotation::RamanGlobal {
                    x: zyx.x,
                    y: zyx.y,
                    z: zyx.z,
                });
            }
            self.program.statements.push(Statement::GateCall {
                annotations,
                name: "u3".to_string(),
                params: vec![u.theta, u.phi, u.lambda],
                qubits: vec![QubitRef::q(q)],
            });
            self.logical.push(Gate::U3(u.theta, u.phi, u.lambda), &[q]);
        }
        self.schedule.push(PulseOp::RamanGlobal {
            angles: (zyx.x, zyx.y, zyx.z),
        });
    }

    /// Emits one global Rydberg pulse implementing the given entangling
    /// gates; validates that the mirror device agrees on the interaction
    /// groups.
    fn emit_rydberg(&mut self, gates: &[Instruction]) {
        if gates.is_empty() {
            return;
        }
        let groups = self
            .device
            .rydberg_groups()
            .unwrap_or_else(|e| panic!("invalid Rydberg configuration: {e}"));
        // Each expected gate must appear as exactly one group.
        let mut expected: Vec<Vec<usize>> = gates
            .iter()
            .map(|g| {
                let mut qs = g.qubits.clone();
                qs.sort_unstable();
                qs
            })
            .collect();
        expected.sort();
        let mut actual: Vec<Vec<usize>> = groups
            .iter()
            .map(|g| {
                let mut qs = g.clone();
                qs.sort_unstable();
                qs
            })
            .collect();
        actual.sort();
        assert_eq!(
            expected, actual,
            "Rydberg pulse would implement {actual:?}, compiler intended {expected:?}"
        );

        for (i, gate) in gates.iter().enumerate() {
            let mut annotations = std::mem::take(&mut self.pending);
            if i == 0 {
                annotations.push(Annotation::Rydberg);
            }
            self.program.statements.push(Statement::GateCall {
                annotations,
                name: gate.gate.name().to_string(),
                params: vec![],
                qubits: gate.qubits.iter().map(|&q| QubitRef::q(q)).collect(),
            });
            self.logical.push(gate.gate.clone(), &gate.qubits);
        }
        self.schedule.push(PulseOp::Rydberg { groups });
        self.steps += gates.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::{generator, Formula, Lit};
    use weaver_simulator::equiv;

    fn paper_formula() -> Formula {
        Formula::new(
            6,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(3), Lit::neg(4), Lit::pos(5)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(4), Lit::neg(5)]),
            ],
        )
    }

    fn options(measure: bool) -> CodegenOptions {
        CodegenOptions {
            measure,
            ..CodegenOptions::default()
        }
    }

    #[test]
    fn compiles_paper_example() {
        let f = paper_formula();
        let out = compile_formula(&f, &FpqaParams::default(), &options(true));
        assert_eq!(out.coloring.num_colors, 2);
        assert!(out.schedule.pulse_count() > 0);
        assert!(out.program.pulse_count() > 0);
        // 4 Rydberg pulses per color (2 CCZ + 2 CZ slots).
        let rydbergs = out
            .schedule
            .ops()
            .iter()
            .filter(|o| matches!(o, PulseOp::Rydberg { .. }))
            .count();
        assert_eq!(rydbergs, 4 * out.coloring.num_colors);
    }

    #[test]
    fn logical_circuit_matches_qaoa_reference() {
        let f = paper_formula();
        let out = compile_formula(&f, &FpqaParams::default(), &options(false));
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let e = equiv::compare(&out.logical.unitary(), &reference.unitary(), 1e-8);
        assert!(e.is_equivalent(), "{e:?}");
    }

    #[test]
    fn uncompressed_mode_also_matches() {
        let f = paper_formula();
        let opts = CodegenOptions {
            compression: false,
            measure: false,
            ..CodegenOptions::default()
        };
        let out = compile_formula(&f, &FpqaParams::default(), &opts);
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let e = equiv::compare(&out.logical.unitary(), &reference.unitary(), 1e-8);
        assert!(e.is_equivalent(), "{e:?}");
        // Ladder mode spends far more Rydberg pulses.
        let compressed = compile_formula(&f, &FpqaParams::default(), &options(false));
        let count = |o: &CompiledFpqa| {
            o.schedule
                .ops()
                .iter()
                .filter(|op| matches!(op, PulseOp::Rydberg { .. }))
                .count()
        };
        assert!(count(&out) > count(&compressed));
    }

    #[test]
    fn emitted_program_parses_and_validates() {
        let f = paper_formula();
        let out = compile_formula(&f, &FpqaParams::default(), &options(true));
        let text = weaver_wqasm::print(&out.program);
        let reparsed = weaver_wqasm::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let errors = weaver_wqasm::semantics::validate(&reparsed, &Default::default());
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn parallel_shuttling_reduces_shuttle_ops() {
        let f = generator::instance(20, 1);
        let par = compile_formula(&f, &FpqaParams::default(), &options(false));
        let seq_opts = CodegenOptions {
            parallel_shuttling: false,
            measure: false,
            ..CodegenOptions::default()
        };
        let seq = compile_formula(&f, &FpqaParams::default(), &seq_opts);
        let shuttles = |o: &CompiledFpqa| {
            o.schedule
                .ops()
                .iter()
                .filter(|op| matches!(op, PulseOp::Shuttle { .. }))
                .count()
        };
        assert!(
            shuttles(&par) <= shuttles(&seq),
            "parallel {} vs sequential {}",
            shuttles(&par),
            shuttles(&seq)
        );
        assert!(
            par.schedule.duration(&FpqaParams::default())
                < seq.schedule.duration(&FpqaParams::default())
        );
    }

    #[test]
    fn uf20_compiles_clean() {
        let f = generator::instance(20, 1);
        let out = compile_formula(&f, &FpqaParams::default(), &options(true));
        assert!(out.schedule.duration(&FpqaParams::default()) > 0.0);
        assert_eq!(out.program.num_qubits(), 20);
        // Rydberg pulse count: 4 per color per layer.
        let rydbergs = out
            .schedule
            .ops()
            .iter()
            .filter(|o| matches!(o, PulseOp::Rydberg { .. }))
            .count();
        assert_eq!(rydbergs, 4 * out.coloring.num_colors);
    }

    #[test]
    fn cached_compile_is_byte_identical() {
        let f = generator::instance(20, 1);
        let opts = options(true);
        let params = FpqaParams::default();
        let cache = crate::cache::CacheHandle::new();
        let plain = compile_formula(&f, &params, &opts);
        let cold = compile_formula_cached(&f, &params, &opts, Some(&cache));
        let warm = compile_formula_cached(&f, &params, &opts, Some(&cache));
        let text = |o: &CompiledFpqa| weaver_wqasm::print(&o.program);
        assert_eq!(text(&plain), text(&cold));
        assert_eq!(text(&plain), text(&warm));
        assert_eq!(plain.steps, warm.steps);
        let stats = cache.stats();
        assert_eq!(stats.plan_misses, f.num_clauses() as u64);
        assert_eq!(stats.plan_hits, f.num_clauses() as u64);
    }

    #[test]
    fn two_and_one_literal_clauses_compile() {
        let f = Formula::new(
            3,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::pos(1)]),
                Clause::new(vec![Lit::pos(2)]),
            ],
        );
        let out = compile_formula(&f, &FpqaParams::default(), &options(false));
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let e = equiv::compare(&out.logical.unitary(), &reference.unitary(), 1e-8);
        assert!(e.is_equivalent(), "{e:?}");
    }
}
