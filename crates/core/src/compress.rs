//! 3-qubit gate compression (paper §5.4, Fig. 7).
//!
//! The cost evolution of one Max-3SAT clause needs phases on seven `Z`
//! monomials. The textbook CNOT-ladder compilation (Fig. 6) spends ~10
//! two-qubit gates per clause. Compression instead uses the FPQA-native
//! `CCZ`:
//!
//! the gadget `CCX(u,v,t)·RZ_t(θ)·CCX(u,v,t)` equals
//! `exp(-i(θ/4)(z_t + z_u z_t + z_v z_t − z_u z_v z_t))`,
//!
//! which — for an all-negative clause — covers the cubic term *and* both
//! control–target quadratics at once. The remaining control–control
//! quadratic takes one CNOT ladder (2 CZ) and the linear terms take `RZ`
//! pulses. Mixed-sign clauses are handled by X-conjugating the positive
//! literals (paper: "control bits … are set to zero with single-qubit
//! rotation gates"). Net cost: **2 CCZ + 2 CZ** entangling pulses per
//! clause instead of ~10 CZ.

use weaver_circuit::Circuit;
use weaver_fpqa::FpqaParams;
use weaver_sat::{qaoa, Clause, PhasePolynomial};

/// Entangling-pulse budget of one compressed 3-literal clause.
pub const COMPRESSED_CCZ_PER_CLAUSE: usize = 2;
/// CZ pulses of one compressed 3-literal clause (control–control ladder).
pub const COMPRESSED_CZ_PER_CLAUSE: usize = 2;
/// CZ-pulse cost of the uncompressed CNOT-ladder compilation of a
/// 3-literal clause: three quadratic terms (2 each) + one cubic term (4).
pub const UNCOMPRESSED_CZ_PER_CLAUSE: usize = 10;

/// Decides whether compression pays off on the given hardware: success of
/// `2 CCZ + 2 CZ` must beat `10 CZ` (paper Fig. 10c sweeps exactly this
/// trade-off via the CCZ fidelity).
pub fn compression_profitable(params: &FpqaParams) -> bool {
    let compressed = params.fidelity_ccz.powi(COMPRESSED_CCZ_PER_CLAUSE as i32)
        * params.fidelity_cz.powi(COMPRESSED_CZ_PER_CLAUSE as i32);
    let uncompressed = params.fidelity_cz.powi(UNCOMPRESSED_CZ_PER_CLAUSE as i32);
    compressed > uncompressed
}

/// The CCZ-fidelity threshold above which compression is profitable, at the
/// given CZ fidelity: `f_ccz > f_cz⁴`.
pub fn compression_threshold(fidelity_cz: f64) -> f64 {
    fidelity_cz.powi(
        ((UNCOMPRESSED_CZ_PER_CLAUSE - COMPRESSED_CZ_PER_CLAUSE) / COMPRESSED_CCZ_PER_CLAUSE)
            as i32,
    )
}

/// Atom-moves per clause in compressed execution (controls to the triangle,
/// triangle → pair, pair → home).
const COMPRESSED_MOVES_PER_CLAUSE: i32 = 6;
/// Atom-moves per clause in ladder execution (six guest visits, each with a
/// way in and a way out).
const LADDER_MOVES_PER_CLAUSE: i32 = 12;

/// Full profitability gate including motion: compression eliminates most of
/// the per-clause shuttling, so it can pay off even when the pure
/// pulse-fidelity comparison (`compression_profitable`) is marginal. Each
/// avoided move costs two transfers and one shuttle of `typical_move_um`.
pub fn compression_beneficial(params: &FpqaParams, typical_move_um: f64) -> bool {
    let move_fidelity = params.fidelity_transfer.powi(2) * params.shuttle_fidelity(typical_move_um);
    let compressed = params.fidelity_ccz.powi(COMPRESSED_CCZ_PER_CLAUSE as i32)
        * params.fidelity_cz.powi(COMPRESSED_CZ_PER_CLAUSE as i32)
        * move_fidelity.powi(COMPRESSED_MOVES_PER_CLAUSE);
    let ladder = params.fidelity_cz.powi(UNCOMPRESSED_CZ_PER_CLAUSE as i32)
        * move_fidelity.powi(LADDER_MOVES_PER_CLAUSE);
    compressed > ladder
}

/// Role assignment inside a clause: which variable is the Toffoli target.
/// Weaver picks the geometric middle (median variable index), matching the
/// triangular site layout.
pub fn assign_roles(clause: &Clause) -> (usize, usize, usize) {
    let mut vars: Vec<usize> = clause.vars().collect();
    vars.sort_unstable();
    match vars.len() {
        3 => (vars[0], vars[2], vars[1]), // (u, v, t) with t the middle
        2 => (vars[0], vars[1], vars[1]),
        1 => (vars[0], vars[0], vars[0]),
        _ => unreachable!("clauses have 1–3 literals"),
    }
}

/// Builds the compressed cost-evolution fragment `e^{-iγ·sat(clause)}` over
/// a `num_vars`-qubit register. For 3-literal clauses this is the
/// 2-CCZ + 2-CZ fragment of Fig. 7; shorter clauses need no compression.
///
/// # Panics
///
/// Panics if the clause references variables `≥ num_vars`.
pub fn compressed_clause_circuit(clause: &Clause, gamma: f64, num_vars: usize) -> Circuit {
    let mut c = Circuit::new(num_vars);
    append_compressed_clause(&mut c, clause, gamma);
    c
}

/// Appends the compressed fragment of one clause to an existing circuit.
pub fn append_compressed_clause(circuit: &mut Circuit, clause: &Clause, gamma: f64) {
    match clause.lits().len() {
        1 => {
            let lit = clause.lits()[0];
            // sat = 1/2 + s·z/2 with s = +1 for a negative literal.
            let s = if lit.negated { 1.0 } else { -1.0 };
            // exp(-iγ(s/2)z) = RZ(γ·s)
            circuit.rz(gamma * s, lit.var);
        }
        2 => {
            // Flip positives so the clause is all-negative, where
            // sat = 1 − (1−z_a)(1−z_b)/4 has terms (+¼ z_a, +¼ z_b, −¼ z_ab).
            let flips: Vec<usize> = clause
                .lits()
                .iter()
                .filter(|l| !l.negated)
                .map(|l| l.var)
                .collect();
            let (a, b) = {
                let mut vs: Vec<usize> = clause.vars().collect();
                vs.sort_unstable();
                (vs[0], vs[1])
            };
            for &f in &flips {
                circuit.x(f);
            }
            circuit.rz(gamma / 2.0, a);
            circuit.rz(gamma / 2.0, b);
            append_zz(circuit, a, b, -gamma / 4.0);
            for &f in &flips {
                circuit.x(f);
            }
        }
        3 => {
            let (u, v, t) = assign_roles(clause);
            let flips: Vec<usize> = clause
                .lits()
                .iter()
                .filter(|l| !l.negated)
                .map(|l| l.var)
                .collect();
            for &f in &flips {
                circuit.x(f);
            }
            // All-negative clause: sat terms (+⅛ z_i, −⅛ z_ij, +⅛ z_uvt).
            // Gadget with θ = −γ/2 covers (z_t, z_ut, z_vt, z_uvt) at
            // (−γ/8, −γ/8, −γ/8, +γ/8)·(−i exponent) — matching the
            // quadratics and the cubic exactly.
            let theta = -gamma / 2.0;
            append_ccx(circuit, u, v, t);
            circuit.rz(theta, t);
            append_ccx(circuit, u, v, t);
            // Residual z_t: needed +γ/8, gadget gave −γ/8 ⇒ add +γ/4.
            circuit.rz(gamma / 2.0, t);
            // Linear u, v: +γ/8 each ⇒ RZ(γ/4).
            circuit.rz(gamma / 4.0, u);
            circuit.rz(gamma / 4.0, v);
            // Control–control quadratic: −γ/8.
            append_zz(circuit, u, v, -gamma / 8.0);
            for &f in &flips {
                circuit.x(f);
            }
        }
        _ => unreachable!("clauses have 1–3 literals"),
    }
}

/// `exp(-i·w·z_a z_b)` via the CX ladder: `CX(a,b)·RZ(2w)(b)·CX(a,b)`, with
/// CX expressed through the FPQA-native CZ.
fn append_zz(circuit: &mut Circuit, a: usize, b: usize, w: f64) {
    append_cx(circuit, a, b);
    circuit.rz(2.0 * w, b);
    append_cx(circuit, a, b);
}

/// CX via H-conjugated CZ (Rydberg-native form).
fn append_cx(circuit: &mut Circuit, control: usize, target: usize) {
    circuit.h(target);
    circuit.cz(control, target);
    circuit.h(target);
}

/// CCX via H-conjugated CCZ (Rydberg-native form).
fn append_ccx(circuit: &mut Circuit, u: usize, v: usize, t: usize) {
    circuit.h(t);
    circuit.ccz(u, v, t);
    circuit.h(t);
}

/// The uncompressed reference compilation of one clause (Fig. 6 CNOT
/// ladders), used by the ablation and the equivalence tests.
pub fn reference_clause_circuit(clause: &Clause, gamma: f64, num_vars: usize) -> Circuit {
    let poly = PhasePolynomial::from_clause(clause);
    let mut c = Circuit::new(num_vars);
    qaoa::append_cost_evolution(&mut c, &poly, gamma);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_circuit::Gate;
    use weaver_sat::Lit;
    use weaver_simulator::equiv;

    const TOL: f64 = 1e-9;

    fn assert_clause_equiv(clause: &Clause, gamma: f64) {
        let n = clause.vars().max().unwrap() + 1;
        let compressed = compressed_clause_circuit(clause, gamma, n);
        let reference = reference_clause_circuit(clause, gamma, n);
        let e = equiv::compare(&compressed.unitary(), &reference.unitary(), TOL);
        assert!(e.is_equivalent(), "clause {clause} at γ={gamma}: {e:?}");
    }

    #[test]
    fn all_negative_clause_matches_reference() {
        let c = Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]);
        for gamma in [0.3, 0.7, 1.9, -0.4] {
            assert_clause_equiv(&c, gamma);
        }
    }

    #[test]
    fn all_eight_sign_patterns_match() {
        for mask in 0..8u32 {
            let lit = |v: usize| {
                if mask >> v & 1 == 1 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            };
            let c = Clause::new(vec![lit(0), lit(1), lit(2)]);
            assert_clause_equiv(&c, 0.61);
        }
    }

    #[test]
    fn non_contiguous_variables() {
        let c = Clause::new(vec![Lit::neg(4), Lit::pos(0), Lit::neg(2)]);
        assert_clause_equiv(&c, 0.83);
    }

    #[test]
    fn two_and_one_literal_clauses() {
        assert_clause_equiv(&Clause::new(vec![Lit::pos(0), Lit::neg(1)]), 0.5);
        assert_clause_equiv(&Clause::new(vec![Lit::neg(0), Lit::neg(1)]), 1.1);
        assert_clause_equiv(&Clause::new(vec![Lit::pos(0)]), 0.9);
        assert_clause_equiv(&Clause::new(vec![Lit::neg(0)]), 0.9);
    }

    #[test]
    fn compressed_uses_two_ccz_two_cz() {
        let c = Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]);
        let circuit = compressed_clause_circuit(&c, 0.7, 3);
        let ccz = circuit
            .instructions()
            .filter(|i| i.gate == Gate::Ccz)
            .count();
        let cz = circuit
            .instructions()
            .filter(|i| i.gate == Gate::Cz)
            .count();
        assert_eq!(ccz, COMPRESSED_CCZ_PER_CLAUSE);
        assert_eq!(cz, COMPRESSED_CZ_PER_CLAUSE);
    }

    #[test]
    fn reference_spends_ten_two_qubit_gates() {
        let c = Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]);
        let circuit = reference_clause_circuit(&c, 0.7, 3);
        assert_eq!(circuit.two_qubit_count(), UNCOMPRESSED_CZ_PER_CLAUSE);
    }

    #[test]
    fn profitability_threshold_matches_formula() {
        let base = FpqaParams::default(); // f_cz = 0.995
        let threshold = compression_threshold(base.fidelity_cz);
        assert!((threshold - 0.995f64.powi(4)).abs() < 1e-12);
        assert!(!compression_profitable(
            &base.clone().with_ccz_fidelity(threshold - 0.001)
        ));
        assert!(compression_profitable(
            &base.with_ccz_fidelity(threshold + 0.001)
        ));
    }

    #[test]
    fn roles_pick_median_target() {
        let c = Clause::new(vec![Lit::neg(7), Lit::pos(1), Lit::neg(4)]);
        let (u, v, t) = assign_roles(&c);
        assert_eq!((u, v, t), (1, 7, 4));
    }

    #[test]
    fn whole_formula_compressed_equals_reference() {
        // A small formula whose clauses overlap: composing fragments must
        // still match the ladder compilation (fragments commute — all
        // diagonal).
        let f = weaver_sat::Formula::new(
            4,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(2), Lit::pos(3)]),
                Clause::new(vec![Lit::pos(0), Lit::pos(3)]),
            ],
        );
        let gamma = 0.45;
        let mut compressed = Circuit::new(4);
        for clause in f.clauses() {
            append_compressed_clause(&mut compressed, clause, gamma);
        }
        let reference = qaoa::build_cost_circuit(&f, gamma);
        let e = equiv::compare(&compressed.unitary(), &reference.unitary(), TOL);
        assert!(e.is_equivalent(), "{e:?}");
    }
}
