//! wChecker — equivalence checking of compiled wQasm programs (paper §6,
//! Fig. 9).
//!
//! The checker re-simulates every FPQA annotation on a fresh device model
//! (independent of the compiler's mirror device), translates pulses back to
//! logical gates, and verifies that
//!
//! 1. every annotation's pre-condition holds (motion legality, spacing),
//! 2. every Rydberg pulse entangles exactly the atoms the attached logical
//!    gates claim — equidistance and non-interference included,
//! 3. every Raman pulse matches its logical `u3` up to global phase,
//! 4. the reconstructed circuit is equivalent to a reference circuit
//!    (full unitary comparison up to [`UnitaryBuilder::MAX_QUBITS`] qubits).

use crate::cache::{
    fingerprint_fpqa_params, CacheHandle, DeviceEvent, DeviceTrace, Digest, Fingerprint,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use weaver_circuit::{Circuit, Gate};
use weaver_fpqa::{FpqaDevice, FpqaParams, Location};
use weaver_simulator::{equiv, Complex, Matrix, UnitaryBuilder};
use weaver_wqasm::{Annotation, BindTarget, Program, ShuttleAxis, Statement};

/// Outcome of a wChecker run.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Problems found; empty means the program checked out.
    pub errors: Vec<CheckError>,
    /// Number of pulse annotations validated.
    pub pulses_checked: usize,
    /// Number of motion annotations simulated.
    pub motions_checked: usize,
    /// Whether the full-unitary comparison ran (register within
    /// [`UnitaryBuilder::MAX_QUBITS`]).
    pub unitary_checked: bool,
    /// The circuit reconstructed from pulses (pulse-to-gate output).
    pub reconstructed: Option<Circuit>,
}

impl CheckReport {
    /// Whether the program passed all checks.
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A single checker finding.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckError {
    /// Statement index the finding refers to.
    pub statement: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "statement {}: {}", self.statement, self.message)
    }
}

impl std::error::Error for CheckError {}

/// The wChecker's view of the FPQA device: either a live simulation whose
/// outcomes are recorded as a [`DeviceTrace`], or a replay of a previously
/// recorded trace for a byte-identical annotation stream (the cached path —
/// no pulse re-simulation happens at all).
enum DeviceOracle {
    Live {
        device: Box<FpqaDevice>,
        trace: DeviceTrace,
    },
    Replay {
        trace: Arc<DeviceTrace>,
        cursor: usize,
    },
}

impl DeviceOracle {
    fn live(params: &FpqaParams) -> Self {
        DeviceOracle::Live {
            device: Box::new(FpqaDevice::new(params.clone())),
            trace: Vec::new(),
        }
    }

    /// Runs a setup/motion device operation (or replays its outcome).
    fn run(
        &mut self,
        motion: bool,
        op: impl FnOnce(&mut FpqaDevice) -> Result<(), weaver_fpqa::FpqaError>,
    ) -> Result<(), String> {
        match self {
            DeviceOracle::Live { device, trace } => {
                let outcome = op(device).map_err(|e| e.to_string());
                trace.push(if motion {
                    DeviceEvent::Motion(outcome.clone())
                } else {
                    DeviceEvent::Setup(outcome.clone())
                });
                outcome
            }
            DeviceOracle::Replay { trace, cursor } => {
                let event = &trace[*cursor];
                *cursor += 1;
                match event {
                    DeviceEvent::Setup(r) | DeviceEvent::Motion(r) => r.clone(),
                    DeviceEvent::Groups(_) => unreachable!("trace out of sync with annotations"),
                }
            }
        }
    }

    /// Queries the interaction groups a `@rydberg` pulse would drive.
    fn rydberg_groups(&mut self) -> Result<Vec<Vec<usize>>, String> {
        match self {
            DeviceOracle::Live { device, trace } => {
                let outcome = device.rydberg_groups().map_err(|e| e.to_string());
                trace.push(DeviceEvent::Groups(outcome.clone()));
                outcome
            }
            DeviceOracle::Replay { trace, cursor } => {
                let event = &trace[*cursor];
                *cursor += 1;
                match event {
                    DeviceEvent::Groups(r) => r.clone(),
                    _ => unreachable!("trace out of sync with annotations"),
                }
            }
        }
    }
}

/// Content key of a checker device trace: the device parameters plus the
/// exact annotation stream (every field of every annotation, in order),
/// framed by statement placement — a standalone pulse annotation records no
/// device event while a gate-attached one does, so the same flat annotation
/// sequence under different placements must key differently. Two programs
/// with identical keys drive a [`FpqaDevice`] identically.
pub fn device_trace_key(program: &Program, params: &FpqaParams) -> Digest {
    let mut fp = Fingerprint::new();
    fp.tag(0xC4).str(crate::cache::COMPILER_VERSION);
    fingerprint_fpqa_params(&mut fp, params);
    fp.usize(program.num_qubits());
    for stmt in &program.statements {
        match stmt {
            Statement::Standalone(a) => {
                fp.tag(0xB1);
                fingerprint_annotation(&mut fp, a);
            }
            Statement::GateCall { annotations, .. } => {
                fp.tag(0xB2).usize(annotations.len());
                for a in annotations {
                    fingerprint_annotation(&mut fp, a);
                }
            }
            _ => {
                fp.tag(0xB0);
            }
        }
    }
    fp.digest()
}

fn fingerprint_annotation(fp: &mut Fingerprint, a: &Annotation) {
    match a {
        Annotation::Slm { positions } => {
            fp.tag(1).usize(positions.len());
            for &(x, y) in positions {
                fp.f64(x).f64(y);
            }
        }
        Annotation::Aod { xs, ys } => {
            fp.tag(2).usize(xs.len());
            for &x in xs {
                fp.f64(x);
            }
            fp.usize(ys.len());
            for &y in ys {
                fp.f64(y);
            }
        }
        Annotation::Bind { qubit, target } => {
            fp.tag(3).str(&qubit.register).usize(qubit.index);
            match target {
                BindTarget::Slm(i) => fp.tag(0).usize(*i),
                BindTarget::Aod(c, r) => fp.tag(1).usize(*c).usize(*r),
            };
        }
        Annotation::Transfer { slm_index, aod } => {
            fp.tag(4).usize(*slm_index).usize(aod.0).usize(aod.1);
        }
        Annotation::Shuttle {
            axis,
            index,
            offset,
        } => {
            fp.tag(5)
                .tag(matches!(axis, ShuttleAxis::Row) as u8)
                .usize(*index)
                .f64(*offset);
        }
        Annotation::RamanGlobal { x, y, z } => {
            fp.tag(6).f64(*x).f64(*y).f64(*z);
        }
        Annotation::RamanLocal { qubit, x, y, z } => {
            fp.tag(7)
                .str(&qubit.register)
                .usize(qubit.index)
                .f64(*x)
                .f64(*y)
                .f64(*z);
        }
        Annotation::Rydberg => {
            fp.tag(8);
        }
        Annotation::Other { keyword, content } => {
            fp.tag(9).str(keyword).str(content);
        }
    }
}

/// Batched Raman-vs-logical matrix comparison (the ROADMAP perf item). A
/// program drives hundreds of 2×2 comparisons, almost all repeats: every
/// qubit of a `@raman global` pulse shares one rotation, and QAOA layers
/// re-emit the same local pulses. The comparator gathers each segment's
/// comparisons into one contiguous pass over two reusable scratch matrices
/// — no per-entry `Matrix` or intermediate-product allocations — and
/// memoizes verdicts by the angles' bit patterns, so only distinct
/// (pulse, gate) pairs ever reach the allocation-free [`equiv::compare`]
/// path.
struct RamanComparator {
    pulse: Matrix,
    logical: Matrix,
    memo: HashMap<[u64; 6], bool>,
}

impl RamanComparator {
    fn new() -> Self {
        RamanComparator {
            pulse: Matrix::zeros(2, 2),
            logical: Matrix::zeros(2, 2),
            memo: HashMap::new(),
        }
    }

    /// Whether the Raman pulse `R(x, y, z) = RZ(z)·RY(y)·RX(x)` implements
    /// `u3(θ, φ, λ)` up to global phase (tolerance 1e-7, as the per-entry
    /// path used).
    fn matches(
        &mut self,
        (x, y, z): (f64, f64, f64),
        (theta, phi, lambda): (f64, f64, f64),
    ) -> bool {
        let key = [
            x.to_bits(),
            y.to_bits(),
            z.to_bits(),
            theta.to_bits(),
            phi.to_bits(),
            lambda.to_bits(),
        ];
        if let Some(&verdict) = self.memo.get(&key) {
            return verdict;
        }
        write_raman(&mut self.pulse, x, y, z);
        write_u3(&mut self.logical, theta, phi, lambda);
        let verdict = equiv::compare(&self.pulse, &self.logical, 1e-7).is_equivalent();
        self.memo.insert(key, verdict);
        verdict
    }
}

/// Writes `RZ(z)·RY(y)·RX(x)` into a 2×2 scratch matrix, composing on stack
/// scalars instead of allocating three gate matrices and two products.
fn write_raman(m: &mut Matrix, x: f64, y: f64, z: f64) {
    let (cx, sx) = ((x / 2.0).cos(), (x / 2.0).sin());
    let (cy, sy) = ((y / 2.0).cos(), (y / 2.0).sin());
    // RX(x) entries.
    let rx = [
        [Complex::real(cx), Complex::new(0.0, -sx)],
        [Complex::new(0.0, -sx), Complex::real(cx)],
    ];
    // RY(y)·RX(x).
    let yx = [
        [
            rx[0][0].scale(cy) - rx[1][0].scale(sy),
            rx[0][1].scale(cy) - rx[1][1].scale(sy),
        ],
        [
            rx[0][0].scale(sy) + rx[1][0].scale(cy),
            rx[0][1].scale(sy) + rx[1][1].scale(cy),
        ],
    ];
    // RZ(z)·(RY·RX): row 0 × e^{-iz/2}, row 1 × e^{iz/2}.
    let (z0, z1) = (Complex::from_polar(-z / 2.0), Complex::from_polar(z / 2.0));
    m[(0, 0)] = z0 * yx[0][0];
    m[(0, 1)] = z0 * yx[0][1];
    m[(1, 0)] = z1 * yx[1][0];
    m[(1, 1)] = z1 * yx[1][1];
}

/// Writes `U3(θ, φ, λ)` (OpenQASM convention) into a 2×2 scratch matrix.
fn write_u3(m: &mut Matrix, theta: f64, phi: f64, lambda: f64) {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    m[(0, 0)] = Complex::real(c);
    m[(0, 1)] = -(Complex::from_polar(lambda).scale(s));
    m[(1, 0)] = Complex::from_polar(phi).scale(s);
    m[(1, 1)] = Complex::from_polar(phi + lambda).scale(c);
}

/// Checks a compiled wQasm program. If `reference` is given and the
/// register is small enough (≤ [`UnitaryBuilder::MAX_QUBITS`] qubits),
/// additionally verifies full unitary equivalence of the reconstructed
/// circuit against it.
pub fn check(program: &Program, params: &FpqaParams, reference: Option<&Circuit>) -> CheckReport {
    check_with_cache(program, params, reference, None)
}

/// Like [`check`], but consulting `cache` for a memoized device trace: if
/// this exact annotation stream (under these device parameters) was checked
/// before, the pulse re-simulation is skipped and the recorded per-
/// annotation device outcomes are replayed instead. Results are identical
/// to the uncached path by construction (differential-tested below).
pub fn check_with_cache(
    program: &Program,
    params: &FpqaParams,
    reference: Option<&Circuit>,
    cache: Option<&CacheHandle>,
) -> CheckReport {
    let mut report = CheckReport::default();
    let n = program.num_qubits();
    let trace_key = cache.map(|_| device_trace_key(program, params));
    let mut oracle = match (cache, &trace_key) {
        (Some(c), Some(key)) => match c.device_trace(key) {
            Some(trace) => DeviceOracle::Replay { trace, cursor: 0 },
            None => DeviceOracle::live(params),
        },
        _ => DeviceOracle::live(params),
    };
    let mut reconstructed = Circuit::new(n);
    let mut raman = RamanComparator::new();

    // Flatten (statement index, statement) with annotations in place.
    let statements = &program.statements;
    let mut i = 0usize;
    while i < statements.len() {
        match &statements[i] {
            Statement::Standalone(a) => {
                apply_setup_or_motion(
                    a,
                    i,
                    &mut oracle,
                    &mut report,
                    // A standalone pulse annotation has no statement to
                    // implement — flag Rydberg/Raman here.
                    true,
                );
                i += 1;
            }
            Statement::GateCall {
                annotations,
                name,
                params: gate_params,
                qubits,
                ..
            } => {
                let mut consumed_extra = 0usize;
                let mut has_pulse = false;
                for a in annotations {
                    if a.is_pulse() {
                        has_pulse = true;
                    }
                    match a {
                        Annotation::Rydberg => {
                            consumed_extra = check_rydberg(
                                &mut oracle,
                                statements,
                                i,
                                &mut reconstructed,
                                &mut report,
                            );
                            report.pulses_checked += 1;
                        }
                        Annotation::RamanLocal { qubit, x, y, z } => {
                            check_raman_local(
                                (name, gate_params, qubits),
                                (qubit.index, *x, *y, *z),
                                i,
                                &mut raman,
                                &mut reconstructed,
                                &mut report,
                            );
                            report.pulses_checked += 1;
                        }
                        Annotation::RamanGlobal { x, y, z } => {
                            consumed_extra = check_raman_global(
                                statements,
                                i,
                                n,
                                (*x, *y, *z),
                                &mut raman,
                                &mut reconstructed,
                                &mut report,
                            );
                            report.pulses_checked += 1;
                        }
                        other => {
                            apply_setup_or_motion(other, i, &mut oracle, &mut report, false);
                        }
                    }
                }
                if !has_pulse {
                    // A gate statement must be realized by a pulse; gates
                    // consumed by a preceding global pulse are skipped via
                    // the index bump and never reach this point.
                    report.errors.push(CheckError {
                        statement: i,
                        message: format!("logical gate `{name}` has no FPQA realization"),
                    });
                }
                i += 1 + consumed_extra;
            }
            _ => {
                i += 1;
            }
        }
    }

    // Record the device trace for future re-checks of the same stream.
    if let (Some(cache), Some(key), DeviceOracle::Live { trace, .. }) =
        (cache, trace_key, &mut oracle)
    {
        cache.store_device_trace(key, std::mem::take(trace));
    }

    // Unitary comparison against the reference.
    if let Some(reference) = reference {
        if n <= UnitaryBuilder::MAX_QUBITS && report.errors.is_empty() {
            let e = equiv::compare(&reconstructed.unitary(), &reference.unitary(), 1e-7);
            report.unitary_checked = true;
            if !e.is_equivalent() {
                report.errors.push(CheckError {
                    statement: usize::MAX,
                    message: format!(
                        "reconstructed circuit is not equivalent to the reference: {e:?}"
                    ),
                });
            }
        }
    }
    report.reconstructed = Some(reconstructed);
    report
}

/// Applies a setup/motion annotation to the device oracle, recording
/// violations.
fn apply_setup_or_motion(
    a: &Annotation,
    idx: usize,
    oracle: &mut DeviceOracle,
    report: &mut CheckReport,
    standalone: bool,
) {
    let mut fail = |message: String| {
        report.errors.push(CheckError {
            statement: idx,
            message,
        })
    };
    match a {
        Annotation::Slm { positions } => {
            let pts: Vec<weaver_fpqa::Point> =
                positions.iter().map(|&(x, y)| (x, y).into()).collect();
            if let Err(e) = oracle.run(false, |d| d.init_slm(&pts)) {
                fail(format!("@slm rejected: {e}"));
            }
        }
        Annotation::Aod { xs, ys } => {
            if let Err(e) = oracle.run(false, |d| d.init_aod(xs, ys)) {
                fail(format!("@aod rejected: {e}"));
            }
        }
        Annotation::Bind { qubit, target } => {
            let loc = match target {
                BindTarget::Slm(i) => Location::Slm(*i),
                BindTarget::Aod(c, r) => Location::Aod(*c, *r),
            };
            if let Err(e) = oracle.run(false, |d| d.bind(qubit.index, loc)) {
                fail(format!("@bind rejected: {e}"));
            }
        }
        Annotation::Transfer { slm_index, aod } => {
            report.motions_checked += 1;
            if let Err(e) = oracle.run(true, |d| d.transfer(*slm_index, *aod)) {
                fail(format!("@transfer rejected: {e}"));
            }
        }
        Annotation::Shuttle {
            axis,
            index,
            offset,
        } => {
            report.motions_checked += 1;
            let result = oracle.run(true, |d| match axis {
                ShuttleAxis::Row => d.shuttle_row(*index, *offset),
                ShuttleAxis::Column => d.shuttle_column(*index, *offset),
            });
            if let Err(e) = result {
                fail(format!("@shuttle rejected: {e}"));
            }
        }
        Annotation::Rydberg | Annotation::RamanGlobal { .. } | Annotation::RamanLocal { .. } => {
            if standalone {
                fail("pulse annotation attached to no gate statement".to_string());
            }
        }
        Annotation::Other { .. } => {}
    }
}

/// Validates a `@rydberg` pulse: the device's interaction groups must match
/// the annotated statement plus immediately following unannotated
/// entangling statements. Returns how many extra statements were consumed.
fn check_rydberg(
    oracle: &mut DeviceOracle,
    statements: &[Statement],
    idx: usize,
    reconstructed: &mut Circuit,
    report: &mut CheckReport,
) -> usize {
    let groups = match oracle.rydberg_groups() {
        Ok(g) => g,
        Err(e) => {
            report.errors.push(CheckError {
                statement: idx,
                message: format!("@rydberg invalid: {e}"),
            });
            return 0;
        }
    };
    if groups.is_empty() {
        report.errors.push(CheckError {
            statement: idx,
            message: "@rydberg fires with no atoms in interaction range".to_string(),
        });
        return 0;
    }
    // Gather the logical gates this pulse claims to implement.
    let mut claimed: Vec<(usize, Vec<usize>)> = Vec::new(); // (stmt idx, sorted qubits)
    let mut consumed = 0usize;
    for (offset, stmt) in statements[idx..].iter().enumerate() {
        match stmt {
            Statement::GateCall {
                annotations,
                name,
                qubits,
                ..
            } if offset == 0 || annotations.is_empty() => {
                if name != "cz" && name != "ccz" {
                    break;
                }
                let mut qs: Vec<usize> = qubits.iter().map(|q| q.index).collect();
                qs.sort_unstable();
                claimed.push((idx + offset, qs));
                if offset > 0 {
                    consumed += 1;
                }
                if claimed.len() == groups.len() {
                    break;
                }
            }
            _ => break,
        }
    }
    let mut actual: Vec<Vec<usize>> = groups
        .iter()
        .map(|g| {
            let mut v = g.clone();
            v.sort_unstable();
            v
        })
        .collect();
    actual.sort();
    let mut claimed_sets: Vec<Vec<usize>> = claimed.iter().map(|(_, q)| q.clone()).collect();
    claimed_sets.sort();
    if claimed_sets != actual {
        report.errors.push(CheckError {
            statement: idx,
            message: format!(
                "@rydberg implements {actual:?} but the program claims {claimed_sets:?}"
            ),
        });
    }
    // Reconstruct gates from the *physical* groups (pulse-to-gate).
    for group in &groups {
        match group.len() {
            2 => {
                reconstructed.push(Gate::Cz, group);
            }
            3 => {
                reconstructed.push(Gate::Ccz, group);
            }
            k => {
                reconstructed.push(Gate::CnZ(k - 1), group);
            }
        }
    }
    consumed
}

/// Validates a `@raman local` pulse against its `u3` statement.
fn check_raman_local(
    stmt: (&str, &[f64], &[weaver_wqasm::QubitRef]),
    pulse: (usize, f64, f64, f64),
    idx: usize,
    raman: &mut RamanComparator,
    reconstructed: &mut Circuit,
    report: &mut CheckReport,
) {
    let (name, params, qubits) = stmt;
    let (pulse_qubit, x, y, z) = pulse;
    if name != "u3" || params.len() != 3 || qubits.len() != 1 {
        report.errors.push(CheckError {
            statement: idx,
            message: format!("@raman local attached to `{name}`, expected a u3 statement"),
        });
        return;
    }
    if qubits[0].index != pulse_qubit {
        report.errors.push(CheckError {
            statement: idx,
            message: format!(
                "@raman local addresses q[{pulse_qubit}] but the gate acts on {}",
                qubits[0]
            ),
        });
        return;
    }
    if !raman.matches((x, y, z), (params[0], params[1], params[2])) {
        report.errors.push(CheckError {
            statement: idx,
            message: format!(
                "@raman local angles ({x:.4}, {y:.4}, {z:.4}) do not implement \
                 u3({:.4}, {:.4}, {:.4})",
                params[0], params[1], params[2]
            ),
        });
        return;
    }
    reconstructed.push(
        Gate::U3(params[0], params[1], params[2]),
        &[qubits[0].index],
    );
}

/// Validates a `@raman global` pulse: the annotated statement plus the
/// following unannotated `u3` statements must cover every qubit with the
/// same unitary. Returns extra statements consumed.
///
/// The segment's `u3` statements are gathered first and their matrix
/// comparisons run in one contiguous batch over the shared
/// [`RamanComparator`] — one comparison per *distinct* parameter triple
/// instead of one (with two matrix allocations) per statement.
fn check_raman_global(
    statements: &[Statement],
    idx: usize,
    n: usize,
    (x, y, z): (f64, f64, f64),
    raman: &mut RamanComparator,
    reconstructed: &mut Circuit,
    report: &mut CheckReport,
) -> usize {
    let mut covered: Vec<bool> = vec![false; n];
    let mut consumed = 0usize;
    let mut count = 0usize;
    // (offset, θ, φ, λ, qubit) per statement the pulse claims to implement.
    let mut instructions: Vec<(usize, f64, f64, f64, usize)> = Vec::new();
    for (offset, stmt) in statements[idx..].iter().enumerate() {
        match stmt {
            Statement::GateCall {
                annotations,
                name,
                params,
                qubits,
            } if offset == 0 || annotations.is_empty() => {
                if name != "u3" || params.len() != 3 || qubits.len() != 1 {
                    break;
                }
                let q = qubits[0].index;
                if q < n {
                    covered[q] = true;
                }
                instructions.push((offset, params[0], params[1], params[2], q));
                count += 1;
                if offset > 0 {
                    consumed += 1;
                }
                if count == n {
                    break;
                }
            }
            _ => break,
        }
    }
    // One contiguous comparison pass over the gathered segment.
    for &(offset, t, p, l, q) in &instructions {
        if !raman.matches((x, y, z), (t, p, l)) {
            report.errors.push(CheckError {
                statement: idx + offset,
                message: format!("@raman global pulse does not implement u3 on q[{q}]"),
            });
        }
    }
    if !covered.iter().all(|&c| c) {
        report.errors.push(CheckError {
            statement: idx,
            message: format!(
                "@raman global rotates every atom, but only {count} of {n} qubits have \
                 matching logical gates"
            ),
        });
    }
    for (_, t, p, l, q) in instructions {
        if q < n {
            reconstructed.push(Gate::U3(t, p, l), &[q]);
        }
    }
    consumed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{compile_formula, CodegenOptions};
    use weaver_sat::{qaoa::QaoaParams, Clause, Formula, Lit};

    fn small_formula() -> Formula {
        Formula::new(
            4,
            vec![
                Clause::new(vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]),
                Clause::new(vec![Lit::pos(1), Lit::neg(3)]),
            ],
        )
    }

    fn compile(measure: bool) -> (Formula, crate::codegen::CompiledFpqa) {
        let f = small_formula();
        let opts = CodegenOptions {
            measure,
            ..CodegenOptions::default()
        };
        let out = compile_formula(&f, &FpqaParams::default(), &opts);
        (f, out)
    }

    #[test]
    fn accepts_compiler_output() {
        let (f, out) = compile(false);
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let report = check(&out.program, &FpqaParams::default(), Some(&reference));
        assert!(report.passed(), "{:?}", report.errors);
        assert!(report.unitary_checked);
        assert!(report.pulses_checked > 0);
        assert!(report.motions_checked > 0);
    }

    #[test]
    fn accepts_uncompressed_output() {
        let f = small_formula();
        let opts = CodegenOptions {
            compression: false,
            measure: false,
            ..CodegenOptions::default()
        };
        let out = compile_formula(&f, &FpqaParams::default(), &opts);
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let report = check(&out.program, &FpqaParams::default(), Some(&reference));
        assert!(report.passed(), "{:?}", report.errors);
    }

    #[test]
    fn detects_perturbed_raman_angle() {
        let (f, out) = compile(false);
        let mut program = out.program.clone();
        // Find a raman local annotation and corrupt its z angle.
        let mut corrupted = false;
        for stmt in &mut program.statements {
            if let Statement::GateCall { annotations, .. } = stmt {
                for a in annotations {
                    if let Annotation::RamanLocal { z, .. } = a {
                        *z += 0.5;
                        corrupted = true;
                        break;
                    }
                }
            }
            if corrupted {
                break;
            }
        }
        assert!(corrupted, "no raman local annotation found");
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let report = check(&program, &FpqaParams::default(), Some(&reference));
        assert!(!report.passed());
        assert!(report
            .errors
            .iter()
            .any(|e| e.message.contains("raman local")));
    }

    #[test]
    fn detects_corrupted_shuttle_offset() {
        let (f, out) = compile(false);
        let mut program = out.program.clone();
        let mut corrupted = false;
        for stmt in &mut program.statements {
            if let Statement::GateCall { annotations, .. } = stmt {
                for a in annotations {
                    if let Annotation::Shuttle { offset, .. } = a {
                        *offset += 13.0; // atoms end up in the wrong place
                        corrupted = true;
                        break;
                    }
                }
            }
            if corrupted {
                break;
            }
        }
        assert!(corrupted, "no shuttle annotation found");
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let report = check(&program, &FpqaParams::default(), Some(&reference));
        assert!(
            !report.passed(),
            "corrupted shuttle must break transfer targets or rydberg groups"
        );
    }

    #[test]
    fn detects_dropped_rydberg_annotation() {
        let (f, out) = compile(false);
        let mut program = out.program.clone();
        let mut dropped = false;
        for stmt in &mut program.statements {
            if let Statement::GateCall { annotations, .. } = stmt {
                let before = annotations.len();
                annotations.retain(|a| !matches!(a, Annotation::Rydberg));
                if annotations.len() != before {
                    dropped = true;
                    break;
                }
            }
        }
        assert!(dropped);
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let report = check(&program, &FpqaParams::default(), Some(&reference));
        assert!(!report.passed());
        assert!(report
            .errors
            .iter()
            .any(|e| e.message.contains("no FPQA realization")));
    }

    #[test]
    fn detects_wrong_reference_circuit() {
        let (_, out) = compile(false);
        // Reference with one extra gate: unitary check must fail.
        let f = small_formula();
        let mut reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        reference.z(0);
        let report = check(&out.program, &FpqaParams::default(), Some(&reference));
        assert!(!report.passed());
        assert!(report.unitary_checked);
    }

    fn report_signature(r: &CheckReport) -> (Vec<CheckError>, usize, usize, bool, usize) {
        (
            r.errors.clone(),
            r.pulses_checked,
            r.motions_checked,
            r.unitary_checked,
            r.reconstructed.as_ref().map_or(0, |c| c.gate_count()),
        )
    }

    #[test]
    fn cached_recheck_is_differentially_identical() {
        let (f, out) = compile(false);
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        let params = FpqaParams::default();
        let cache = crate::cache::CacheHandle::new();
        let uncached = check(&out.program, &params, Some(&reference));
        let cold = check_with_cache(&out.program, &params, Some(&reference), Some(&cache));
        let warm = check_with_cache(&out.program, &params, Some(&reference), Some(&cache));
        assert_eq!(report_signature(&uncached), report_signature(&cold));
        assert_eq!(report_signature(&uncached), report_signature(&warm));
        let stats = cache.stats();
        assert_eq!(
            (stats.checker_hits, stats.checker_misses),
            (1, 1),
            "second run must replay the recorded trace"
        );
    }

    #[test]
    fn cached_recheck_still_detects_corruption() {
        // Warm the cache with the clean program, then corrupt a shuttle:
        // the annotation stream changes, so the memo must miss and the
        // live re-simulation must flag the same errors as the uncached path.
        let (f, out) = compile(false);
        let params = FpqaParams::default();
        let cache = crate::cache::CacheHandle::new();
        let reference = weaver_sat::qaoa::build_circuit(&f, &QaoaParams::default(), false);
        check_with_cache(&out.program, &params, Some(&reference), Some(&cache));

        let mut program = out.program.clone();
        let mut corrupted = false;
        for stmt in &mut program.statements {
            if let Statement::GateCall { annotations, .. } = stmt {
                for a in annotations {
                    if let Annotation::Shuttle { offset, .. } = a {
                        *offset += 13.0;
                        corrupted = true;
                        break;
                    }
                }
            }
            if corrupted {
                break;
            }
        }
        assert!(corrupted, "no shuttle annotation found");
        let cached = check_with_cache(&program, &params, Some(&reference), Some(&cache));
        let uncached = check(&program, &params, Some(&reference));
        assert!(!cached.passed());
        assert_eq!(report_signature(&cached), report_signature(&uncached));
        assert_eq!(cache.stats().checker_hits, 0);
    }

    #[test]
    fn trace_key_separates_params_and_annotations() {
        let (_, out) = compile(false);
        let default_key = device_trace_key(&out.program, &FpqaParams::default());
        let other_params = FpqaParams::default().with_ccz_fidelity(0.91);
        assert_ne!(default_key, device_trace_key(&out.program, &other_params));
        let mut program = out.program.clone();
        for stmt in &mut program.statements {
            if let Statement::GateCall { annotations, .. } = stmt {
                if let Some(Annotation::Shuttle { offset, .. }) = annotations
                    .iter_mut()
                    .find(|a| matches!(a, Annotation::Shuttle { .. }))
                {
                    *offset += 1e-9;
                    break;
                }
            }
        }
        assert_ne!(
            default_key,
            device_trace_key(&program, &FpqaParams::default()),
            "any annotation perturbation must change the key"
        );
    }

    #[test]
    fn trace_key_encodes_annotation_placement() {
        // A standalone pulse annotation records no device event while a
        // gate-attached one does, so moving an annotation between the two
        // placements must change the key (same flat annotation sequence) —
        // otherwise a replay would desync. Exercise both key inequality and
        // the replay path itself with a shared cache.
        let (_, out) = compile(false);
        let params = FpqaParams::default();
        let mut detached = out.program.clone();
        let mut moved = None;
        for (i, stmt) in detached.statements.iter_mut().enumerate() {
            if let Statement::GateCall { annotations, .. } = stmt {
                if let Some(pos) = annotations
                    .iter()
                    .position(|a| matches!(a, Annotation::Rydberg))
                {
                    moved = Some((i, annotations.remove(pos)));
                    break;
                }
            }
        }
        let (at, annotation) = moved.expect("a rydberg annotation to move");
        detached
            .statements
            .insert(at, Statement::Standalone(annotation));
        assert_ne!(
            device_trace_key(&out.program, &params),
            device_trace_key(&detached, &params)
        );
        let cache = crate::cache::CacheHandle::new();
        check_with_cache(&detached, &params, None, Some(&cache));
        // With the clean program's placement the memo must miss (fresh
        // live simulation), not replay the standalone variant's trace.
        let report = check_with_cache(&out.program, &params, None, Some(&cache));
        assert!(report.passed(), "{:?}", report.errors);
        assert_eq!(cache.stats().checker_hits, 0);
    }

    #[test]
    fn raman_comparator_agrees_with_gate_matrices() {
        // The batched scratch-matrix path must agree with the reference
        // construction (gates::raman / gates::u3 + equiv::compare) on a
        // grid of angle combinations spanning matches and mismatches.
        use weaver_simulator::gates;
        let angles = [-2.0, -0.7, 0.0, 0.3, 1.0, std::f64::consts::PI];
        let mut comparator = super::RamanComparator::new();
        let mut checked = 0usize;
        let mut matched = 0usize;
        for &x in &angles {
            for &y in &angles {
                for &z in &angles {
                    // Scratch construction must reproduce the gate library.
                    let mut pulse = weaver_simulator::Matrix::zeros(2, 2);
                    super::write_raman(&mut pulse, x, y, z);
                    assert!(pulse.approx_eq(&gates::raman(x, y, z), 1e-12));
                    let mut logical = weaver_simulator::Matrix::zeros(2, 2);
                    super::write_u3(&mut logical, x, y, z);
                    assert!(logical.approx_eq(&gates::u3(x, y, z), 1e-12));
                    // Verdicts must match the per-entry path, twice (the
                    // second call exercises the memo).
                    for (t, p, l) in [(x, y, z), (y, z, x), (0.0, 0.0, 0.0)] {
                        let reference =
                            equiv::compare(&gates::raman(x, y, z), &gates::u3(t, p, l), 1e-7)
                                .is_equivalent();
                        assert_eq!(comparator.matches((x, y, z), (t, p, l)), reference);
                        assert_eq!(comparator.matches((x, y, z), (t, p, l)), reference);
                        checked += 1;
                        matched += reference as usize;
                    }
                }
            }
        }
        assert!(checked > 0 && matched > 0 && matched < checked);
    }

    #[test]
    fn reconstructed_circuit_exposed() {
        let (_, out) = compile(false);
        let report = check(&out.program, &FpqaParams::default(), None);
        assert!(report.passed(), "{:?}", report.errors);
        let rec = report.reconstructed.expect("reconstruction");
        assert!(rec.gate_count() > 0);
        assert!(rec
            .instructions()
            .all(|i| matches!(i.gate, Gate::U3(..) | Gate::Cz | Gate::Ccz | Gate::CnZ(_))));
    }
}
