//! Lexer for wQasm — the OpenQASM subset used by Weaver plus FPQA
//! annotations (paper §4, Fig. 4).

use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// The kinds of wQasm tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`cz`, `qreg`, `measure`, …).
    Ident(String),
    /// Annotation keyword including the `@`, e.g. `@rydberg`.
    Annotation(String),
    /// Numeric literal (integer or float, no sign).
    Number(f64),
    /// String literal content (without quotes).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The raw source spelling of the token (used to preserve pragma and
    /// unknown-annotation content verbatim).
    pub fn raw_text(&self) -> String {
        match self {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Annotation(s) => format!("@{s}"),
            TokenKind::Number(n) => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            TokenKind::Str(s) => format!("\"{s}\""),
            TokenKind::Semicolon => ";".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::LBracket => "[".into(),
            TokenKind::RBracket => "]".into(),
            TokenKind::LBrace => "{".into(),
            TokenKind::RBrace => "}".into(),
            TokenKind::Plus => "+".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Slash => "/".into(),
            TokenKind::Arrow => "->".into(),
            TokenKind::Eof => String::new(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Annotation(s) => write!(f, "annotation `@{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a complete wQasm source string.
///
/// # Errors
///
/// Returns a [`LexError`] on malformed numbers, unterminated strings or
/// comments, or unexpected characters.
///
/// # Examples
///
/// ```
/// use weaver_wqasm::lexer::{tokenize, TokenKind};
/// let toks = tokenize("@rydberg\ncz q[0], q[1];").unwrap();
/// assert_eq!(toks[0].kind, TokenKind::Annotation("rydberg".into()));
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), line, col })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if bytes[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };

        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col);
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        advance(&mut i, &mut line, &mut col);
                        advance(&mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    advance(&mut i, &mut line, &mut col);
                }
                if !closed {
                    err!("unterminated block comment");
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let start = i;
                while i < bytes.len() && bytes[i] != '"' {
                    if bytes[i] == '\n' {
                        err!("unterminated string literal");
                    }
                    advance(&mut i, &mut line, &mut col);
                }
                if i >= bytes.len() {
                    err!("unterminated string literal");
                }
                let s: String = bytes[start..i].iter().collect();
                advance(&mut i, &mut line, &mut col); // closing quote
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            '@' => {
                advance(&mut i, &mut line, &mut col);
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    advance(&mut i, &mut line, &mut col);
                }
                if start == i {
                    err!("expected annotation keyword after `@`");
                }
                let s: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Annotation(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit()
                || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_digit() {
                        advance(&mut i, &mut line, &mut col);
                    } else if d == '.' && !seen_dot && !seen_exp {
                        seen_dot = true;
                        advance(&mut i, &mut line, &mut col);
                    } else if (d == 'e' || d == 'E') && !seen_exp {
                        seen_exp = true;
                        advance(&mut i, &mut line, &mut col);
                        if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                            advance(&mut i, &mut line, &mut col);
                        }
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                match text.parse::<f64>() {
                    Ok(v) => tokens.push(Token {
                        kind: TokenKind::Number(v),
                        line: tline,
                        col: tcol,
                    }),
                    Err(_) => err!("malformed number `{text}`"),
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    advance(&mut i, &mut line, &mut col);
                }
                let s: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let kind = match c {
                    ';' => TokenKind::Semicolon,
                    ',' => TokenKind::Comma,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '/' => TokenKind::Slash,
                    other => err!("unexpected character `{other}`"),
                };
                advance(&mut i, &mut line, &mut col);
                tokens.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_gate_call() {
        let k = kinds("cz q[0], q[1];");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("cz".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::RBracket,
                TokenKind::Comma,
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Number(1.0),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn annotations_and_floats() {
        let k = kinds("@slm [(0.0, 5.5), (10.0, 5.5)]");
        assert_eq!(k[0], TokenKind::Annotation("slm".into()));
        assert!(k.contains(&TokenKind::Number(5.5)));
        assert!(k.contains(&TokenKind::Number(10.0)));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("// line comment\nh q[0]; /* block\n comment */ x q[1];");
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Ident(s) if s == "h"))
                .count(),
            1
        );
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokenKind::Ident(s) if s == "x"))
                .count(),
            1
        );
    }

    #[test]
    fn scientific_notation() {
        let k = kinds("rz(1.5e-3) q[0];");
        assert!(k.contains(&TokenKind::Number(1.5e-3)));
    }

    #[test]
    fn arrow_and_measure() {
        let k = kinds("measure q[0] -> c[0];");
        assert!(k.contains(&TokenKind::Arrow));
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("h q;\ncz a, b;").unwrap();
        let cz = toks
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "cz"))
            .unwrap();
        assert_eq!(cz.line, 2);
        assert_eq!(cz.col, 1);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("include \"qelib1.inc").is_err());
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn bare_at_errors() {
        assert!(tokenize("@ ;").is_err());
    }

    #[test]
    fn string_literal_content() {
        let k = kinds("include \"stdgates.inc\";");
        assert!(k.contains(&TokenKind::Str("stdgates.inc".into())));
    }
}
