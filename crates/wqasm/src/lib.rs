//! **wQasm** — the first formal extension of OpenQASM with FPQA-specific
//! instructions (paper §4).
//!
//! wQasm is standard OpenQASM plus seven annotations that describe how each
//! logical statement is realized on a Field-Programmable Qubit Array:
//!
//! | Annotation | Meaning |
//! |---|---|
//! | `@slm [(x, y), …]` | initialize fixed-layer traps |
//! | `@aod [xs] [ys]` | initialize the reconfigurable grid |
//! | `@bind q[i] slm k` / `aod cx cy` | bind qubit IDs to traps |
//! | `@transfer k (cx, cy)` | move an atom between layers |
//! | `@shuttle row\|column i off` | move an AOD row/column |
//! | `@raman global\|local …` | single-qubit rotation pulses |
//! | `@rydberg` | global entangling pulse (CZ/CCZ) |
//!
//! The crate provides the [`lexer`], [`parser`](parse), [`printer`](print()),
//! [`ast`], static [`semantics`] validation of the Table-1 pre-conditions,
//! and [`convert`] to/from the `weaver-circuit` IR.
//!
//! # Example
//!
//! ```
//! use weaver_wqasm::{parse, print, semantics};
//!
//! let src = "qreg q[2];\n@rydberg\ncz q[0], q[1];";
//! let program = parse(src).unwrap();
//! assert!(semantics::validate(&program, &Default::default()).is_empty());
//! assert_eq!(parse(&print(&program)).unwrap(), program);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod convert;
pub mod lexer;
mod parser;
mod printer;
pub mod semantics;

pub use ast::{Annotation, BindTarget, Program, QubitRef, ShuttleAxis, Statement};
pub use parser::{parse, ParseError};
pub use printer::print;
