//! Static semantic validation of wQasm annotations (paper §4.3, Table 1).
//!
//! This pass checks every *pre-condition* that can be verified without
//! simulating atom motion: SLM/AOD minimum spacing, AOD coordinate ordering,
//! bind-target ranges, transfer/shuttle index validity, and the basic
//! gate-call well-formedness (declared registers, arities, in-range
//! indices). Full dynamic checking — positions after motion, Rydberg
//! interaction sets — is the wChecker's job (`weaver-core`).

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// Geometric limits used by the static checks, in micrometres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SemanticConfig {
    /// Minimum distance between any two SLM traps and between adjacent AOD
    /// rows/columns (paper: 5–10 µm).
    pub min_trap_distance: f64,
    /// Maximum SLM↔AOD distance for an `@transfer` (paper: Dist_TransferMax).
    pub max_transfer_distance: f64,
}

impl Default for SemanticConfig {
    fn default() -> Self {
        SemanticConfig {
            min_trap_distance: 5.0,
            max_transfer_distance: 5.0,
        }
    }
}

/// A semantic diagnostic: which statement, what rule, what happened.
#[derive(Clone, Debug, PartialEq)]
pub struct SemanticError {
    /// Index of the offending statement in `Program::statements`.
    pub statement: usize,
    /// Description of the violated rule.
    pub message: String,
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "statement {}: {}", self.statement, self.message)
    }
}

impl std::error::Error for SemanticError {}

/// Known gate arities/parameter counts for gate-call validation.
fn gate_signature(name: &str) -> Option<(usize, usize)> {
    // (num_params, num_qubits)
    Some(match name {
        "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "id" => (0, 1),
        "rx" | "ry" | "rz" | "p" | "u1" => (1, 1),
        "u3" | "u" => (3, 1),
        "cx" | "cnot" | "cz" | "swap" => (0, 2),
        "crz" | "cp" => (1, 2),
        "ccx" | "ccz" | "toffoli" => (0, 3),
        _ => return None,
    })
}

/// Validates a program, returning all diagnostics (empty = valid).
///
/// # Examples
///
/// ```
/// use weaver_wqasm::{parse, semantics};
/// let p = parse("qreg q[2];\ncz q[0], q[1];").unwrap();
/// assert!(semantics::validate(&p, &Default::default()).is_empty());
/// ```
pub fn validate(program: &Program, config: &SemanticConfig) -> Vec<SemanticError> {
    let mut errors = Vec::new();
    let mut qregs: HashMap<String, usize> = HashMap::new();
    let mut cregs: HashMap<String, usize> = HashMap::new();
    // Device geometry discovered from @slm/@aod annotations.
    let mut slm_traps: Option<Vec<(f64, f64)>> = None;
    let mut aod_dims: Option<(usize, usize)> = None; // (columns, rows)

    let check_qubit = |qubit: &QubitRef,
                       qregs: &HashMap<String, usize>,
                       errors: &mut Vec<SemanticError>,
                       idx: usize| {
        match qregs.get(&qubit.register) {
            None => errors.push(SemanticError {
                statement: idx,
                message: format!("use of undeclared quantum register `{}`", qubit.register),
            }),
            Some(&size) if qubit.index >= size => errors.push(SemanticError {
                statement: idx,
                message: format!(
                    "qubit index {} out of range for `{}[{}]`",
                    qubit.index, qubit.register, size
                ),
            }),
            _ => {}
        }
    };

    for (idx, stmt) in program.statements.iter().enumerate() {
        // Validate annotations wherever they appear.
        let annotations: &[Annotation] = match stmt {
            Statement::GateCall { annotations, .. } => annotations,
            Statement::Standalone(a) => std::slice::from_ref(a),
            _ => &[],
        };
        for a in annotations {
            validate_annotation(
                a,
                idx,
                config,
                &qregs,
                &mut slm_traps,
                &mut aod_dims,
                &mut errors,
            );
        }

        match stmt {
            Statement::QregDecl { name, size } => {
                if *size == 0 {
                    errors.push(SemanticError {
                        statement: idx,
                        message: format!("register `{name}` has zero size"),
                    });
                }
                if qregs.insert(name.clone(), *size).is_some() {
                    errors.push(SemanticError {
                        statement: idx,
                        message: format!("redeclaration of quantum register `{name}`"),
                    });
                }
            }
            Statement::CregDecl { name, size } => {
                if cregs.insert(name.clone(), *size).is_some() {
                    errors.push(SemanticError {
                        statement: idx,
                        message: format!("redeclaration of classical register `{name}`"),
                    });
                }
            }
            Statement::GateCall {
                name,
                params,
                qubits,
                ..
            } => {
                match gate_signature(name) {
                    None => errors.push(SemanticError {
                        statement: idx,
                        message: format!("unknown gate `{name}`"),
                    }),
                    Some((nparams, nqubits)) => {
                        if params.len() != nparams {
                            errors.push(SemanticError {
                                statement: idx,
                                message: format!(
                                    "gate `{name}` expects {nparams} parameter(s), got {}",
                                    params.len()
                                ),
                            });
                        }
                        if qubits.len() != nqubits {
                            errors.push(SemanticError {
                                statement: idx,
                                message: format!(
                                    "gate `{name}` expects {nqubits} qubit(s), got {}",
                                    qubits.len()
                                ),
                            });
                        }
                    }
                }
                for q in qubits {
                    check_qubit(q, &qregs, &mut errors, idx);
                }
                for (i, q) in qubits.iter().enumerate() {
                    if qubits[..i].contains(q) {
                        errors.push(SemanticError {
                            statement: idx,
                            message: format!("duplicate operand {q}"),
                        });
                    }
                }
            }
            Statement::Measure { qubit, target } => {
                check_qubit(qubit, &qregs, &mut errors, idx);
                if let Some(t) = target {
                    match cregs.get(&t.register) {
                        None => errors.push(SemanticError {
                            statement: idx,
                            message: format!(
                                "use of undeclared classical register `{}`",
                                t.register
                            ),
                        }),
                        Some(&size) if t.index >= size => errors.push(SemanticError {
                            statement: idx,
                            message: format!(
                                "bit index {} out of range for `{}[{}]`",
                                t.index, t.register, size
                            ),
                        }),
                        _ => {}
                    }
                }
            }
            Statement::Barrier { qubits } => {
                for q in qubits {
                    check_qubit(q, &qregs, &mut errors, idx);
                }
            }
            Statement::Pragma(_) | Statement::Standalone(_) => {}
        }
    }
    errors
}

#[allow(clippy::too_many_arguments)]
fn validate_annotation(
    a: &Annotation,
    idx: usize,
    config: &SemanticConfig,
    qregs: &HashMap<String, usize>,
    slm_traps: &mut Option<Vec<(f64, f64)>>,
    aod_dims: &mut Option<(usize, usize)>,
    errors: &mut Vec<SemanticError>,
) {
    let mut err = |message: String| {
        errors.push(SemanticError {
            statement: idx,
            message,
        })
    };
    match a {
        Annotation::Slm { positions } => {
            // Pre-condition: pairwise distance above minimum.
            for (i, &(xi, yi)) in positions.iter().enumerate() {
                for &(xj, yj) in &positions[..i] {
                    let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                    if d < config.min_trap_distance {
                        err(format!(
                            "@slm traps ({xi}, {yi}) and ({xj}, {yj}) are {d:.2} µm apart, \
                             below the minimum {:.2} µm",
                            config.min_trap_distance
                        ));
                    }
                }
            }
            *slm_traps = Some(positions.clone());
        }
        Annotation::Aod { xs, ys } => {
            // Pre-condition: strictly increasing with minimum spacing.
            for (label, coords) in [("x", xs), ("y", ys)] {
                for w in coords.windows(2) {
                    if w[1] <= w[0] {
                        err(format!(
                            "@aod {label}-coordinates must be strictly increasing \
                             ({} then {})",
                            w[0], w[1]
                        ));
                    } else if w[1] - w[0] < config.min_trap_distance {
                        err(format!(
                            "@aod adjacent {label}-coordinates {} and {} closer than \
                             minimum {:.2} µm",
                            w[0], w[1], config.min_trap_distance
                        ));
                    }
                }
            }
            *aod_dims = Some((xs.len(), ys.len()));
        }
        Annotation::Bind { qubit, target } => {
            if !qregs.is_empty() && !qregs.contains_key(&qubit.register) {
                err(format!(
                    "@bind references undeclared register `{}`",
                    qubit.register
                ));
            }
            match target {
                BindTarget::Slm(i) => {
                    if let Some(traps) = slm_traps {
                        if *i >= traps.len() {
                            err(format!(
                                "@bind slm index {i} out of range ({} traps)",
                                traps.len()
                            ));
                        }
                    } else {
                        err("@bind slm before any @slm initialization".to_string());
                    }
                }
                BindTarget::Aod(cx, cy) => {
                    if let Some((cols, rows)) = aod_dims {
                        if cx >= cols || cy >= rows {
                            err(format!(
                                "@bind aod ({cx}, {cy}) out of range for {cols}x{rows} grid"
                            ));
                        }
                    } else {
                        err("@bind aod before any @aod initialization".to_string());
                    }
                }
            }
        }
        Annotation::Transfer { slm_index, aod } => {
            match slm_traps {
                Some(traps) if *slm_index >= traps.len() => {
                    err(format!(
                        "@transfer slm index {slm_index} out of range ({} traps)",
                        traps.len()
                    ));
                }
                None => err("@transfer before any @slm initialization".to_string()),
                _ => {}
            }
            match aod_dims {
                Some((cols, rows)) if aod.0 >= *cols || aod.1 >= *rows => {
                    err(format!(
                        "@transfer aod ({}, {}) out of range for {cols}x{rows} grid",
                        aod.0, aod.1
                    ));
                }
                None => err("@transfer before any @aod initialization".to_string()),
                _ => {}
            }
        }
        Annotation::Shuttle { axis, index, .. } => match aod_dims {
            Some((cols, rows)) => {
                let bound = match axis {
                    ShuttleAxis::Row => *rows,
                    ShuttleAxis::Column => *cols,
                };
                if *index >= bound {
                    err(format!(
                        "@shuttle {axis} index {index} out of range ({bound})"
                    ));
                }
            }
            None => err("@shuttle before any @aod initialization".to_string()),
        },
        Annotation::RamanLocal { qubit, .. } => {
            if !qregs.is_empty() && !qregs.contains_key(&qubit.register) {
                err(format!(
                    "@raman local references undeclared register `{}`",
                    qubit.register
                ));
            }
        }
        Annotation::RamanGlobal { .. } | Annotation::Rydberg | Annotation::Other { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn errs(src: &str) -> Vec<SemanticError> {
        validate(&parse(src).unwrap(), &SemanticConfig::default())
    }

    #[test]
    fn valid_program_has_no_errors() {
        let e = errs(
            "qreg q[3];\ncreg c[3];\n@slm [(0.0, 0.0), (10.0, 0.0)]\n@aod [5.0] [7.0]\n@bind q[0] slm 0\nh q[0];\ncz q[0], q[1];\nmeasure q[0] -> c[0];",
        );
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn detects_undeclared_register() {
        let e = errs("h r[0];");
        assert!(e.iter().any(|x| x.message.contains("undeclared")));
    }

    #[test]
    fn detects_out_of_range_index() {
        let e = errs("qreg q[2];\nh q[5];");
        assert!(e.iter().any(|x| x.message.contains("out of range")));
    }

    #[test]
    fn detects_bad_arity_and_params() {
        let e = errs("qreg q[2];\ncz q[0];\nrz q[0];");
        assert!(e.iter().any(|x| x.message.contains("expects 2 qubit")));
        assert!(e.iter().any(|x| x.message.contains("expects 1 parameter")));
    }

    #[test]
    fn detects_unknown_gate() {
        let e = errs("qreg q[1];\nfoo q[0];");
        assert!(e.iter().any(|x| x.message.contains("unknown gate")));
    }

    #[test]
    fn slm_minimum_distance_enforced() {
        let e = errs("qreg q[1];\n@slm [(0.0, 0.0), (1.0, 0.0)]\nh q[0];");
        assert!(e.iter().any(|x| x.message.contains("below the minimum")));
    }

    #[test]
    fn aod_ordering_enforced() {
        let e = errs("qreg q[1];\n@aod [10.0, 5.0] [0.0]\nh q[0];");
        assert!(e.iter().any(|x| x.message.contains("strictly increasing")));
    }

    #[test]
    fn bind_requires_initialization_and_range() {
        let e = errs("qreg q[1];\n@bind q[0] slm 0\nh q[0];");
        assert!(e.iter().any(|x| x.message.contains("before any @slm")));
        let e = errs("qreg q[1];\n@slm [(0.0, 0.0)]\n@bind q[0] slm 3\nh q[0];");
        assert!(e.iter().any(|x| x.message.contains("out of range")));
    }

    #[test]
    fn shuttle_index_range() {
        let e = errs("qreg q[1];\n@aod [0.0, 10.0] [0.0]\n@shuttle row 5 1.0\nh q[0];");
        assert!(e.iter().any(|x| x.message.contains("@shuttle row index 5")));
    }

    #[test]
    fn measure_target_checked() {
        let e = errs("qreg q[1];\nmeasure q[0] -> c[0];");
        assert!(e.iter().any(|x| x.message.contains("undeclared classical")));
    }

    #[test]
    fn duplicate_operands_detected() {
        let e = errs("qreg q[2];\ncz q[1], q[1];");
        assert!(e.iter().any(|x| x.message.contains("duplicate operand")));
    }

    #[test]
    fn zero_size_register_rejected() {
        let e = errs("qreg q[0];");
        assert!(e.iter().any(|x| x.message.contains("zero size")));
    }
}
