//! Abstract syntax tree for wQasm programs.
//!
//! Mirrors the grammar of paper Fig. 4: an optional version header followed
//! by statements, where gate-call statements may carry FPQA annotations
//! (`@slm`, `@aod`, `@bind`, `@transfer`, `@shuttle`, `@raman`, `@rydberg`).

use std::fmt;

/// A complete wQasm program.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// The `OPENQASM x.y;` version, if present.
    pub version: Option<String>,
    /// Included files (e.g. `stdgates.inc`), kept verbatim.
    pub includes: Vec<String>,
    /// Ordered statements.
    pub statements: Vec<Statement>,
}

/// A reference to one qubit of a declared register, e.g. `q[3]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QubitRef {
    /// Register name.
    pub register: String,
    /// Index within the register.
    pub index: usize,
}

impl QubitRef {
    /// Creates a reference into register `q` (the conventional name).
    pub fn q(index: usize) -> Self {
        QubitRef {
            register: "q".to_string(),
            index,
        }
    }
}

impl fmt::Display for QubitRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.register, self.index)
    }
}

/// One statement of a wQasm program.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// Quantum register declaration (`qreg q[n];` / `qubit[n] q;`).
    QregDecl {
        /// Register name.
        name: String,
        /// Number of qubits.
        size: usize,
    },
    /// Classical register declaration (`creg c[n];` / `bit[n] c;`).
    CregDecl {
        /// Register name.
        name: String,
        /// Number of bits.
        size: usize,
    },
    /// A gate call, possibly annotated with FPQA instructions that realize
    /// it on hardware (annotations precede the statement, paper §4.1).
    GateCall {
        /// Annotations attached to this statement, in source order.
        annotations: Vec<Annotation>,
        /// Gate mnemonic (`h`, `cz`, `u3`, …).
        name: String,
        /// Angle parameters.
        params: Vec<f64>,
        /// Operand qubits.
        qubits: Vec<QubitRef>,
    },
    /// `measure q[i] -> c[j];` (classical target optional).
    Measure {
        /// Measured qubit.
        qubit: QubitRef,
        /// Classical destination, if written.
        target: Option<QubitRef>,
    },
    /// `barrier q[0], q[1];` (empty = all qubits).
    Barrier {
        /// Qubits fenced by the barrier.
        qubits: Vec<QubitRef>,
    },
    /// A `pragma` line, kept verbatim.
    Pragma(String),
    /// A standalone annotation not attached to any gate (allowed for device
    /// setup annotations at the top of a program).
    Standalone(Annotation),
}

/// Shuttle axis selector of `@shuttle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShuttleAxis {
    /// Move an AOD row (vertical offset).
    Row,
    /// Move an AOD column (horizontal offset).
    Column,
}

impl fmt::Display for ShuttleAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuttleAxis::Row => write!(f, "row"),
            ShuttleAxis::Column => write!(f, "column"),
        }
    }
}

/// Trap-layer selector used by `@bind`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BindTarget {
    /// Bind to an SLM (fixed-layer) trap by linear index.
    Slm(usize),
    /// Bind to an AOD (reconfigurable-layer) trap by (column, row) index.
    Aod(usize, usize),
}

/// An FPQA annotation (paper Table 1).
#[derive(Clone, Debug, PartialEq)]
pub enum Annotation {
    /// `@slm [(x0, y0), …]` — fixed trap layer initialization.
    Slm {
        /// Trap coordinates in micrometres.
        positions: Vec<(f64, f64)>,
    },
    /// `@aod [x0, …] [y0, …]` — reconfigurable grid initialization.
    Aod {
        /// Column x-coordinates (strictly increasing).
        xs: Vec<f64>,
        /// Row y-coordinates (strictly increasing).
        ys: Vec<f64>,
    },
    /// `@bind q[i] slm k` / `@bind q[i] aod cx cy` — qubit-to-trap binding.
    Bind {
        /// The logical qubit being bound.
        qubit: QubitRef,
        /// The physical trap.
        target: BindTarget,
    },
    /// `@transfer k (cx, cy)` — move an atom between SLM trap `k` and the
    /// AOD trap at grid position `(cx, cy)` (direction depends on occupancy).
    Transfer {
        /// SLM trap index.
        slm_index: usize,
        /// AOD (column, row) grid index.
        aod: (usize, usize),
    },
    /// `@shuttle row|column index offset` — move a whole AOD row or column.
    Shuttle {
        /// Which axis moves.
        axis: ShuttleAxis,
        /// Row/column index.
        index: usize,
        /// Offset in micrometres (may be negative).
        offset: f64,
    },
    /// `@raman global x y z` — global single-qubit rotation.
    RamanGlobal {
        /// Rotation angle about X.
        x: f64,
        /// Rotation angle about Y.
        y: f64,
        /// Rotation angle about Z.
        z: f64,
    },
    /// `@raman local q[i] x y z` — single-atom rotation.
    RamanLocal {
        /// Addressed qubit.
        qubit: QubitRef,
        /// Rotation angle about X.
        x: f64,
        /// Rotation angle about Y.
        y: f64,
        /// Rotation angle about Z.
        z: f64,
    },
    /// `@rydberg` — global entangling pulse (CZ/CCZ on nearby atoms).
    Rydberg,
    /// Any other `@keyword remaining-line` annotation, kept verbatim for
    /// extensibility (grammar rule ⟨annotationKeyword⟩).
    Other {
        /// Keyword after `@`.
        keyword: String,
        /// Remaining tokens of the line, re-serialized.
        content: String,
    },
}

impl Annotation {
    /// Whether this annotation is a physical pulse (Raman/Rydberg) rather
    /// than setup or motion.
    pub fn is_pulse(&self) -> bool {
        matches!(
            self,
            Annotation::RamanGlobal { .. } | Annotation::RamanLocal { .. } | Annotation::Rydberg
        )
    }

    /// Whether this annotation moves atoms (`@shuttle` / `@transfer`).
    pub fn is_motion(&self) -> bool {
        matches!(
            self,
            Annotation::Shuttle { .. } | Annotation::Transfer { .. }
        )
    }
}

impl Program {
    /// Creates an OpenQASM-3-versioned empty program.
    pub fn new() -> Self {
        Program {
            version: Some("3.0".to_string()),
            includes: Vec::new(),
            statements: Vec::new(),
        }
    }

    /// Total number of declared qubits across quantum registers.
    pub fn num_qubits(&self) -> usize {
        self.statements
            .iter()
            .map(|s| match s {
                Statement::QregDecl { size, .. } => *size,
                _ => 0,
            })
            .sum()
    }

    /// Iterator over every annotation in the program, in source order.
    pub fn annotations(&self) -> impl Iterator<Item = &Annotation> {
        self.statements.iter().flat_map(|s| match s {
            Statement::GateCall { annotations, .. } => annotations.as_slice().iter(),
            Statement::Standalone(a) => std::slice::from_ref(a).iter(),
            _ => [].iter(),
        })
    }

    /// Number of pulse annotations (Raman + Rydberg) — the paper's
    /// "number of pulses" metric counts these plus motion ops.
    pub fn pulse_count(&self) -> usize {
        self.annotations().filter(|a| a.is_pulse()).count()
    }

    /// Number of motion annotations (shuttle + transfer).
    pub fn motion_count(&self) -> usize {
        self.annotations().filter(|a| a.is_motion()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_ref_display() {
        assert_eq!(QubitRef::q(3).to_string(), "q[3]");
    }

    #[test]
    fn program_counts_qubits_and_annotations() {
        let mut p = Program::new();
        p.statements.push(Statement::QregDecl {
            name: "q".into(),
            size: 4,
        });
        p.statements
            .push(Statement::Standalone(Annotation::Rydberg));
        p.statements.push(Statement::GateCall {
            annotations: vec![
                Annotation::Shuttle {
                    axis: ShuttleAxis::Row,
                    index: 0,
                    offset: 10.0,
                },
                Annotation::Rydberg,
            ],
            name: "cz".into(),
            params: vec![],
            qubits: vec![QubitRef::q(0), QubitRef::q(1)],
        });
        assert_eq!(p.num_qubits(), 4);
        assert_eq!(p.pulse_count(), 2);
        assert_eq!(p.motion_count(), 1);
    }

    #[test]
    fn annotation_classification() {
        assert!(Annotation::Rydberg.is_pulse());
        assert!(!Annotation::Rydberg.is_motion());
        let sh = Annotation::Shuttle {
            axis: ShuttleAxis::Column,
            index: 1,
            offset: -5.0,
        };
        assert!(sh.is_motion());
        assert!(!sh.is_pulse());
    }
}
