//! Recursive-descent parser for wQasm (grammar of paper Fig. 4).

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use std::fmt;

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a complete wQasm source string into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic problem.
///
/// # Examples
///
/// ```
/// use weaver_wqasm::parse;
/// let p = parse("OPENQASM 3.0;\nqreg q[2];\n@rydberg\ncz q[0], q[1];").unwrap();
/// assert_eq!(p.num_qubits(), 2);
/// assert_eq!(p.pulse_count(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            self.error(format!("expected {kind}, found {}", self.peek_kind()))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    /// A number with optional leading sign.
    fn signed_number(&mut self) -> Result<f64, ParseError> {
        let neg = self.eat(&TokenKind::Minus);
        if !neg {
            self.eat(&TokenKind::Plus);
        }
        match *self.peek_kind() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => self.error(format!("expected number, found {other}")),
        }
    }

    fn expect_usize(&mut self) -> Result<usize, ParseError> {
        match *self.peek_kind() {
            TokenKind::Number(v) if v >= 0.0 && v.fract() == 0.0 => {
                self.bump();
                Ok(v as usize)
            }
            ref other => self.error(format!("expected non-negative integer, found {other}")),
        }
    }

    // ---- grammar ----------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();

        if matches!(self.peek_kind(), TokenKind::Ident(s) if s == "OPENQASM") {
            self.bump();
            let version = match self.peek_kind().clone() {
                TokenKind::Number(v) => {
                    self.bump();
                    format!("{v}")
                }
                _ => return self.error("expected version number after OPENQASM"),
            };
            self.expect(TokenKind::Semicolon)?;
            prog.version = Some(version);
        }

        loop {
            match self.peek_kind().clone() {
                TokenKind::Eof => break,
                TokenKind::Ident(s) if s == "include" => {
                    self.bump();
                    match self.peek_kind().clone() {
                        TokenKind::Str(file) => {
                            self.bump();
                            self.expect(TokenKind::Semicolon)?;
                            prog.includes.push(file);
                        }
                        _ => return self.error("expected string after include"),
                    }
                }
                _ => {
                    let stmts = self.statement()?;
                    prog.statements.extend(stmts);
                }
            }
        }
        Ok(prog)
    }

    /// Parses one statement. A run of annotations followed by a gate call is
    /// a single annotated statement; trailing annotations with no gate call
    /// become standalone statements.
    fn statement(&mut self) -> Result<Vec<Statement>, ParseError> {
        // Collect leading annotations.
        let mut annotations = Vec::new();
        while let TokenKind::Annotation(_) = self.peek_kind() {
            annotations.push(self.annotation()?);
        }

        match self.peek_kind().clone() {
            TokenKind::Ident(s) => match s.as_str() {
                "qreg" | "creg" | "measure" | "barrier" | "pragma" | "qubit" | "bit" => {
                    // Setup annotations may legitimately stand alone before
                    // non-gate statements.
                    let mut out: Vec<Statement> =
                        annotations.into_iter().map(Statement::Standalone).collect();
                    out.push(self.non_gate_statement(&s)?);
                    Ok(out)
                }
                _ => {
                    let call = self.gate_call(annotations)?;
                    Ok(vec![call])
                }
            },
            TokenKind::Eof => Ok(annotations.into_iter().map(Statement::Standalone).collect()),
            other => self.error(format!("expected statement, found {other}")),
        }
    }

    fn non_gate_statement(&mut self, keyword: &str) -> Result<Statement, ParseError> {
        match keyword {
            "qreg" | "creg" => {
                let is_q = keyword == "qreg";
                self.bump();
                let name = self.expect_ident()?;
                self.expect(TokenKind::LBracket)?;
                let size = self.expect_usize()?;
                self.expect(TokenKind::RBracket)?;
                self.expect(TokenKind::Semicolon)?;
                Ok(if is_q {
                    Statement::QregDecl { name, size }
                } else {
                    Statement::CregDecl { name, size }
                })
            }
            "qubit" | "bit" => {
                // OpenQASM 3 style: `qubit[n] q;`
                let is_q = keyword == "qubit";
                self.bump();
                self.expect(TokenKind::LBracket)?;
                let size = self.expect_usize()?;
                self.expect(TokenKind::RBracket)?;
                let name = self.expect_ident()?;
                self.expect(TokenKind::Semicolon)?;
                Ok(if is_q {
                    Statement::QregDecl { name, size }
                } else {
                    Statement::CregDecl { name, size }
                })
            }
            "measure" => {
                self.bump();
                let qubit = self.qubit_ref()?;
                let target = if self.eat(&TokenKind::Arrow) {
                    Some(self.qubit_ref()?)
                } else {
                    None
                };
                self.expect(TokenKind::Semicolon)?;
                Ok(Statement::Measure { qubit, target })
            }
            "barrier" => {
                self.bump();
                let mut qubits = Vec::new();
                if !self.eat(&TokenKind::Semicolon) {
                    loop {
                        qubits.push(self.qubit_ref()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semicolon)?;
                }
                Ok(Statement::Barrier { qubits })
            }
            "pragma" => {
                self.bump();
                let mut parts = Vec::new();
                while !matches!(self.peek_kind(), TokenKind::Semicolon | TokenKind::Eof) {
                    parts.push(self.bump().kind.raw_text());
                }
                self.eat(&TokenKind::Semicolon);
                Ok(Statement::Pragma(parts.join(" ")))
            }
            other => self.error(format!("unhandled statement keyword `{other}`")),
        }
    }

    fn gate_call(&mut self, annotations: Vec<Annotation>) -> Result<Statement, ParseError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let mut qubits = Vec::new();
        loop {
            qubits.push(self.qubit_ref()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(Statement::GateCall {
            annotations,
            name,
            params,
            qubits,
        })
    }

    fn qubit_ref(&mut self) -> Result<QubitRef, ParseError> {
        let register = self.expect_ident()?;
        if self.eat(&TokenKind::LBracket) {
            let index = self.expect_usize()?;
            self.expect(TokenKind::RBracket)?;
            Ok(QubitRef { register, index })
        } else {
            Ok(QubitRef { register, index: 0 })
        }
    }

    // ---- constant expressions (gate parameters) ---------------------------

    fn expr(&mut self) -> Result<f64, ParseError> {
        self.expr_add()
    }

    fn expr_add(&mut self) -> Result<f64, ParseError> {
        let mut v = self.expr_mul()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                v += self.expr_mul()?;
            } else if self.eat(&TokenKind::Minus) {
                v -= self.expr_mul()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<f64, ParseError> {
        let mut v = self.expr_unary()?;
        loop {
            if self.eat(&TokenKind::Star) {
                v *= self.expr_unary()?;
            } else if self.eat(&TokenKind::Slash) {
                let d = self.expr_unary()?;
                v /= d;
            } else {
                return Ok(v);
            }
        }
    }

    fn expr_unary(&mut self) -> Result<f64, ParseError> {
        if self.eat(&TokenKind::Minus) {
            return Ok(-self.expr_unary()?);
        }
        if self.eat(&TokenKind::Plus) {
            return self.expr_unary();
        }
        match self.peek_kind().clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(v)
            }
            TokenKind::Ident(s) if s == "pi" => {
                self.bump();
                Ok(std::f64::consts::PI)
            }
            TokenKind::Ident(s) if s == "tau" => {
                self.bump();
                Ok(std::f64::consts::TAU)
            }
            TokenKind::LParen => {
                self.bump();
                let v = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(v)
            }
            other => self.error(format!("expected expression, found {other}")),
        }
    }

    // ---- annotations -------------------------------------------------------

    fn annotation(&mut self) -> Result<Annotation, ParseError> {
        let keyword = match self.peek_kind().clone() {
            TokenKind::Annotation(k) => {
                self.bump();
                k
            }
            other => return self.error(format!("expected annotation, found {other}")),
        };
        match keyword.as_str() {
            "slm" => {
                self.expect(TokenKind::LBracket)?;
                let mut positions = Vec::new();
                loop {
                    self.expect(TokenKind::LParen)?;
                    let x = self.signed_number()?;
                    self.expect(TokenKind::Comma)?;
                    let y = self.signed_number()?;
                    self.expect(TokenKind::RParen)?;
                    positions.push((x, y));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Annotation::Slm { positions })
            }
            "aod" => {
                let xs = self.number_list()?;
                let ys = self.number_list()?;
                Ok(Annotation::Aod { xs, ys })
            }
            "bind" => {
                let qubit = self.qubit_ref()?;
                let layer = self.expect_ident()?;
                match layer.as_str() {
                    "slm" => {
                        let idx = self.expect_usize()?;
                        Ok(Annotation::Bind {
                            qubit,
                            target: BindTarget::Slm(idx),
                        })
                    }
                    "aod" => {
                        let cx = self.expect_usize()?;
                        let cy = self.expect_usize()?;
                        Ok(Annotation::Bind {
                            qubit,
                            target: BindTarget::Aod(cx, cy),
                        })
                    }
                    other => {
                        self.error(format!("expected `slm` or `aod` in @bind, found `{other}`"))
                    }
                }
            }
            "transfer" => {
                let slm_index = self.expect_usize()?;
                self.expect(TokenKind::LParen)?;
                let cx = self.expect_usize()?;
                self.expect(TokenKind::Comma)?;
                let cy = self.expect_usize()?;
                self.expect(TokenKind::RParen)?;
                Ok(Annotation::Transfer {
                    slm_index,
                    aod: (cx, cy),
                })
            }
            "shuttle" => {
                let axis_kw = self.expect_ident()?;
                let axis = match axis_kw.as_str() {
                    "row" => ShuttleAxis::Row,
                    "column" => ShuttleAxis::Column,
                    other => {
                        return self.error(format!(
                            "expected `row` or `column` in @shuttle, found `{other}`"
                        ))
                    }
                };
                let index = self.expect_usize()?;
                let offset = self.signed_number()?;
                Ok(Annotation::Shuttle {
                    axis,
                    index,
                    offset,
                })
            }
            "raman" => {
                let mode = self.expect_ident()?;
                match mode.as_str() {
                    "global" => {
                        let x = self.signed_number()?;
                        let y = self.signed_number()?;
                        let z = self.signed_number()?;
                        Ok(Annotation::RamanGlobal { x, y, z })
                    }
                    "local" => {
                        let qubit = self.qubit_ref()?;
                        let x = self.signed_number()?;
                        let y = self.signed_number()?;
                        let z = self.signed_number()?;
                        Ok(Annotation::RamanLocal { qubit, x, y, z })
                    }
                    other => self.error(format!(
                        "expected `global` or `local` in @raman, found `{other}`"
                    )),
                }
            }
            "rydberg" => Ok(Annotation::Rydberg),
            _ => {
                // Extensibility: any other annotation keyword swallows the
                // rest of its source line (paper grammar:
                // ⟨annotationKeyword⟩ ⟨remainingLineContent⟩?).
                let line = self.tokens[self.pos.saturating_sub(1)].line;
                let mut parts = Vec::new();
                while self.peek().line == line && !matches!(self.peek_kind(), TokenKind::Eof) {
                    parts.push(self.bump().kind.raw_text());
                }
                Ok(Annotation::Other {
                    keyword,
                    content: parts.join(" "),
                })
            }
        }
    }

    fn number_list(&mut self) -> Result<Vec<f64>, ParseError> {
        self.expect(TokenKind::LBracket)?;
        let mut out = Vec::new();
        if !self.eat(&TokenKind::RBracket) {
            loop {
                out.push(self.signed_number()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_and_registers() {
        let p = parse("OPENQASM 3.0;\ninclude \"stdgates.inc\";\nqreg q[5];\ncreg c[5];").unwrap();
        assert_eq!(p.version.as_deref(), Some("3"));
        assert_eq!(p.includes, vec!["stdgates.inc"]);
        assert_eq!(p.num_qubits(), 5);
    }

    #[test]
    fn parses_openqasm3_declarations() {
        let p = parse("qubit[3] q;\nbit[3] c;").unwrap();
        assert_eq!(p.num_qubits(), 3);
        assert!(matches!(p.statements[1], Statement::CregDecl { .. }));
    }

    #[test]
    fn parses_gate_with_params_and_expr() {
        let p = parse("qreg q[1];\nrz(pi/2) q[0];\nu3(0.1, -0.2, 2*pi) q[0];").unwrap();
        let Statement::GateCall { params, .. } = &p.statements[1] else {
            panic!("expected gate call");
        };
        assert!((params[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let Statement::GateCall { params, .. } = &p.statements[2] else {
            panic!("expected gate call");
        };
        assert!((params[2] - std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    fn parses_measure_and_barrier() {
        let p =
            parse("qreg q[2];\nbarrier q[0], q[1];\nmeasure q[0] -> c[0];\nmeasure q[1];").unwrap();
        assert!(matches!(&p.statements[1], Statement::Barrier { qubits } if qubits.len() == 2));
        assert!(
            matches!(&p.statements[2], Statement::Measure { target: Some(t), .. } if t.register == "c")
        );
        assert!(matches!(
            &p.statements[3],
            Statement::Measure { target: None, .. }
        ));
    }

    #[test]
    fn parses_all_fpqa_annotations() {
        let src = r#"
qreg q[3];
@slm [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]
@aod [5.0, 15.0] [7.5]
@bind q[0] slm 0
@bind q[1] aod 0 0
@transfer 2 (1, 0)
@shuttle row 0 -12.5
@raman global 0.5 0.0 -0.5
@raman local q[2] 1.0 2.0 3.0
@rydberg
cz q[0], q[1];
"#;
        let p = parse(src).unwrap();
        let Statement::GateCall {
            annotations, name, ..
        } = &p.statements[1]
        else {
            panic!("expected annotated gate call, got {:?}", p.statements[1]);
        };
        assert_eq!(name, "cz");
        assert_eq!(annotations.len(), 9);
        assert!(
            matches!(annotations[0], Annotation::Slm { ref positions } if positions.len() == 3)
        );
        assert!(
            matches!(annotations[1], Annotation::Aod { ref xs, ref ys } if xs.len() == 2 && ys.len() == 1)
        );
        assert!(matches!(annotations[5], Annotation::Shuttle { offset, .. } if offset == -12.5));
        assert_eq!(annotations[8], Annotation::Rydberg);
    }

    #[test]
    fn standalone_annotations_before_declarations() {
        let src = "@slm [(0.0, 0.0)]\nqreg q[1];\nh q[0];";
        let p = parse(src).unwrap();
        assert!(matches!(p.statements[0], Statement::Standalone(_)));
        assert!(matches!(p.statements[1], Statement::QregDecl { .. }));
    }

    #[test]
    fn unknown_annotation_is_preserved() {
        let src = "qreg q[1];\n@mycompiler hint 42\nh q[0];";
        let p = parse(src).unwrap();
        let Statement::GateCall { annotations, .. } = &p.statements[1] else {
            panic!();
        };
        assert!(
            matches!(&annotations[0], Annotation::Other { keyword, content }
                if keyword == "mycompiler" && content.contains("42"))
        );
    }

    #[test]
    fn pragma_is_kept() {
        let p = parse("pragma weaver target fpqa;\nqreg q[1];").unwrap();
        assert!(matches!(&p.statements[0], Statement::Pragma(s) if s.contains("fpqa")));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("qreg q[2];\ncz q[0] q[1];").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn rejects_malformed_annotation() {
        assert!(parse("@bind q[0] foo 3\nh q[0];").is_err());
        assert!(parse("@shuttle diagonal 0 1\nh q[0];").is_err());
        assert!(parse("@raman sideways 1 2 3\nh q[0];").is_err());
    }

    #[test]
    fn trailing_standalone_annotations_allowed() {
        let p = parse("qreg q[1];\nh q[0];\n@rydberg").unwrap();
        assert!(matches!(
            p.statements.last(),
            Some(Statement::Standalone(Annotation::Rydberg))
        ));
    }
}
