//! Conversion between wQasm [`Program`]s and the circuit IR.
//!
//! Lowering direction (`program_to_circuit`) ignores FPQA annotations — a
//! wQasm file "can be treated like a regular OpenQASM file" when retargeting
//! to other architectures (paper §4.2). Lifting direction
//! (`circuit_to_program`) emits plain OpenQASM; the Weaver codegen in
//! `weaver-core` then attaches FPQA annotations.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;
use weaver_circuit::{Circuit, Gate, Operation};

/// Error converting a program to a circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvertError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conversion error: {}", self.message)
    }
}

impl std::error::Error for ConvertError {}

/// Maps a gate mnemonic and parameters to a [`Gate`].
pub fn gate_from_name(name: &str, params: &[f64]) -> Result<Gate, ConvertError> {
    let wrong_params = |expected: usize| ConvertError {
        message: format!(
            "gate `{name}` expects {expected} parameter(s), got {}",
            params.len()
        ),
    };
    Ok(match name {
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "rx" => Gate::Rx(*params.first().ok_or_else(|| wrong_params(1))?),
        "ry" => Gate::Ry(*params.first().ok_or_else(|| wrong_params(1))?),
        "rz" => Gate::Rz(*params.first().ok_or_else(|| wrong_params(1))?),
        "p" | "u1" => Gate::P(*params.first().ok_or_else(|| wrong_params(1))?),
        "u3" | "u" => {
            if params.len() != 3 {
                return Err(wrong_params(3));
            }
            Gate::U3(params[0], params[1], params[2])
        }
        "cx" | "cnot" => Gate::Cx,
        "cz" => Gate::Cz,
        "crz" => Gate::Crz(*params.first().ok_or_else(|| wrong_params(1))?),
        "cp" => {
            // CP(θ) == CRZ(θ) up to global phase; keep exact by CRZ + P on
            // control — but as a single gate we map to Crz and accept the
            // phase difference only where equivalence is up-to-phase. To be
            // exact we reject and ask for decomposed input.
            return Err(ConvertError {
                message: "gate `cp` must be decomposed before conversion".to_string(),
            });
        }
        "swap" => Gate::Swap,
        "ccx" | "toffoli" => Gate::Ccx,
        "ccz" => Gate::Ccz,
        other => {
            return Err(ConvertError {
                message: format!("unknown gate `{other}`"),
            })
        }
    })
}

/// The wQasm mnemonic and parameters for a [`Gate`].
pub fn gate_to_name(gate: &Gate) -> (&'static str, Vec<f64>) {
    (gate.name(), gate.params())
}

/// Lowers a program to a [`Circuit`], flattening all quantum registers into
/// one linear index space (in declaration order) and ignoring annotations.
///
/// # Errors
///
/// Returns [`ConvertError`] for unknown gates, undeclared registers, or
/// out-of-range indices.
pub fn program_to_circuit(program: &Program) -> Result<Circuit, ConvertError> {
    // Assign base offsets per register.
    let mut offsets: HashMap<String, (usize, usize)> = HashMap::new(); // name -> (base, size)
    let mut total = 0usize;
    for stmt in &program.statements {
        if let Statement::QregDecl { name, size } = stmt {
            offsets.insert(name.clone(), (total, *size));
            total += size;
        }
    }
    let resolve = |q: &QubitRef| -> Result<usize, ConvertError> {
        let (base, size) = offsets.get(&q.register).ok_or_else(|| ConvertError {
            message: format!("undeclared quantum register `{}`", q.register),
        })?;
        if q.index >= *size {
            return Err(ConvertError {
                message: format!("qubit index {} out of range for `{}`", q.index, q.register),
            });
        }
        Ok(base + q.index)
    };

    let mut circuit = Circuit::new(total);
    for stmt in &program.statements {
        match stmt {
            Statement::GateCall {
                name,
                params,
                qubits,
                ..
            } => {
                let gate = gate_from_name(name, params)?;
                let qs: Result<Vec<usize>, ConvertError> = qubits.iter().map(resolve).collect();
                let qs = qs?;
                if qs.len() != gate.num_qubits() {
                    return Err(ConvertError {
                        message: format!(
                            "gate `{name}` expects {} operands, got {}",
                            gate.num_qubits(),
                            qs.len()
                        ),
                    });
                }
                circuit.push(gate, &qs);
            }
            Statement::Measure { qubit, .. } => {
                circuit.measure(resolve(qubit)?);
            }
            Statement::Barrier { qubits } => {
                let qs: Result<Vec<usize>, ConvertError> = qubits.iter().map(resolve).collect();
                circuit.push_op(Operation::Barrier(qs?));
            }
            _ => {}
        }
    }
    Ok(circuit)
}

/// Lifts a circuit to a plain OpenQASM [`Program`] over a single register
/// `q` (and classical register `c` if the circuit measures).
pub fn circuit_to_program(circuit: &Circuit) -> Program {
    let mut prog = Program::new();
    prog.statements.push(Statement::QregDecl {
        name: "q".to_string(),
        size: circuit.num_qubits(),
    });
    let has_measure = circuit
        .operations()
        .iter()
        .any(|o| matches!(o, Operation::Measure(_)));
    if has_measure {
        prog.statements.push(Statement::CregDecl {
            name: "c".to_string(),
            size: circuit.num_qubits(),
        });
    }
    for op in circuit.operations() {
        match op {
            Operation::Gate(instr) => {
                let (name, params) = gate_to_name(&instr.gate);
                prog.statements.push(Statement::GateCall {
                    annotations: Vec::new(),
                    name: name.to_string(),
                    params,
                    qubits: instr.qubits.iter().map(|&q| QubitRef::q(q)).collect(),
                });
            }
            Operation::Measure(q) => prog.statements.push(Statement::Measure {
                qubit: QubitRef::q(*q),
                target: Some(QubitRef {
                    register: "c".to_string(),
                    index: *q,
                }),
            }),
            Operation::Barrier(qs) => prog.statements.push(Statement::Barrier {
                qubits: qs.iter().map(|&q| QubitRef::q(q)).collect(),
            }),
        }
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use weaver_simulator::equiv;

    #[test]
    fn lowers_simple_program() {
        let p = parse("qreg q[2];\nh q[0];\ncz q[0], q[1];\nmeasure q[0];").unwrap();
        let c = program_to_circuit(&p).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn multiple_registers_flatten() {
        let p = parse("qreg a[2];\nqreg b[2];\ncx a[1], b[0];").unwrap();
        let c = program_to_circuit(&p).unwrap();
        assert_eq!(c.num_qubits(), 4);
        let instr = c.instructions().next().unwrap();
        assert_eq!(instr.qubits, vec![1, 2]);
    }

    #[test]
    fn roundtrip_circuit_program_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).rz(0.25, 1).ccz(0, 1, 2).cx(2, 0).measure_all();
        let p = circuit_to_program(&c);
        let c2 = program_to_circuit(&p).unwrap();
        assert_eq!(c.num_qubits(), c2.num_qubits());
        assert_eq!(c.gate_count(), c2.gate_count());
        let e = equiv::compare(&c.unitary(), &c2.unitary(), 1e-10);
        assert!(e.is_equivalent());
    }

    #[test]
    fn annotations_are_ignored_when_lowering() {
        let p = parse("qreg q[2];\n@rydberg\ncz q[0], q[1];").unwrap();
        let c = program_to_circuit(&p).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let p = parse("qreg q[1];\nfoo q[0];").unwrap();
        assert!(program_to_circuit(&p).is_err());
    }

    #[test]
    fn out_of_range_is_an_error() {
        let p = parse("qreg q[1];\nh q[3];").unwrap();
        assert!(program_to_circuit(&p).is_err());
    }

    #[test]
    fn u_gate_aliases() {
        let p = parse("qreg q[1];\nu(0.1, 0.2, 0.3) q[0];\nu1(0.5) q[0];").unwrap();
        let c = program_to_circuit(&p).unwrap();
        let gates: Vec<_> = c.instructions().map(|i| i.gate.clone()).collect();
        assert_eq!(gates[0], Gate::U3(0.1, 0.2, 0.3));
        assert_eq!(gates[1], Gate::P(0.5));
    }
}
