//! Serializes a [`Program`] back to wQasm source text.
//!
//! The printer and [`crate::parse`] round-trip: `parse(print(p)) == p` up to
//! floating-point formatting, which the property tests in this crate verify.

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a program as wQasm source.
///
/// # Examples
///
/// ```
/// use weaver_wqasm::{parse, print};
/// let p = parse("qreg q[1];\n@rydberg\nh q[0];").unwrap();
/// let text = print(&p);
/// assert!(text.contains("@rydberg"));
/// assert_eq!(parse(&text).unwrap(), p);
/// ```
pub fn print(program: &Program) -> String {
    let mut out = String::new();
    if let Some(v) = &program.version {
        // Keep a conventional two-part version number.
        let v = if v.contains('.') {
            v.clone()
        } else {
            format!("{v}.0")
        };
        let _ = writeln!(out, "OPENQASM {v};");
    }
    for inc in &program.includes {
        let _ = writeln!(out, "include \"{inc}\";");
    }
    for stmt in &program.statements {
        print_statement(stmt, &mut out);
    }
    out
}

fn print_statement(stmt: &Statement, out: &mut String) {
    match stmt {
        Statement::QregDecl { name, size } => {
            let _ = writeln!(out, "qreg {name}[{size}];");
        }
        Statement::CregDecl { name, size } => {
            let _ = writeln!(out, "creg {name}[{size}];");
        }
        Statement::GateCall {
            annotations,
            name,
            params,
            qubits,
        } => {
            for a in annotations {
                print_annotation(a, out);
            }
            let _ = write!(out, "{name}");
            if !params.is_empty() {
                let ps: Vec<String> = params.iter().map(|p| fmt_f64(*p)).collect();
                let _ = write!(out, "({})", ps.join(", "));
            }
            let qs: Vec<String> = qubits.iter().map(|q| q.to_string()).collect();
            let _ = writeln!(out, " {};", qs.join(", "));
        }
        Statement::Measure { qubit, target } => match target {
            Some(t) => {
                let _ = writeln!(out, "measure {qubit} -> {t};");
            }
            None => {
                let _ = writeln!(out, "measure {qubit};");
            }
        },
        Statement::Barrier { qubits } => {
            if qubits.is_empty() {
                let _ = writeln!(out, "barrier;");
            } else {
                let qs: Vec<String> = qubits.iter().map(|q| q.to_string()).collect();
                let _ = writeln!(out, "barrier {};", qs.join(", "));
            }
        }
        Statement::Pragma(text) => {
            let _ = writeln!(out, "pragma {text};");
        }
        Statement::Standalone(a) => print_annotation(a, out),
    }
}

fn print_annotation(a: &Annotation, out: &mut String) {
    match a {
        Annotation::Slm { positions } => {
            let ps: Vec<String> = positions
                .iter()
                .map(|(x, y)| format!("({}, {})", fmt_f64(*x), fmt_f64(*y)))
                .collect();
            let _ = writeln!(out, "@slm [{}]", ps.join(", "));
        }
        Annotation::Aod { xs, ys } => {
            let _ = writeln!(out, "@aod [{}] [{}]", fmt_list(xs), fmt_list(ys));
        }
        Annotation::Bind { qubit, target } => match target {
            BindTarget::Slm(i) => {
                let _ = writeln!(out, "@bind {qubit} slm {i}");
            }
            BindTarget::Aod(cx, cy) => {
                let _ = writeln!(out, "@bind {qubit} aod {cx} {cy}");
            }
        },
        Annotation::Transfer { slm_index, aod } => {
            let _ = writeln!(out, "@transfer {slm_index} ({}, {})", aod.0, aod.1);
        }
        Annotation::Shuttle {
            axis,
            index,
            offset,
        } => {
            let _ = writeln!(out, "@shuttle {axis} {index} {}", fmt_f64(*offset));
        }
        Annotation::RamanGlobal { x, y, z } => {
            let _ = writeln!(
                out,
                "@raman global {} {} {}",
                fmt_f64(*x),
                fmt_f64(*y),
                fmt_f64(*z)
            );
        }
        Annotation::RamanLocal { qubit, x, y, z } => {
            let _ = writeln!(
                out,
                "@raman local {qubit} {} {} {}",
                fmt_f64(*x),
                fmt_f64(*y),
                fmt_f64(*z)
            );
        }
        Annotation::Rydberg => {
            let _ = writeln!(out, "@rydberg");
        }
        Annotation::Other { keyword, content } => {
            if content.is_empty() {
                let _ = writeln!(out, "@{keyword}");
            } else {
                let _ = writeln!(out, "@{keyword} {content}");
            }
        }
    }
}

fn fmt_list(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| fmt_f64(*x))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Formats a float so the lexer round-trips it exactly: uses Rust's shortest
/// representation, which `f64::parse` recovers losslessly.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let text = print(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(p1, p2, "round-trip mismatch\n---\n{text}");
    }

    #[test]
    fn roundtrips_simple_program() {
        roundtrip("OPENQASM 3.0;\nqreg q[2];\nh q[0];\ncz q[0], q[1];\nmeasure q[0];");
    }

    #[test]
    fn roundtrips_annotations() {
        roundtrip(
            "qreg q[3];\n@slm [(0.0, 0.0), (7.25, -3.5)]\n@aod [1.0, 2.0] [0.5]\n@bind q[0] slm 0\n@bind q[1] aod 1 0\n@transfer 1 (0, 0)\n@shuttle column 1 4.25\n@raman global 0.1 -0.2 0.3\n@raman local q[2] 0.0 1.0 0.0\n@rydberg\nccz q[0], q[1], q[2];",
        );
    }

    #[test]
    fn roundtrips_negative_and_scientific() {
        roundtrip("qreg q[1];\nrz(-0.5) q[0];\nrx(1e-3) q[0];");
    }

    #[test]
    fn roundtrips_barriers_and_pragmas() {
        roundtrip("pragma weaver target fpqa;\nqreg q[2];\nbarrier;\nbarrier q[0], q[1];");
    }

    #[test]
    fn integers_print_with_decimal() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.5), "0.5");
    }
}
