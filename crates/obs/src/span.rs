//! Hierarchical span tracing.
//!
//! A [`SpanGuard`] measures one region of work RAII-style: entering records
//! a monotonic start timestamp (microseconds since the process trace
//! epoch), dropping records the duration and appends one [`SpanRecord`] to
//! a per-thread buffer. Buffers drain into a process-global collector when
//! they fill and when their thread exits, so the hot path never takes the
//! global lock. Parent/child nesting is tracked per thread: a span entered
//! while another is open on the same thread becomes its child, which is
//! exactly how per-pass spans nest under their per-job span on a
//! work-stealing pool worker.
//!
//! Tracing is off by default. Disabled, [`span`] is a single relaxed
//! atomic load and returns an inert guard — no timestamp, no allocation,
//! no buffer traffic — so instrumentation can stay on hot paths
//! permanently. Enable it with [`set_enabled`], run the workload, then
//! [`take`] the collected [`Trace`] and export it as Chrome
//! `chrome://tracing` / Perfetto JSON ([`Trace::chrome_json`]) or flat
//! JSONL ([`Trace::to_jsonl`]).
//!
//! # Examples
//!
//! ```
//! use weaver_obs::span;
//!
//! weaver_obs::span::set_enabled(true);
//! {
//!     let _outer = span::span("demo", "doctest-outer");
//!     let _inner = span::span("demo", "doctest-inner").with_arg("k", 7);
//! } // dropping the guards records both spans
//! let trace = span::take();
//! let inner = trace
//!     .spans
//!     .iter()
//!     .find(|s| s.name == "doctest-inner")
//!     .expect("recorded");
//! let outer = trace
//!     .spans
//!     .iter()
//!     .find(|s| s.name == "doctest-outer")
//!     .expect("recorded");
//! assert_eq!(inner.parent, outer.id, "nested span links to its parent");
//! assert!(trace.chrome_json().contains("\"traceEvents\""));
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// Spans buffered per thread before a flush into the global collector.
const FLUSH_THRESHOLD: usize = 1024;

/// Whether span tracing is currently collecting. The disabled fast path of
/// [`span`] is this single relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span collection on or off process-wide. Enabling pins the trace
/// epoch (timestamp zero) the first time it happens.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin timestamp zero before the first span
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process trace epoch: all span timestamps are microseconds since
/// this instant.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the span this one nested inside on the same thread, or 0 for
    /// a root span.
    pub parent: u64,
    /// Trace-local id of the thread the span ran on (see
    /// [`Trace::threads`] for names).
    pub tid: u64,
    /// Span name (e.g. the job or pass name).
    pub name: String,
    /// Coarse category (`"job"`, `"pass"`, `"route"`, …) — Chrome's `cat`.
    pub cat: &'static str,
    /// Start, in microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Key/value annotations (Chrome's `args`).
    pub args: Vec<(&'static str, String)>,
}

/// A drained trace: every finished span plus the thread-name table.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Finished spans, in per-thread completion order.
    pub spans: Vec<SpanRecord>,
    /// `(tid, thread name)` for every thread that recorded a span.
    pub threads: Vec<(u64, String)>,
}

struct Collector {
    spans: Vec<SpanRecord>,
    threads: Vec<(u64, String)>,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        Mutex::new(Collector {
            spans: Vec::new(),
            threads: Vec::new(),
        })
    })
}

/// Per-thread state: the open-span stack and the local record buffer.
struct Local {
    tid: u64,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

impl Local {
    fn new() -> Local {
        let tid = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_string);
        collector()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .threads
            .push((tid, name));
        Local {
            tid,
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            collector()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .spans
                .append(&mut self.buf);
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = RefCell::new(Local::new());
}

/// The live half of an active [`SpanGuard`].
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: String,
    cat: &'static str,
    start: Instant,
    start_us: u64,
    args: Vec<(&'static str, String)>,
}

/// An RAII span: created by [`span`], records itself when dropped. Inert
/// (and free) while tracing is disabled.
pub struct SpanGuard(Option<ActiveSpan>);

/// Opens a span named `name` under category `cat`. While tracing is
/// disabled this is one atomic load and the returned guard does nothing.
#[inline]
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_slow(cat, name.into())
}

fn span_slow(cat: &'static str, name: String) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let parent = LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let parent = local.stack.last().copied().unwrap_or(0);
        local.stack.push(id);
        parent
    });
    SpanGuard(Some(ActiveSpan {
        id,
        parent,
        name,
        cat,
        start,
        start_us,
        args: Vec::new(),
    }))
}

impl SpanGuard {
    /// Attaches a key/value annotation (builder form).
    pub fn with_arg(mut self, key: &'static str, value: impl ToString) -> Self {
        self.set_arg(key, value);
        self
    }

    /// Attaches a key/value annotation in place.
    pub fn set_arg(&mut self, key: &'static str, value: impl ToString) {
        if let Some(active) = &mut self.0 {
            active.args.push((key, value.to_string()));
        }
    }

    /// Seconds elapsed since the span opened (0.0 while tracing is
    /// disabled).
    pub fn elapsed_seconds(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |a| a.start.elapsed().as_secs_f64())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_micros() as u64;
        LOCAL.with(|local| {
            let mut local = local.borrow_mut();
            // Guards drop LIFO within a thread; tolerate a leaked
            // intermediate guard by popping down to this span's id.
            while let Some(top) = local.stack.pop() {
                if top == active.id {
                    break;
                }
            }
            let tid = local.tid;
            local.buf.push(SpanRecord {
                id: active.id,
                parent: active.parent,
                tid,
                name: active.name,
                cat: active.cat,
                start_us: active.start_us,
                dur_us,
                args: active.args,
            });
            if local.buf.len() >= FLUSH_THRESHOLD {
                local.flush();
            }
        });
    }
}

/// Flushes the calling thread's span buffer into the global collector.
///
/// Thread exit flushes automatically via the thread-local's destructor,
/// but `std::thread::scope` unblocks as soon as a worker's closure
/// returns — *before* that destructor runs on the dying OS thread — so a
/// scoped worker's final spans can land after the scope's owner already
/// called [`take`]. Pool workers therefore call this explicitly as their
/// last action. (`JoinHandle::join` does not have this problem.)
pub fn flush_thread() {
    LOCAL.with(|local| local.borrow_mut().flush());
}

/// Drains every finished span into a [`Trace`]: the calling thread's local
/// buffer is flushed first, then the global collector is emptied. Threads
/// still inside an open span keep it until the span closes; worker threads
/// flush automatically when they exit, and scoped pool workers flush
/// explicitly before their closure returns (see [`flush_thread`]).
pub fn take() -> Trace {
    flush_thread();
    let mut collector = collector()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Trace {
        spans: std::mem::take(&mut collector.spans),
        threads: collector.threads.clone(),
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Escapes a string for a JSON string literal (no surrounding quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn args_json(args: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    let mut fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        fields.push(format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    format!("{{{}}}", fields.join(","))
}

impl Trace {
    /// Renders the trace in the Chrome trace-event format (a JSON object
    /// with a `traceEvents` array of `ph:"X"` complete events plus
    /// `thread_name` metadata), directly loadable by `chrome://tracing`
    /// and Perfetto.
    pub fn chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + self.threads.len() + 1);
        events.push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"weaver\"}}"
                .to_string(),
        );
        for (tid, name) in &self.threads {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ));
        }
        for s in &self.spans {
            let parent = s.parent.to_string();
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"cat\":\"{}\",\"id\":{},\"args\":{}}}",
                s.tid,
                s.start_us,
                s.dur_us,
                json_escape(&s.name),
                json_escape(s.cat),
                s.id,
                args_json(&s.args, Some(("parent", &parent))),
            ));
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    /// Renders the trace as flat JSONL: one JSON object per span, carrying
    /// `id`/`parent`/`tid`/`name`/`cat`/`start_us`/`dur_us`/`args`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"id\":{},\"parent\":{},\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
                 \"start_us\":{},\"dur_us\":{},\"args\":{}}}",
                s.id,
                s.parent,
                s.tid,
                json_escape(&s.name),
                json_escape(s.cat),
                s.start_us,
                s.dur_us,
                args_json(&s.args, None),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global and tests in one binary run
    // concurrently, so every test filters by its own unique category.

    fn drain_cat(cat: &str) -> Vec<SpanRecord> {
        take().spans.into_iter().filter(|s| s.cat == cat).collect()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _g = span("span-test-disabled", "ignored");
        }
        set_enabled(true);
        assert!(drain_cat("span-test-disabled").is_empty());
    }

    #[test]
    fn spans_nest_on_one_thread() {
        set_enabled(true);
        {
            let _a = span("span-test-nest", "a");
            {
                let _b = span("span-test-nest", "b").with_arg("x", 1);
            }
        }
        let spans = drain_cat("span-test-nest");
        assert_eq!(spans.len(), 2);
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.parent, a.id);
        assert_eq!(a.parent, 0);
        assert_eq!(a.tid, b.tid);
        assert!(b.start_us >= a.start_us);
        assert_eq!(b.args, vec![("x", "1".to_string())]);
    }

    #[test]
    fn cross_thread_spans_attribute_their_thread() {
        set_enabled(true);
        std::thread::Builder::new()
            .name("span-test-worker".into())
            .spawn(|| {
                let _g = span("span-test-thread", "on-worker");
            })
            .unwrap()
            .join()
            .unwrap();
        let trace = take();
        let span = trace
            .spans
            .iter()
            .find(|s| s.cat == "span-test-thread")
            .expect("worker flushed on exit");
        let (_, name) = trace
            .threads
            .iter()
            .find(|(tid, _)| *tid == span.tid)
            .expect("thread registered");
        assert_eq!(name, "span-test-worker");
    }

    #[test]
    fn chrome_export_has_required_fields() {
        set_enabled(true);
        {
            let _g = span("span-test-chrome", "exported").with_arg("k", "v\"q");
        }
        let mut trace = take();
        trace.spans.retain(|s| s.cat == "span-test-chrome");
        let json = trace.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        for field in [
            "\"ph\":\"X\"",
            "\"ts\":",
            "\"dur\":",
            "\"tid\":",
            "\"cat\":",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.contains("\"k\":\"v\\\"q\""), "args escaped: {json}");
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"name\":\"exported\""));
    }
}
