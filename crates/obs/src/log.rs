//! Leveled, warn-once-capable structured logging to stderr.
//!
//! The maximum level is read once from `WEAVER_LOG`
//! (`error|warn|info|debug|off`, default `warn`) and can be overridden
//! programmatically with [`set_max_level`]. Every emitted message also
//! increments the `weaver_log_messages_total{level=…}` counter, so log
//! volume shows up in the metrics snapshot.
//!
//! [`warn_once`] deduplicates by caller-chosen key — the replacement for
//! the repo's old `static AtomicBool + eprintln!` warn-once pattern.
//!
//! # Examples
//!
//! ```
//! use weaver_obs::log::{self, Level};
//!
//! log::set_max_level(Level::Info);
//! log::info("doctest", "engine started");
//! assert!(log::warn_once("doctest-key", "doctest", "first time: printed"));
//! assert!(!log::warn_once("doctest-key", "doctest", "second time: suppressed"));
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Degraded behavior the user should know about.
    Warn,
    /// High-level lifecycle events.
    Info,
    /// Detailed diagnostics.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Encoding for the atomic: 0 = uninitialized, 1 = off, 2..=5 = levels.
const UNINIT: u8 = 0;
const OFF: u8 = 1;

fn encode(level: Level) -> u8 {
    match level {
        Level::Error => 2,
        Level::Warn => 3,
        Level::Info => 4,
        Level::Debug => 5,
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn level_from_env() -> u8 {
    match std::env::var("WEAVER_LOG").as_deref() {
        Ok("error") => encode(Level::Error),
        Ok("warn") => encode(Level::Warn),
        Ok("info") => encode(Level::Info),
        Ok("debug") => encode(Level::Debug),
        Ok("off") | Ok("none") => OFF,
        _ => encode(Level::Warn),
    }
}

fn max_level_encoded() -> u8 {
    let cur = MAX_LEVEL.load(Ordering::Relaxed);
    if cur != UNINIT {
        return cur;
    }
    let from_env = level_from_env();
    // First caller wins; a racing set_max_level is fine either way.
    let _ = MAX_LEVEL.compare_exchange(UNINIT, from_env, Ordering::Relaxed, Ordering::Relaxed);
    MAX_LEVEL.load(Ordering::Relaxed)
}

/// Overrides the maximum emitted level (wins over `WEAVER_LOG`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(encode(level), Ordering::Relaxed);
}

/// Silences all logging (equivalent to `WEAVER_LOG=off`).
pub fn set_off() {
    MAX_LEVEL.store(OFF, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
pub fn enabled(level: Level) -> bool {
    encode(level) <= max_level_encoded()
}

/// Logs `message` from `module` at `level`. Format:
/// `weaver[<level>] <module>: <message>` on stderr.
pub fn log(level: Level, module: &str, message: &str) {
    crate::metrics::counter_with(
        "weaver_log_messages_total",
        "Log messages emitted or suppressed, by level.",
        &[("level", level.as_str())],
    )
    .inc();
    if enabled(level) {
        eprintln!("weaver[{level}] {module}: {message}");
    }
}

/// Logs at [`Level::Error`].
pub fn error(module: &str, message: &str) {
    log(Level::Error, module, message);
}

/// Logs at [`Level::Warn`].
pub fn warn(module: &str, message: &str) {
    log(Level::Warn, module, message);
}

/// Logs at [`Level::Info`].
pub fn info(module: &str, message: &str) {
    log(Level::Info, module, message);
}

/// Logs at [`Level::Debug`].
pub fn debug(module: &str, message: &str) {
    log(Level::Debug, module, message);
}

fn once_keys() -> &'static Mutex<BTreeSet<String>> {
    static KEYS: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    KEYS.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Logs a warning the first time `key` is seen in this process and
/// suppresses every repeat. Returns `true` iff this call emitted.
pub fn warn_once(key: &str, module: &str, message: &str) -> bool {
    let fresh = once_keys()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(key.to_string());
    if fresh {
        warn(module, message);
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_max_level_gates_enabled() {
        set_max_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));
        set_max_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_max_level(Level::Warn);
    }

    #[test]
    fn warn_once_dedupes_by_key() {
        set_max_level(Level::Warn);
        assert!(warn_once("log-test-a", "log-test", "emitted"));
        assert!(!warn_once("log-test-a", "log-test", "suppressed"));
        assert!(warn_once("log-test-b", "log-test", "different key emits"));
    }

    #[test]
    fn logging_increments_metrics() {
        let c = crate::metrics::counter_with(
            "weaver_log_messages_total",
            "Log messages emitted or suppressed, by level.",
            &[("level", "debug")],
        );
        let before = c.get();
        debug("log-test", "counted even when suppressed");
        assert_eq!(c.get(), before + 1);
    }
}
