//! `weaver-obs` — unified observability for the Weaver compiler stack.
//!
//! Three dependency-free building blocks shared by every layer of the
//! workspace (pass manager, batch engine, artifact cache, paged store,
//! backends, CLI):
//!
//! * [`span`] — hierarchical RAII span tracing with per-thread buffers,
//!   exportable as Chrome `chrome://tracing` JSON or flat JSONL. Near
//!   zero-cost while disabled (one relaxed atomic load per span site).
//! * [`metrics`] — a process-global registry of counters, gauges, and
//!   fixed-bucket latency histograms with a Prometheus
//!   exposition-format snapshot.
//! * [`log`] — a leveled, warn-once-capable logger controlled by
//!   `WEAVER_LOG`.
//!
//! The crate also owns [`PassRecord`], the canonical per-pass timing
//! struct that unifies the old `weaver_core::backend::PassStat` /
//! `weaver_engine::PassTiming` duplicates.
//!
//! # Examples
//!
//! ```
//! use weaver_obs::{metrics, span};
//!
//! span::set_enabled(true);
//! {
//!     let _s = span::span("pass", "example-pass");
//!     metrics::counter("lib_doctest_passes_total", "Passes run.").inc();
//! }
//! let trace = span::take();
//! assert!(trace.spans.iter().any(|s| s.name == "example-pass"));
//! assert!(metrics::snapshot().contains("lib_doctest_passes_total 1"));
//! ```

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram};
pub use span::{SpanGuard, Trace};

/// Canonical per-pass timing record, shared by the core pass manager and
/// the engine's on-disk artifact format.
///
/// Field names and meanings match both of the structs it replaces, so the
/// `weaver-artifact 2` serialization (`name seconds steps` lines) stays
/// byte-stable.
///
/// # Examples
///
/// ```
/// let rec = weaver_obs::PassRecord {
///     name: "sabre-transpile".to_string(),
///     seconds: 0.0021,
///     steps: 42,
/// };
/// assert_eq!(rec.name, "sabre-transpile");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PassRecord {
    /// Pass name as registered with the pass manager.
    pub name: String,
    /// Wall-clock duration of the pass in seconds.
    pub seconds: f64,
    /// Pass-defined work measure (gates touched, swaps inserted, …).
    pub steps: u64,
}
