//! Process-global metrics registry: counters, gauges, and fixed-bucket
//! latency histograms with a Prometheus exposition-format snapshot.
//!
//! Series are registered on first use and live for the life of the
//! process. Lookup takes a registry mutex, so hot paths should resolve
//! their series once (e.g. in a constructor) and keep the returned
//! [`Counter`] / [`Gauge`] / [`Histogram`] handle — updates on a handle
//! are plain atomics.
//!
//! # Examples
//!
//! ```
//! use weaver_obs::metrics;
//!
//! let hits = metrics::counter_with(
//!     "doctest_cache_hits_total",
//!     "Cache hits.",
//!     &[("tier", "memory")],
//! );
//! hits.inc();
//! let lat = metrics::latency_histogram("doctest_lookup_seconds", "Lookup latency.");
//! lat.observe(0.000_25);
//! let text = metrics::snapshot();
//! assert!(text.contains("doctest_cache_hits_total{tier=\"memory\"} 1"));
//! assert!(text.contains("doctest_lookup_seconds_bucket"));
//! let parsed = metrics::parse_snapshot(&text);
//! assert_eq!(
//!     parsed.get("doctest_cache_hits_total{tier=\"memory\"}"),
//!     Some(&1.0)
//! );
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous `f64` value that can go up or down.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop over the f64 bit pattern).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default latency buckets: powers of 4 from 1µs to ~17s. Wide enough for
/// everything from a WAL fsync to a full batch, cheap enough to snapshot.
pub const DEFAULT_LATENCY_BUCKETS: [f64; 13] = [
    1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1.024e-3, 4.096e-3, 16.384e-3, 65.536e-3, 0.262_144,
    1.048_576, 4.194_304, 16.777_216,
];

/// A fixed-bucket histogram of `f64` observations (typically seconds).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus a final overflow (+Inf) slot.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket that crosses the target rank — the standard
    /// Prometheus `histogram_quantile` estimate. Returns `None` if the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cumulative = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                cumulative += in_bucket;
                continue;
            }
            if (cumulative + in_bucket) as f64 >= target {
                let lower = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    // +Inf bucket: report its lower bound.
                    return Some(lower);
                };
                let frac = (target - cumulative as f64) / in_bucket as f64;
                return Some(lower + (upper - lower) * frac);
            }
            cumulative += in_bucket;
        }
        self.bounds.last().copied()
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: &'static str,
    series: Series,
}

/// Registry key: `name` or `name{k="v",…}` with labels sorted by key.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted = labels.to_vec();
    sorted.sort();
    let rendered: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\"", v = v.replace('"', "\\\"")))
        .collect();
    format!("{name}{{{}}}", rendered.join(","))
}

fn registry() -> &'static Mutex<BTreeMap<String, Entry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (or retrieves) an unlabeled counter.
pub fn counter(name: &str, help: &'static str) -> Arc<Counter> {
    counter_with(name, help, &[])
}

/// Registers (or retrieves) a counter with labels.
///
/// # Panics
/// Panics if the same series name+labels was registered as a different
/// kind.
pub fn counter_with(name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<Counter> {
    let key = series_key(name, labels);
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let entry = reg.entry(key.clone()).or_insert_with(|| Entry {
        help,
        series: Series::Counter(Arc::new(Counter::default())),
    });
    match &entry.series {
        Series::Counter(c) => Arc::clone(c),
        _ => panic!("metric {key} already registered as a non-counter"),
    }
}

/// Registers (or retrieves) an unlabeled gauge.
pub fn gauge(name: &str, help: &'static str) -> Arc<Gauge> {
    gauge_with(name, help, &[])
}

/// Registers (or retrieves) a gauge with labels.
///
/// # Panics
/// Panics if the same series name+labels was registered as a different
/// kind.
pub fn gauge_with(name: &str, help: &'static str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    let key = series_key(name, labels);
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let entry = reg.entry(key.clone()).or_insert_with(|| Entry {
        help,
        series: Series::Gauge(Arc::new(Gauge::default())),
    });
    match &entry.series {
        Series::Gauge(g) => Arc::clone(g),
        _ => panic!("metric {key} already registered as a non-gauge"),
    }
}

/// Registers (or retrieves) a histogram with [`DEFAULT_LATENCY_BUCKETS`].
pub fn latency_histogram(name: &str, help: &'static str) -> Arc<Histogram> {
    histogram_with(name, help, &[], &DEFAULT_LATENCY_BUCKETS)
}

/// Registers (or retrieves) a histogram with explicit labels and bucket
/// bounds. Bounds must be sorted ascending; a `+Inf` bucket is implicit.
///
/// # Panics
/// Panics if the same series name+labels was registered as a different
/// kind.
pub fn histogram_with(
    name: &str,
    help: &'static str,
    labels: &[(&str, &str)],
    bounds: &[f64],
) -> Arc<Histogram> {
    let key = series_key(name, labels);
    let mut reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let entry = reg.entry(key.clone()).or_insert_with(|| Entry {
        help,
        series: Series::Histogram(Arc::new(Histogram::new(bounds))),
    });
    match &entry.series {
        Series::Histogram(h) => Arc::clone(h),
        _ => panic!("metric {key} already registered as a non-histogram"),
    }
}

/// Formats a float the way Prometheus expects (`+Inf`, integral values
/// without an exponent, everything else via `{}`).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Splits a registry key back into `(name, label-block)` where the label
/// block includes braces (empty string when unlabeled).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(idx) => key.split_at(idx),
        None => (key, ""),
    }
}

/// Merges an extra label into a rendered label block.
fn with_extra_label(label_block: &str, extra: &str) -> String {
    if label_block.is_empty() {
        format!("{{{extra}}}")
    } else {
        let inner = &label_block[1..label_block.len() - 1];
        format!("{{{inner},{extra}}}")
    }
}

/// Renders a point-in-time snapshot of every registered series in the
/// Prometheus text exposition format (`# HELP`/`# TYPE` per family,
/// histogram `_bucket`/`_sum`/`_count` expansion).
pub fn snapshot() -> String {
    let reg = registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = String::new();
    let mut last_family = String::new();
    for (key, entry) in reg.iter() {
        let (name, labels) = split_key(key);
        if name != last_family {
            let kind = match entry.series {
                Series::Counter(_) => "counter",
                Series::Gauge(_) => "gauge",
                Series::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", entry.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_family = name.to_string();
        }
        match &entry.series {
            Series::Counter(c) => {
                let _ = writeln!(out, "{name}{labels} {}", c.get());
            }
            Series::Gauge(g) => {
                let _ = writeln!(out, "{name}{labels} {}", fmt_value(g.get()));
            }
            Series::Histogram(h) => {
                let mut cumulative = 0u64;
                for (idx, bucket) in h.buckets.iter().enumerate() {
                    cumulative += bucket.load(Ordering::Relaxed);
                    let bound = h.bounds.get(idx).copied().unwrap_or(f64::INFINITY);
                    let le = with_extra_label(labels, &format!("le=\"{}\"", fmt_value(bound)));
                    let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
                }
                let _ = writeln!(out, "{name}_sum{labels} {}", fmt_value(h.sum()));
                let _ = writeln!(out, "{name}_count{labels} {}", h.count());
            }
        }
    }
    out
}

/// Parses a snapshot produced by [`snapshot`] back into a map from series
/// (`name` or `name{labels}`) to value. Comment lines are skipped;
/// malformed lines are ignored. Useful for tests and for the CLI's
/// round-trip checks.
pub fn parse_snapshot(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is the suffix after the last space *outside* braces;
        // label values never contain spaces in our encoder, so a plain
        // rsplit is enough.
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => match v.parse::<f64>() {
                Ok(v) => v,
                Err(_) => continue,
            },
        };
        out.insert(series.to_string(), value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = counter("metrics_test_total", "Test counter.");
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        let g = gauge("metrics_test_gauge", "Test gauge.");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
        let snap = snapshot();
        let parsed = parse_snapshot(&snap);
        assert_eq!(parsed.get("metrics_test_total"), Some(&4.0));
        assert_eq!(parsed.get("metrics_test_gauge"), Some(&1.5));
    }

    #[test]
    fn labeled_series_are_distinct() {
        let a = counter_with(
            "metrics_test_labeled_total",
            "Labeled.",
            &[("tier", "memory")],
        );
        let b = counter_with(
            "metrics_test_labeled_total",
            "Labeled.",
            &[("tier", "disk")],
        );
        a.add(2);
        b.add(5);
        let parsed = parse_snapshot(&snapshot());
        assert_eq!(
            parsed.get("metrics_test_labeled_total{tier=\"memory\"}"),
            Some(&2.0)
        );
        assert_eq!(
            parsed.get("metrics_test_labeled_total{tier=\"disk\"}"),
            Some(&5.0)
        );
    }

    #[test]
    fn same_handle_for_same_key() {
        let a = counter("metrics_test_shared_total", "Shared.");
        let b = counter("metrics_test_shared_total", "Shared.");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn histogram_buckets_sum_count_and_quantiles() {
        let h = histogram_with(
            "metrics_test_seconds",
            "Test histogram.",
            &[],
            &[0.001, 0.01, 0.1, 1.0],
        );
        for _ in 0..90 {
            h.observe(0.005);
        }
        for _ in 0..10 {
            h.observe(0.5);
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - (90.0 * 0.005 + 10.0 * 0.5)).abs() < 1e-9);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.001 && p50 <= 0.01, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > 0.1 && p99 <= 1.0, "p99 = {p99}");

        let snap = snapshot();
        assert!(snap.contains("# TYPE metrics_test_seconds histogram"));
        let parsed = parse_snapshot(&snap);
        assert_eq!(parsed.get("metrics_test_seconds_count"), Some(&100.0));
        assert_eq!(
            parsed.get("metrics_test_seconds_bucket{le=\"0.01\"}"),
            Some(&90.0)
        );
        assert_eq!(
            parsed.get("metrics_test_seconds_bucket{le=\"+Inf\"}"),
            Some(&100.0)
        );
    }

    #[test]
    fn overflow_observations_land_in_inf_bucket() {
        let h = histogram_with("metrics_test_inf_seconds", "Overflow.", &[], &[0.001]);
        h.observe(5.0);
        assert_eq!(h.count(), 1);
        // Quantile of an all-overflow histogram reports the top bound.
        assert_eq!(h.quantile(0.5), Some(0.001));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("metrics_test_kind_clash", "As counter.");
        gauge("metrics_test_kind_clash", "As gauge.");
    }
}
