//! Declarative device specifications for the `sc:*` superconducting target
//! family.
//!
//! The paper's retargetability claim (Fig. 3) is only interesting if adding
//! a backend is cheap. For superconducting QPUs the only thing that really
//! changes between devices is the coupling map (§2.3), so the family is
//! driven by data: a [`DeviceSpec`] names a device, declares its topology,
//! qubit count, native two-qubit gate, and aliases, and the backend
//! registry turns every spec into a routing target called
//! `sc:<device>`. Four devices ship built in ([`DeviceSpec::builtin`]) —
//! `sc:line`, `sc:grid`, `sc:eagle` (127-qubit heavy-hex), and `sc:heron`
//! (133-qubit heavy-hex) — and arbitrary rectangular lattices are minted on
//! demand from the parameterized name `sc:grid:<w>x<h>`.
//!
//! # Examples
//!
//! Resolve a spec by target name and inspect it:
//!
//! ```
//! use weaver_superconducting::DeviceSpec;
//!
//! let eagle = DeviceSpec::resolve("sc:eagle").unwrap();
//! assert_eq!(eagle.num_qubits(), 127);
//! assert_eq!(eagle.full_name(), "sc:eagle");
//! assert!(eagle.coupling().is_connected());
//!
//! // Aliases name the same device; parameterized grids are minted on demand.
//! assert_eq!(DeviceSpec::resolve("sc:washington").unwrap().name, "eagle");
//! let grid = DeviceSpec::resolve("sc:grid:4x5").unwrap();
//! assert_eq!(grid.num_qubits(), 20);
//!
//! // Bad names are structured errors, not panics.
//! assert!(DeviceSpec::resolve("sc:grid:0x5").is_err());
//! assert!(DeviceSpec::resolve("sc:osprey").is_err());
//! ```

use crate::CouplingMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The `sc:` namespace every device-family target name lives under.
pub const FAMILY_PREFIX: &str = "sc:";

/// Largest register a minted `sc:grid:<w>x<h>` device may declare; keeps
/// the all-pairs BFS table (O(n²) memory) of absurd requests from taking
/// the process down.
pub const MAX_GRID_QUBITS: usize = 4096;

/// The two-qubit gate a device implements natively. Routing lowers to the
/// shared `{U3, CZ}` basis either way; the native gate is declarative
/// device metadata surfaced by `weaverc targets` and the figures harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeTwoQubit {
    /// Controlled-Z (tunable couplers: Heron-class and most lattices).
    Cz,
    /// Echoed cross-resonance (fixed-frequency Eagle-class devices).
    Ecr,
}

impl NativeTwoQubit {
    /// Display name (`CZ` / `ECR`).
    pub fn name(self) -> &'static str {
        match self {
            NativeTwoQubit::Cz => "CZ",
            NativeTwoQubit::Ecr => "ECR",
        }
    }
}

impl fmt::Display for NativeTwoQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The coupling-graph shape of a device; [`DeviceSpec::coupling`] expands
/// it through the generators in [`CouplingMap`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceTopology {
    /// A 1D chain of `n` qubits.
    Line(usize),
    /// A rectangular lattice.
    Grid {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
    },
    /// An IBM heavy-hex lattice of unit-cell distance `distance`, padded or
    /// trimmed to exactly `qubits` (see [`CouplingMap::heavy_hex_sized`]).
    HeavyHex {
        /// Unit-cell rows/cols.
        distance: usize,
        /// Exact qubit count after sizing.
        qubits: usize,
    },
}

/// A declarative superconducting device: everything the compiler needs to
/// route onto it, as data.
///
/// # Examples
///
/// ```
/// use weaver_superconducting::{sabre, DeviceSpec};
/// use weaver_circuit::Circuit;
///
/// let spec = DeviceSpec::heron();
/// assert_eq!(spec.num_qubits(), 133);
///
/// // The spec's coupling map drives routing directly.
/// let mut c = Circuit::new(4);
/// c.h(0).cz(0, 3).cz(1, 2);
/// let routed = sabre::route(&c, &spec.coupling()).unwrap();
/// assert!(sabre::respects_coupling(&routed.circuit, &spec.coupling()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Canonical short name within the family (`eagle`, `grid:4x5`).
    pub name: String,
    /// Alternate short names (`washington` for `eagle`).
    pub aliases: Vec<String>,
    /// One-line description surfaced by `weaverc targets`.
    pub description: String,
    /// The device's native two-qubit gate (declarative metadata).
    pub native_two_qubit: NativeTwoQubit,
    /// The coupling-graph shape.
    pub topology: DeviceTopology,
}

impl DeviceSpec {
    /// The built-in family, in registration order: `line`, `grid`,
    /// `eagle`, `heron`.
    pub fn builtin() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::line(),
            DeviceSpec::default_grid(),
            DeviceSpec::eagle(),
            DeviceSpec::heron(),
        ]
    }

    /// `sc:line` — a 127-qubit 1D chain, the minimal-connectivity extreme
    /// of the family (every non-adjacent interaction pays in SWAPs).
    pub fn line() -> Self {
        DeviceSpec {
            name: "line".to_string(),
            aliases: Vec::new(),
            description: "127-qubit 1D chain (minimal-connectivity extreme)".to_string(),
            native_two_qubit: NativeTwoQubit::Cz,
            topology: DeviceTopology::Line(127),
        }
    }

    /// `sc:grid` — an 11×11 square lattice (121 qubits); arbitrary sizes
    /// are minted from `sc:grid:<w>x<h>`.
    pub fn default_grid() -> Self {
        DeviceSpec {
            name: "grid".to_string(),
            description: "11×11 square lattice, 121 qubits".to_string(),
            ..DeviceSpec::grid(11, 11)
        }
    }

    /// A `w`×`h` rectangular lattice named `grid:<w>x<h>` (`w` rows,
    /// `h` columns).
    pub fn grid(w: usize, h: usize) -> Self {
        DeviceSpec {
            name: format!("grid:{w}x{h}"),
            aliases: Vec::new(),
            description: format!("{w}×{h} square lattice, {} qubits", w * h),
            native_two_qubit: NativeTwoQubit::Cz,
            topology: DeviceTopology::Grid { rows: w, cols: h },
        }
    }

    /// `sc:eagle` — the 127-qubit IBM Eagle heavy-hex processor (the
    /// Washington chip of the paper's evaluation, §8.1).
    pub fn eagle() -> Self {
        DeviceSpec {
            name: "eagle".to_string(),
            aliases: vec!["washington".to_string()],
            description: "IBM Eagle 127-qubit heavy-hex (the paper's Washington model)".to_string(),
            native_two_qubit: NativeTwoQubit::Ecr,
            topology: DeviceTopology::HeavyHex {
                distance: 7,
                qubits: 127,
            },
        }
    }

    /// `sc:heron` — the 133-qubit IBM Heron heavy-hex processor
    /// (Torino-class, tunable couplers).
    pub fn heron() -> Self {
        DeviceSpec {
            name: "heron".to_string(),
            aliases: vec!["torino".to_string()],
            description: "IBM Heron 133-qubit heavy-hex (Torino-class)".to_string(),
            native_two_qubit: NativeTwoQubit::Cz,
            topology: DeviceTopology::HeavyHex {
                distance: 7,
                qubits: 133,
            },
        }
    }

    /// Resolves a full `sc:*` target name — a built-in device (by name or
    /// alias) or a parameterized `sc:grid:<w>x<h>` lattice.
    ///
    /// # Errors
    ///
    /// A one-line message for names outside the `sc:` namespace, unknown
    /// devices, and malformed or oversized grid dimensions.
    pub fn resolve(target: &str) -> Result<DeviceSpec, String> {
        let short = target
            .strip_prefix(FAMILY_PREFIX)
            .ok_or_else(|| format!("`{target}` is not an {FAMILY_PREFIX}* device name"))?;
        if let Some(found) = DeviceSpec::builtin()
            .into_iter()
            .find(|d| d.name == short || d.aliases.iter().any(|a| a == short))
        {
            return Ok(found);
        }
        if let Some(dims) = short.strip_prefix("grid:") {
            return DeviceSpec::parse_grid(target, dims);
        }
        let known: Vec<String> = DeviceSpec::builtin()
            .into_iter()
            .map(|d| d.full_name())
            .collect();
        Err(format!(
            "unknown device `{target}` (known devices: {}; arbitrary grids via {FAMILY_PREFIX}grid:<w>x<h>)",
            known.join(", ")
        ))
    }

    fn parse_grid(target: &str, dims: &str) -> Result<DeviceSpec, String> {
        let bad = || {
            format!("`{target}`: grid dimensions must look like {FAMILY_PREFIX}grid:<w>x<h> with w, h ≥ 1")
        };
        let (w, h) = dims.split_once('x').ok_or_else(bad)?;
        let w: usize = w.parse().map_err(|_| bad())?;
        let h: usize = h.parse().map_err(|_| bad())?;
        if w == 0 || h == 0 {
            return Err(bad());
        }
        if w.saturating_mul(h) > MAX_GRID_QUBITS {
            return Err(format!(
                "`{target}`: {w}×{h} = {} qubits exceeds the {MAX_GRID_QUBITS}-qubit grid cap",
                w.saturating_mul(h)
            ));
        }
        Ok(DeviceSpec::grid(w, h))
    }

    /// The full registry name, `sc:<name>`.
    pub fn full_name(&self) -> String {
        format!("{FAMILY_PREFIX}{}", self.name)
    }

    /// The full registry aliases, `sc:<alias>`.
    pub fn full_aliases(&self) -> Vec<String> {
        self.aliases
            .iter()
            .map(|a| format!("{FAMILY_PREFIX}{a}"))
            .collect()
    }

    /// Physical qubits the device offers.
    pub fn num_qubits(&self) -> usize {
        match self.topology {
            DeviceTopology::Line(n) => n,
            DeviceTopology::Grid { rows, cols } => rows * cols,
            DeviceTopology::HeavyHex { qubits, .. } => qubits,
        }
    }

    /// Expands the topology into a coupling map.
    ///
    /// Maps are memoized process-globally by canonical device name (the
    /// same pattern the backend registry uses), so a batch that compiles a
    /// thousand `sc:eagle` jobs expands the heavy-hex lattice and runs the
    /// all-pairs BFS exactly once; every further call is a cache hit that
    /// clones an [`Arc`](std::sync::Arc). The cache key is
    /// [`DeviceSpec::full_name`], which
    /// is canonical even for alias-resolved and minted grid devices.
    pub fn coupling(&self) -> CouplingMap {
        static CACHE: OnceLock<Mutex<HashMap<String, CouplingMap>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = self.full_name();
        if let Some(hit) = cache.lock().unwrap().get(&key) {
            return hit.clone();
        }
        // Expand outside the lock: heavy-hex sizing rebuilds the BFS table
        // several times and must not stall concurrent workers resolving
        // other devices.
        let map = self.expand_topology();
        cache.lock().unwrap().entry(key).or_insert(map).clone()
    }

    /// Expands the topology into a fresh, uncached coupling map.
    fn expand_topology(&self) -> CouplingMap {
        match self.topology {
            DeviceTopology::Line(n) => CouplingMap::line(n),
            DeviceTopology::Grid { rows, cols } => CouplingMap::grid(rows, cols),
            DeviceTopology::HeavyHex { distance, qubits } => {
                CouplingMap::heavy_hex_sized(distance, qubits)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_family_is_well_formed() {
        let devices = DeviceSpec::builtin();
        assert_eq!(devices.len(), 4);
        let mut names = std::collections::HashSet::new();
        for d in &devices {
            assert!(names.insert(d.full_name()), "{} duplicated", d.name);
            assert_eq!(d.num_qubits(), d.coupling().num_qubits(), "{}", d.name);
            assert!(d.coupling().is_connected(), "{}", d.name);
            assert!(!d.description.is_empty());
        }
        assert_eq!(
            devices.iter().map(|d| d.full_name()).collect::<Vec<_>>(),
            vec!["sc:line", "sc:grid", "sc:eagle", "sc:heron"]
        );
    }

    #[test]
    fn eagle_matches_the_washington_model() {
        let eagle = DeviceSpec::eagle();
        assert_eq!(eagle.coupling(), CouplingMap::ibm_washington());
        assert_eq!(eagle.native_two_qubit, NativeTwoQubit::Ecr);
        let heron = DeviceSpec::heron();
        assert_eq!(heron.coupling(), CouplingMap::ibm_heron());
        assert_ne!(eagle.coupling(), heron.coupling());
    }

    #[test]
    fn resolve_handles_names_aliases_and_grids() {
        assert_eq!(DeviceSpec::resolve("sc:line").unwrap().name, "line");
        assert_eq!(DeviceSpec::resolve("sc:washington").unwrap().name, "eagle");
        assert_eq!(DeviceSpec::resolve("sc:torino").unwrap().name, "heron");
        let grid = DeviceSpec::resolve("sc:grid:3x4").unwrap();
        assert_eq!(grid.name, "grid:3x4");
        assert_eq!(grid.num_qubits(), 12);
        assert_eq!(
            DeviceSpec::resolve("sc:grid").unwrap().topology,
            DeviceTopology::Grid { rows: 11, cols: 11 }
        );
    }

    #[test]
    fn coupling_cache_serves_aliases_and_repeat_lookups() {
        // Alias resolution lands on the canonical name, so `sc:washington`
        // and `sc:eagle` share one cache entry; repeated lookups are
        // Arc-clone cheap and compare equal.
        let a = DeviceSpec::eagle().coupling();
        let b = DeviceSpec::resolve("sc:washington").unwrap().coupling();
        assert_eq!(a, b);
        assert_eq!(a, DeviceSpec::eagle().coupling());
    }

    #[test]
    fn resolve_rejects_bad_names_with_messages() {
        for bad in [
            "eagle",
            "sc:osprey",
            "sc:grid:0x4",
            "sc:grid:4x",
            "sc:grid:axb",
        ] {
            let err = DeviceSpec::resolve(bad).unwrap_err();
            assert!(err.contains(bad), "{err}");
        }
        let err = DeviceSpec::resolve("sc:grid:1000x1000").unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        let err = DeviceSpec::resolve("sc:osprey").unwrap_err();
        assert!(
            err.contains("sc:line, sc:grid, sc:eagle, sc:heron"),
            "{err}"
        );
    }
}
