//! Superconducting transpiler substrate — the Qiskit-baseline stand-in of
//! the Weaver evaluation (paper Fig. 3 top path, §8.1).
//!
//! * [`CouplingMap`] — device topologies (line, grid, heavy-hex, and the
//!   127-qubit [`CouplingMap::ibm_washington`] model),
//! * [`device`] — the declarative `sc:*` device family ([`DeviceSpec`]),
//! * [`sabre`] — SABRE-style layout and routing (the `O(N³)` baseline of
//!   Table 2),
//! * [`transpile`] — the full pipeline with execution-time and EPS metrics.
//!
//! # Example
//!
//! ```
//! use weaver_circuit::Circuit;
//! use weaver_superconducting::{transpile, CouplingMap, SuperconductingParams};
//!
//! let mut c = Circuit::new(3);
//! c.h(0).cz(0, 2).measure_all();
//! let result =
//!     transpile(&c, &CouplingMap::line(4), &SuperconductingParams::default()).unwrap();
//! assert!(result.eps > 0.0 && result.eps <= 1.0);
//! ```

#![warn(missing_docs)]

mod coupling;
pub mod device;
pub mod sabre;
mod transpile;

pub use coupling::CouplingMap;
pub use device::{DeviceSpec, DeviceTopology, NativeTwoQubit};
pub use sabre::RouteError;
pub use transpile::{eps, execution_time, transpile, SuperconductingParams, TranspileResult};
