//! SABRE-style qubit mapping and routing (Li et al., ASPLOS'19) — the
//! algorithm behind Qiskit's default transpiler and the source of the
//! `O(N³)` compilation complexity the paper lists for the superconducting
//! baseline (Table 2).

use crate::CouplingMap;
use std::collections::HashMap;
use std::fmt;
use weaver_circuit::{Circuit, DependencyDag, Gate, Operation};

/// Why a circuit cannot be routed onto a coupling map. These used to be
/// `assert!`s inside [`route`]; as typed errors they surface as structured
/// `weaverc: error: compile: …` diagnostics instead of panics, and the
/// batch engine reports them per job instead of poisoning a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit needs more qubits than the device has.
    TooManyQubits {
        /// Qubits the circuit uses.
        needed: usize,
        /// Physical qubits the device offers.
        available: usize,
    },
    /// The coupling graph is disconnected, so some pairs can never interact.
    Disconnected,
    /// The circuit contains a gate of arity > 2 (decompose first).
    UnsupportedArity {
        /// The offending gate's qubit count.
        arity: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooManyQubits { needed, available } => {
                write!(f, "circuit needs {needed} qubits, device has {available}")
            }
            RouteError::Disconnected => {
                f.write_str("coupling graph is disconnected; routing cannot reach every qubit")
            }
            RouteError::UnsupportedArity { arity } => write!(
                f,
                "routing requires ≤ 2-qubit gates, found a {arity}-qubit gate; decompose first"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// Result of routing a circuit onto a coupling map.
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// The physical circuit (logical gates rewritten onto physical qubits,
    /// with SWAPs inserted).
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// Initial logical→physical layout chosen by the winning trial.
    pub initial_layout: Vec<usize>,
    /// Final logical→physical layout.
    pub final_layout: Vec<usize>,
    /// Heuristic search steps performed (complexity instrumentation for the
    /// paper's Fig. 10a).
    pub steps: u64,
}

/// Mutable logical↔physical mapping.
#[derive(Clone, Debug)]
struct Layout {
    /// logical → physical
    l2p: Vec<usize>,
    /// physical → logical (usize::MAX = free)
    p2l: Vec<usize>,
}

impl Layout {
    fn trivial(num_logical: usize, num_physical: usize) -> Self {
        let mut p2l = vec![usize::MAX; num_physical];
        let l2p: Vec<usize> = (0..num_logical).collect();
        for (l, &p) in l2p.iter().enumerate() {
            p2l[p] = l;
        }
        Layout { l2p, p2l }
    }

    fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.p2l[a];
        let lb = self.p2l[b];
        self.p2l[a] = lb;
        self.p2l[b] = la;
        if la != usize::MAX {
            self.l2p[la] = b;
        }
        if lb != usize::MAX {
            self.l2p[lb] = a;
        }
    }
}

/// Routes a circuit onto `coupling` with the SABRE look-ahead heuristic,
/// running several randomized initial-layout trials and keeping the lowest
/// swap count — exactly what production SABRE pipelines do (and the reason
/// the baseline's compile time carries a large constant).
///
/// # Errors
///
/// [`RouteError::TooManyQubits`] when the circuit is wider than the device,
/// [`RouteError::Disconnected`] when the coupling graph is disconnected,
/// and [`RouteError::UnsupportedArity`] for gates of arity > 2.
pub fn route(circuit: &Circuit, coupling: &CouplingMap) -> Result<RoutedCircuit, RouteError> {
    const TRIALS: u64 = 5;
    let mut span = weaver_obs::span::span("route", "sabre-route")
        .with_arg("qubits", circuit.num_qubits())
        .with_arg("gates", circuit.gate_count())
        .with_arg("trials", TRIALS);
    if circuit.num_qubits() > coupling.num_qubits() {
        return Err(RouteError::TooManyQubits {
            needed: circuit.num_qubits(),
            available: coupling.num_qubits(),
        });
    }
    if coupling.num_qubits() > 0 && !coupling.is_connected() {
        return Err(RouteError::Disconnected);
    }
    if let Some(wide) = circuit.instructions().find(|i| i.qubits.len() > 2) {
        return Err(RouteError::UnsupportedArity {
            arity: wide.qubits.len(),
        });
    }
    let mut best: Option<RoutedCircuit> = None;
    let mut total_steps = 0u64;
    for trial in 0..TRIALS {
        let mut result = route_once(circuit, coupling, trial);
        total_steps += result.steps;
        if best
            .as_ref()
            .is_none_or(|b| result.swap_count < b.swap_count)
        {
            result.steps = 0; // replaced with the total below
            best = Some(result);
        }
    }
    let mut best = best.expect("at least one trial ran");
    best.steps = total_steps;
    span.set_arg("swaps", best.swap_count);
    Ok(best)
}

/// One SABRE routing pass with a seeded initial layout (`seed = 0` is the
/// trivial layout; other seeds shuffle deterministically). Preconditions
/// (width, connectivity, arity) are checked by [`route`].
fn route_once(circuit: &Circuit, coupling: &CouplingMap, seed: u64) -> RoutedCircuit {
    let dag = DependencyDag::from_circuit(circuit);

    let mut layout = Layout::trivial(circuit.num_qubits(), coupling.num_qubits());
    // Deterministic Fisher–Yates-style shuffle of the initial placement for
    // trials beyond the first (splitmix64 stream).
    if seed > 0 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for l in 0..circuit.num_qubits() {
            let p = (next() % coupling.num_qubits() as u64) as usize;
            let other = layout.l2p[l];
            layout.swap_physical(other, p);
        }
    }
    let initial_layout = layout.l2p.clone();
    let mut out = Circuit::new(coupling.num_qubits());
    let mut steps: u64 = 0;
    let mut swap_count = 0usize;

    // Remaining-predecessor counts drive the front layer.
    let mut pending_preds: Vec<usize> = (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
    let mut front: Vec<usize> = (0..dag.len()).filter(|&i| pending_preds[i] == 0).collect();
    let mut executed = vec![false; dag.len()];

    // Decay factors discourage ping-ponging the same qubit (as in SABRE).
    let mut decay = vec![1.0f64; coupling.num_qubits()];

    while !front.is_empty() {
        // Execute every front gate that is executable under current layout.
        let mut progress = false;
        let mut next_front = Vec::new();
        for &node in &front {
            let instr = dag.instruction(node);
            let executable = match instr.qubits.len() {
                1 => true,
                2 => {
                    let p0 = layout.l2p[instr.qubits[0]];
                    let p1 = layout.l2p[instr.qubits[1]];
                    coupling.are_coupled(p0, p1)
                }
                _ => unreachable!(),
            };
            steps += 1;
            if executable {
                let phys: Vec<usize> = instr.qubits.iter().map(|&q| layout.l2p[q]).collect();
                out.push(instr.gate.clone(), &phys);
                executed[node] = true;
                progress = true;
                for &succ in dag.successors(node) {
                    pending_preds[succ] -= 1;
                    if pending_preds[succ] == 0 {
                        next_front.push(succ);
                    }
                }
            } else {
                next_front.push(node);
            }
        }
        front = next_front;
        front.sort_unstable();
        front.dedup();

        if progress {
            // Reset decay after progress, as SABRE does periodically.
            decay.iter_mut().for_each(|d| *d = 1.0);
            continue;
        }
        if front.is_empty() {
            break;
        }

        // No front gate executable: insert the best SWAP.
        // Candidate swaps: edges adjacent to any qubit of a front 2q gate.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &node in &front {
            let instr = dag.instruction(node);
            if instr.qubits.len() != 2 {
                continue;
            }
            for &lq in &instr.qubits {
                let p = layout.l2p[lq];
                for &nb in coupling.neighbors(p) {
                    let e = (p.min(nb), p.max(nb));
                    if !candidates.contains(&e) {
                        candidates.push(e);
                    }
                }
            }
        }
        // Extended set: successors of front gates, for look-ahead.
        let extended: Vec<usize> = front
            .iter()
            .flat_map(|&n| dag.successors(n).iter().copied())
            .filter(|&n| !executed[n])
            .collect();

        let score = |layout: &Layout, steps: &mut u64| -> f64 {
            let mut s = 0.0;
            for &n in &front {
                let i = dag.instruction(n);
                if i.qubits.len() == 2 {
                    *steps += 1;
                    s += coupling.distance(layout.l2p[i.qubits[0]], layout.l2p[i.qubits[1]]) as f64;
                }
            }
            let mut ext = 0.0;
            for &n in &extended {
                let i = dag.instruction(n);
                if i.qubits.len() == 2 {
                    *steps += 1;
                    ext +=
                        coupling.distance(layout.l2p[i.qubits[0]], layout.l2p[i.qubits[1]]) as f64;
                }
            }
            s + 0.5 * ext / (extended.len().max(1) as f64)
        };

        let mut best: Option<((usize, usize), f64)> = None;
        for &(a, b) in &candidates {
            let mut trial = layout.clone();
            trial.swap_physical(a, b);
            let h = score(&trial, &mut steps) * decay[a].max(decay[b]);
            if best.is_none() || h < best.unwrap().1 {
                best = Some(((a, b), h));
            }
        }
        let ((a, b), _) = best.expect("at least one candidate swap exists");
        layout.swap_physical(a, b);
        decay[a] += 0.001;
        decay[b] += 0.001;
        out.push(Gate::Swap, &[a, b]);
        swap_count += 1;
    }

    // Re-attach measurements on final physical wires.
    for op in circuit.operations() {
        if let Operation::Measure(q) = op {
            out.measure(layout.l2p[*q]);
        }
    }

    RoutedCircuit {
        circuit: out,
        swap_count,
        initial_layout,
        final_layout: layout.l2p,
        steps,
    }
}

/// Verifies that every 2-qubit gate of a routed circuit touches only
/// coupled pairs (used in tests and as a post-routing assertion).
pub fn respects_coupling(circuit: &Circuit, coupling: &CouplingMap) -> bool {
    circuit.instructions().all(|i| match i.qubits.len() {
        0 | 1 => true,
        2 => coupling.are_coupled(i.qubits[0], i.qubits[1]),
        _ => false,
    })
}

/// Reconstructs the logical circuit a routed circuit implements, by
/// tracking SWAP-induced permutations backwards from the initial layout.
/// Used to verify routing preserved semantics.
pub fn unroute(routed: &RoutedCircuit, initial_logical: usize) -> Circuit {
    // physical → logical, from the winning trial's initial layout.
    let mut p2l: HashMap<usize, usize> = routed
        .initial_layout
        .iter()
        .enumerate()
        .map(|(l, &p)| (p, l))
        .collect();
    let routed = &routed.circuit;
    let mut out = Circuit::new(initial_logical);
    for op in routed.operations() {
        match op {
            Operation::Gate(i) if i.gate == Gate::Swap => {
                let a = i.qubits[0];
                let b = i.qubits[1];
                let la = p2l.get(&a).copied();
                let lb = p2l.get(&b).copied();
                match la {
                    Some(l) => {
                        p2l.insert(b, l);
                    }
                    None => {
                        p2l.remove(&b);
                    }
                }
                match lb {
                    Some(l) => {
                        p2l.insert(a, l);
                    }
                    None => {
                        p2l.remove(&a);
                    }
                }
            }
            Operation::Gate(i) => {
                let qs: Vec<usize> = i
                    .qubits
                    .iter()
                    .map(|p| *p2l.get(p).expect("gate on unmapped physical qubit"))
                    .collect();
                out.push(i.gate.clone(), &qs);
            }
            Operation::Measure(p) => {
                if let Some(&l) = p2l.get(p) {
                    out.measure(l);
                }
            }
            Operation::Barrier(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::equiv;

    #[test]
    fn already_routable_circuit_needs_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).cz(1, 2);
        let r = route(&c, &CouplingMap::line(3)).unwrap();
        assert_eq!(r.swap_count, 0);
        assert!(respects_coupling(&r.circuit, &CouplingMap::line(3)));
    }

    #[test]
    fn distant_gate_routes_legally() {
        // A layout trial may solve cz(0,3) on a line without swaps; what
        // must always hold is coupling legality and semantic preservation.
        let mut c = Circuit::new(4);
        c.cz(0, 3).cz(0, 1).cz(1, 2).cz(2, 3).cz(0, 2).cz(1, 3);
        let coupling = CouplingMap::line(4);
        let r = route(&c, &coupling).unwrap();
        assert!(
            r.swap_count >= 1,
            "a 4-clique on a line cannot be swap-free"
        );
        assert!(respects_coupling(&r.circuit, &coupling));
        let recovered = unroute(&r, 4);
        assert!(equiv::compare(&c.unitary(), &recovered.unitary(), 1e-9).is_equivalent());
    }

    #[test]
    fn routing_preserves_semantics() {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 3).cx(1, 2).rz(0.4, 3).cz(0, 2);
        let coupling = CouplingMap::line(4);
        let r = route(&c, &coupling).unwrap();
        let recovered = unroute(&r, 4);
        let e = equiv::compare(&c.unitary(), &recovered.unitary(), 1e-9);
        assert!(e.is_equivalent(), "{e:?}");
    }

    #[test]
    fn routes_onto_larger_device() {
        let mut c = Circuit::new(5);
        for a in 0..5 {
            for b in (a + 1)..5 {
                c.cz(a, b);
            }
        }
        let coupling = CouplingMap::grid(3, 3);
        let r = route(&c, &coupling).unwrap();
        assert!(respects_coupling(&r.circuit, &coupling));
        assert_eq!(r.circuit.num_qubits(), 9);
    }

    #[test]
    fn all_to_all_needs_no_swaps() {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let full = CouplingMap::new(5, &edges);
        let mut c = Circuit::new(5);
        c.cz(0, 4).cz(1, 3).cz(2, 4);
        let r = route(&c, &full).unwrap();
        assert_eq!(r.swap_count, 0);
    }

    #[test]
    fn step_count_grows_with_circuit_size() {
        let coupling = CouplingMap::grid(4, 5);
        let mut small = Circuit::new(6);
        let mut large = Circuit::new(12);
        for i in 0..5 {
            small.cz(i, i + 1);
        }
        for i in 0..11 {
            large.cz(i, i + 1);
            large.cz(0, i + 1);
        }
        let rs = route(&small, &coupling).unwrap();
        let rl = route(&large, &coupling).unwrap();
        assert!(rl.steps > rs.steps);
    }

    #[test]
    fn measurements_survive_routing() {
        let mut c = Circuit::new(3);
        c.cz(0, 2).measure_all();
        let r = route(&c, &CouplingMap::line(3)).unwrap();
        let measures = r
            .circuit
            .operations()
            .iter()
            .filter(|o| matches!(o, Operation::Measure(_)))
            .count();
        assert_eq!(measures, 3);
    }

    #[test]
    fn oversized_circuit_is_a_typed_error() {
        let mut c = Circuit::new(5);
        c.cz(0, 4);
        let err = route(&c, &CouplingMap::line(3)).unwrap_err();
        assert_eq!(
            err,
            RouteError::TooManyQubits {
                needed: 5,
                available: 3
            }
        );
        assert!(err.to_string().contains("needs 5 qubits"), "{err}");
    }

    #[test]
    fn disconnected_coupling_is_a_typed_error() {
        let mut c = Circuit::new(4);
        c.cz(0, 3);
        let coupling = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(route(&c, &coupling).unwrap_err(), RouteError::Disconnected);
    }

    #[test]
    fn wide_gates_are_a_typed_error() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        assert_eq!(
            route(&c, &CouplingMap::line(3)).unwrap_err(),
            RouteError::UnsupportedArity { arity: 3 }
        );
    }

    #[test]
    fn washington_routes_100_variable_chain() {
        let mut c = Circuit::new(100);
        for i in 0..99 {
            c.cz(i, i + 1);
        }
        let coupling = CouplingMap::ibm_washington();
        let r = route(&c, &coupling).unwrap();
        assert!(respects_coupling(&r.circuit, &coupling));
    }
}
