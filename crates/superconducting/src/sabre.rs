//! SABRE-style qubit mapping and routing (Li et al., ASPLOS'19) — the
//! algorithm behind Qiskit's default transpiler and the source of the
//! `O(N³)` compilation complexity the paper lists for the superconducting
//! baseline (Table 2).

use crate::CouplingMap;
use std::collections::HashMap;
use std::fmt;
use weaver_circuit::{Circuit, DependencyDag, Gate, Operation};

/// Why a circuit cannot be routed onto a coupling map. These used to be
/// `assert!`s inside [`route`]; as typed errors they surface as structured
/// `weaverc: error: compile: …` diagnostics instead of panics, and the
/// batch engine reports them per job instead of poisoning a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit needs more qubits than the device has.
    TooManyQubits {
        /// Qubits the circuit uses.
        needed: usize,
        /// Physical qubits the device offers.
        available: usize,
    },
    /// The coupling graph is disconnected, so some pairs can never interact.
    Disconnected,
    /// The circuit contains a gate of arity > 2 (decompose first).
    UnsupportedArity {
        /// The offending gate's qubit count.
        arity: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooManyQubits { needed, available } => {
                write!(f, "circuit needs {needed} qubits, device has {available}")
            }
            RouteError::Disconnected => {
                f.write_str("coupling graph is disconnected; routing cannot reach every qubit")
            }
            RouteError::UnsupportedArity { arity } => write!(
                f,
                "routing requires ≤ 2-qubit gates, found a {arity}-qubit gate; decompose first"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// Result of routing a circuit onto a coupling map.
#[derive(Clone, Debug)]
pub struct RoutedCircuit {
    /// The physical circuit (logical gates rewritten onto physical qubits,
    /// with SWAPs inserted).
    pub circuit: Circuit,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
    /// Initial logical→physical layout chosen by the winning trial.
    pub initial_layout: Vec<usize>,
    /// Final logical→physical layout.
    pub final_layout: Vec<usize>,
    /// Heuristic search steps performed (complexity instrumentation for the
    /// paper's Fig. 10a).
    pub steps: u64,
}

/// Mutable logical↔physical mapping.
#[derive(Clone, Debug)]
struct Layout {
    /// logical → physical
    l2p: Vec<usize>,
    /// physical → logical (usize::MAX = free)
    p2l: Vec<usize>,
}

impl Layout {
    fn trivial(num_logical: usize, num_physical: usize) -> Self {
        let mut p2l = vec![usize::MAX; num_physical];
        let l2p: Vec<usize> = (0..num_logical).collect();
        for (l, &p) in l2p.iter().enumerate() {
            p2l[p] = l;
        }
        Layout { l2p, p2l }
    }

    fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.p2l[a];
        let lb = self.p2l[b];
        self.p2l[a] = lb;
        self.p2l[b] = la;
        if la != usize::MAX {
            self.l2p[la] = b;
        }
        if lb != usize::MAX {
            self.l2p[lb] = a;
        }
    }
}

/// Per-node gate shape extracted from the dependency DAG once per route and
/// shared by all trials, so the hot loops index flat arrays instead of
/// chasing `Instruction` qubit vectors.
struct GateTable {
    /// `qubits[node] = [q0, q1]`; `q1 == usize::MAX` for 1-qubit gates.
    qubits: Vec<[usize; 2]>,
    /// Whether the node is a 2-qubit gate.
    is_two_qubit: Vec<bool>,
}

impl GateTable {
    fn new(dag: &DependencyDag) -> Self {
        let mut qubits = Vec::with_capacity(dag.len());
        let mut is_two_qubit = Vec::with_capacity(dag.len());
        for node in 0..dag.len() {
            let qs = &dag.instruction(node).qubits;
            match qs.len() {
                1 => {
                    qubits.push([qs[0], usize::MAX]);
                    is_two_qubit.push(false);
                }
                2 => {
                    qubits.push([qs[0], qs[1]]);
                    is_two_qubit.push(true);
                }
                _ => unreachable!("arity checked by route()"),
            }
        }
        GateTable {
            qubits,
            is_two_qubit,
        }
    }
}

/// Scratch buffers reused across the routing trials of one [`route`] call;
/// nothing here is reallocated inside the search loop.
struct RouteBuffers {
    pending_preds: Vec<usize>,
    front: Vec<usize>,
    next_front: Vec<usize>,
    executed: Vec<bool>,
    /// Decay factors, valid only where `decay_epoch == epoch` (everything
    /// else reads as 1.0) — an O(1) reset instead of an O(n) refill after
    /// every round that makes progress.
    decay: Vec<f64>,
    decay_epoch: Vec<u32>,
    epoch: u32,
    candidates: Vec<(usize, usize)>,
    /// Stamp matrix deduplicating candidate edges per stall round (indexed
    /// `a * n + b` with `a < b`), replacing a linear `contains` scan.
    edge_stamp: Vec<u32>,
    stamp: u32,
    /// Physical qubit pairs of the 2-qubit front gates under the layout at
    /// the start of the stall round, in front order.
    front_pairs: Vec<(u32, u32)>,
    /// Physical qubit pairs of the 2-qubit extended-set gates, in order,
    /// duplicates retained (the heuristic divides by the total size).
    extended_pairs: Vec<(u32, u32)>,
}

impl RouteBuffers {
    fn new(num_nodes: usize, num_physical: usize) -> Self {
        RouteBuffers {
            pending_preds: vec![0; num_nodes],
            front: Vec::new(),
            next_front: Vec::new(),
            executed: vec![false; num_nodes],
            decay: vec![1.0; num_physical],
            decay_epoch: vec![0; num_physical],
            epoch: 0,
            candidates: Vec::new(),
            edge_stamp: vec![0; num_physical * num_physical],
            stamp: 0,
            front_pairs: Vec::new(),
            extended_pairs: Vec::new(),
        }
    }

    #[inline]
    fn decay_of(&self, q: usize) -> f64 {
        if self.decay_epoch[q] == self.epoch {
            self.decay[q]
        } else {
            1.0
        }
    }

    #[inline]
    fn bump_decay(&mut self, q: usize) {
        let current = self.decay_of(q);
        self.decay[q] = current + 0.001;
        self.decay_epoch[q] = self.epoch;
    }
}

/// Routes a circuit onto `coupling` with the SABRE look-ahead heuristic,
/// running several randomized initial-layout trials and keeping the lowest
/// swap count — exactly what production SABRE pipelines do (and the reason
/// the baseline's compile time carries a large constant).
///
/// The search is the optimized rewrite of [`route_reference`]: the
/// dependency DAG is built once and shared by all trials, candidate scoring
/// swaps the live layout and reverts it instead of cloning, and every
/// per-round collection (`front`, `candidates`, `extended`) lives in
/// reusable flat buffers. Output is byte-identical to the reference router
/// (`tests/sabre_differential.rs` proves it per device).
///
/// # Errors
///
/// [`RouteError::TooManyQubits`] when the circuit is wider than the device,
/// [`RouteError::Disconnected`] when the coupling graph is disconnected,
/// and [`RouteError::UnsupportedArity`] for gates of arity > 2.
pub fn route(circuit: &Circuit, coupling: &CouplingMap) -> Result<RoutedCircuit, RouteError> {
    const TRIALS: u64 = 5;
    let mut span = weaver_obs::span::span("route", "sabre-route")
        .with_arg("qubits", circuit.num_qubits())
        .with_arg("gates", circuit.gate_count())
        .with_arg("trials", TRIALS);
    if circuit.num_qubits() > coupling.num_qubits() {
        return Err(RouteError::TooManyQubits {
            needed: circuit.num_qubits(),
            available: coupling.num_qubits(),
        });
    }
    if coupling.num_qubits() > 0 && !coupling.is_connected() {
        return Err(RouteError::Disconnected);
    }
    if let Some(wide) = circuit.instructions().find(|i| i.qubits.len() > 2) {
        return Err(RouteError::UnsupportedArity {
            arity: wide.qubits.len(),
        });
    }
    let dag = DependencyDag::from_circuit(circuit);
    let gates = GateTable::new(&dag);
    let mut buffers = RouteBuffers::new(dag.len(), coupling.num_qubits());
    let mut best: Option<RoutedCircuit> = None;
    let mut total_steps = 0u64;
    for trial in 0..TRIALS {
        let mut result = route_once(circuit, &dag, &gates, coupling, trial, &mut buffers);
        total_steps += result.steps;
        if best
            .as_ref()
            .is_none_or(|b| result.swap_count < b.swap_count)
        {
            result.steps = 0; // replaced with the total below
            best = Some(result);
        }
    }
    let mut best = best.expect("at least one trial ran");
    best.steps = total_steps;
    span.set_arg("swaps", best.swap_count);
    Ok(best)
}

/// One SABRE routing pass with a seeded initial layout (`seed = 0` is the
/// trivial layout; other seeds shuffle deterministically). Preconditions
/// (width, connectivity, arity) are checked by [`route`].
fn route_once(
    circuit: &Circuit,
    dag: &DependencyDag,
    gates: &GateTable,
    coupling: &CouplingMap,
    seed: u64,
    buffers: &mut RouteBuffers,
) -> RoutedCircuit {
    let mut layout = Layout::trivial(circuit.num_qubits(), coupling.num_qubits());
    // Deterministic Fisher–Yates-style shuffle of the initial placement for
    // trials beyond the first (splitmix64 stream).
    if seed > 0 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for l in 0..circuit.num_qubits() {
            let p = (next() % coupling.num_qubits() as u64) as usize;
            let other = layout.l2p[l];
            layout.swap_physical(other, p);
        }
    }
    let initial_layout = layout.l2p.clone();
    let mut out = Circuit::new(coupling.num_qubits());
    let mut steps: u64 = 0;
    let mut swap_count = 0usize;

    // Remaining-predecessor counts drive the front layer; fresh trial state
    // written into the shared buffers.
    for (node, pending) in buffers.pending_preds.iter_mut().enumerate() {
        *pending = dag.predecessors(node).len();
    }
    buffers.front.clear();
    buffers
        .front
        .extend((0..dag.len()).filter(|&i| buffers.pending_preds[i] == 0));
    buffers.executed.iter_mut().for_each(|e| *e = false);
    // Decay factors discourage ping-ponging the same qubit (as in SABRE);
    // bumping the epoch resets every factor to 1.0.
    buffers.epoch += 1;

    while !buffers.front.is_empty() {
        // Execute every front gate that is executable under current layout.
        let mut progress = false;
        buffers.next_front.clear();
        let mut next_front = std::mem::take(&mut buffers.next_front);
        for &node in &buffers.front {
            let [q0, q1] = gates.qubits[node];
            let executable = if gates.is_two_qubit[node] {
                coupling.are_coupled(layout.l2p[q0], layout.l2p[q1])
            } else {
                true
            };
            steps += 1;
            if executable {
                if gates.is_two_qubit[node] {
                    out.push(
                        dag.instruction(node).gate.clone(),
                        &[layout.l2p[q0], layout.l2p[q1]],
                    );
                } else {
                    out.push(dag.instruction(node).gate.clone(), &[layout.l2p[q0]]);
                }
                buffers.executed[node] = true;
                progress = true;
                for &succ in dag.successors(node) {
                    buffers.pending_preds[succ] -= 1;
                    if buffers.pending_preds[succ] == 0 {
                        next_front.push(succ);
                    }
                }
            } else {
                next_front.push(node);
            }
        }
        buffers.next_front = next_front;
        std::mem::swap(&mut buffers.front, &mut buffers.next_front);
        buffers.front.sort_unstable();
        buffers.front.dedup();

        if progress {
            // Reset decay after progress, as SABRE does periodically.
            buffers.epoch += 1;
            continue;
        }
        if buffers.front.is_empty() {
            break;
        }

        // No front gate executable: insert the best SWAP.
        // Candidate swaps: edges adjacent to any qubit of a front 2q gate
        // (insertion-ordered, stamp-deduplicated).
        let n = coupling.num_qubits();
        buffers.stamp += 1;
        buffers.candidates.clear();
        buffers.front_pairs.clear();
        for &node in &buffers.front {
            if !gates.is_two_qubit[node] {
                continue;
            }
            let [a, b] = gates.qubits[node];
            buffers
                .front_pairs
                .push((layout.l2p[a] as u32, layout.l2p[b] as u32));
            for &lq in &[a, b] {
                let p = layout.l2p[lq];
                for &nb in coupling.neighbors(p) {
                    let e = (p.min(nb), p.max(nb));
                    let slot = &mut buffers.edge_stamp[e.0 * n + e.1];
                    if *slot != buffers.stamp {
                        *slot = buffers.stamp;
                        buffers.candidates.push(e);
                    }
                }
            }
        }
        // Extended set: successors of front gates, for look-ahead. The
        // reference keeps duplicates and 1-qubit members (they count toward
        // the normalizing size), so track the total separately from the
        // 2-qubit pairs that contribute distance.
        buffers.extended_pairs.clear();
        let mut extended_total = 0usize;
        for &node in &buffers.front {
            for &succ in dag.successors(node) {
                if buffers.executed[succ] {
                    continue;
                }
                extended_total += 1;
                if gates.is_two_qubit[succ] {
                    let [a, b] = gates.qubits[succ];
                    buffers
                        .extended_pairs
                        .push((layout.l2p[a] as u32, layout.l2p[b] as u32));
                }
            }
        }

        let per_score_steps = (buffers.front_pairs.len() + buffers.extended_pairs.len()) as u64;
        assert!(
            !buffers.candidates.is_empty(),
            "at least one candidate swap exists"
        );
        // A candidate swap of physical qubits (a, b) only relabels those two
        // endpoints, so score against the unchanged layout with the labels
        // exchanged — no layout mutation at all. Distances are integers, so
        // the u64 accumulators equal the reference's sequential f64 sums
        // exactly (every partial sum is an exact small integer), keeping the
        // scores — and therefore the routing — byte-identical.
        let (dist, dn) = coupling.distance_table();
        let ext_div = extended_total.max(1) as f64;
        let mut best_edge = (usize::MAX, usize::MAX);
        let mut best_h = f64::INFINITY;
        for idx in 0..buffers.candidates.len() {
            let (a, b) = buffers.candidates[idx];
            let (a32, b32) = (a as u32, b as u32);
            let fix = |p: u32| {
                if p == a32 {
                    b32
                } else if p == b32 {
                    a32
                } else {
                    p
                }
            };
            let mut s: u64 = 0;
            for &(pa, pb) in &buffers.front_pairs {
                s += dist[fix(pa) as usize * dn + fix(pb) as usize] as u64;
            }
            let mut ext: u64 = 0;
            for &(pa, pb) in &buffers.extended_pairs {
                ext += dist[fix(pa) as usize * dn + fix(pb) as usize] as u64;
            }
            let score = s as f64 + 0.5 * (ext as f64) / ext_div;
            let h = score * buffers.decay_of(a).max(buffers.decay_of(b));
            if h < best_h {
                best_h = h;
                best_edge = (a, b);
            }
        }
        steps += per_score_steps * buffers.candidates.len() as u64;
        let (a, b) = best_edge;
        layout.swap_physical(a, b);
        buffers.bump_decay(a);
        buffers.bump_decay(b);
        out.push(Gate::Swap, &[a, b]);
        swap_count += 1;
    }

    // Re-attach measurements on final physical wires.
    for op in circuit.operations() {
        if let Operation::Measure(q) = op {
            out.measure(layout.l2p[*q]);
        }
    }

    RoutedCircuit {
        circuit: out,
        swap_count,
        initial_layout,
        final_layout: layout.l2p,
        steps,
    }
}

/// Verifies that every 2-qubit gate of a routed circuit touches only
/// coupled pairs (used in tests and as a post-routing assertion).
pub fn respects_coupling(circuit: &Circuit, coupling: &CouplingMap) -> bool {
    circuit.instructions().all(|i| match i.qubits.len() {
        0 | 1 => true,
        2 => coupling.are_coupled(i.qubits[0], i.qubits[1]),
        _ => false,
    })
}

/// Reconstructs the logical circuit a routed circuit implements, by
/// tracking SWAP-induced permutations backwards from the initial layout.
/// Used to verify routing preserved semantics.
pub fn unroute(routed: &RoutedCircuit, initial_logical: usize) -> Circuit {
    // physical → logical, from the winning trial's initial layout.
    let mut p2l: HashMap<usize, usize> = routed
        .initial_layout
        .iter()
        .enumerate()
        .map(|(l, &p)| (p, l))
        .collect();
    let routed = &routed.circuit;
    let mut out = Circuit::new(initial_logical);
    for op in routed.operations() {
        match op {
            Operation::Gate(i) if i.gate == Gate::Swap => {
                let a = i.qubits[0];
                let b = i.qubits[1];
                let la = p2l.get(&a).copied();
                let lb = p2l.get(&b).copied();
                match la {
                    Some(l) => {
                        p2l.insert(b, l);
                    }
                    None => {
                        p2l.remove(&b);
                    }
                }
                match lb {
                    Some(l) => {
                        p2l.insert(a, l);
                    }
                    None => {
                        p2l.remove(&a);
                    }
                }
            }
            Operation::Gate(i) => {
                let qs: Vec<usize> = i
                    .qubits
                    .iter()
                    .map(|p| *p2l.get(p).expect("gate on unmapped physical qubit"))
                    .collect();
                out.push(i.gate.clone(), &qs);
            }
            Operation::Measure(p) => {
                if let Some(&l) = p2l.get(p) {
                    out.measure(l);
                }
            }
            Operation::Barrier(_) => {}
        }
    }
    out
}

/// The straightforward SABRE implementation this module's [`route`] was
/// optimized from, preserved verbatim as the semantics oracle: it rebuilds
/// the dependency DAG per trial, clones the layout per candidate swap, and
/// reallocates `front`/`candidates`/`extended` every round.
///
/// `tests/sabre_differential.rs` asserts `route` produces byte-identical
/// circuits, layouts, swap counts, and step counts; `benches/sabre.rs` and
/// the `figures bench-figures` report measure the speedup against it. Not
/// for production use.
///
/// # Errors
///
/// Identical to [`route`].
pub fn route_reference(
    circuit: &Circuit,
    coupling: &CouplingMap,
) -> Result<RoutedCircuit, RouteError> {
    const TRIALS: u64 = 5;
    if circuit.num_qubits() > coupling.num_qubits() {
        return Err(RouteError::TooManyQubits {
            needed: circuit.num_qubits(),
            available: coupling.num_qubits(),
        });
    }
    if coupling.num_qubits() > 0 && !coupling.is_connected() {
        return Err(RouteError::Disconnected);
    }
    if let Some(wide) = circuit.instructions().find(|i| i.qubits.len() > 2) {
        return Err(RouteError::UnsupportedArity {
            arity: wide.qubits.len(),
        });
    }
    let mut best: Option<RoutedCircuit> = None;
    let mut total_steps = 0u64;
    for trial in 0..TRIALS {
        let mut result = route_once_reference(circuit, coupling, trial);
        total_steps += result.steps;
        if best
            .as_ref()
            .is_none_or(|b| result.swap_count < b.swap_count)
        {
            result.steps = 0; // replaced with the total below
            best = Some(result);
        }
    }
    let mut best = best.expect("at least one trial ran");
    best.steps = total_steps;
    Ok(best)
}

/// One reference routing pass (the pre-optimization `route_once`).
fn route_once_reference(circuit: &Circuit, coupling: &CouplingMap, seed: u64) -> RoutedCircuit {
    let dag = DependencyDag::from_circuit(circuit);

    let mut layout = Layout::trivial(circuit.num_qubits(), coupling.num_qubits());
    if seed > 0 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for l in 0..circuit.num_qubits() {
            let p = (next() % coupling.num_qubits() as u64) as usize;
            let other = layout.l2p[l];
            layout.swap_physical(other, p);
        }
    }
    let initial_layout = layout.l2p.clone();
    let mut out = Circuit::new(coupling.num_qubits());
    let mut steps: u64 = 0;
    let mut swap_count = 0usize;

    let mut pending_preds: Vec<usize> = (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
    let mut front: Vec<usize> = (0..dag.len()).filter(|&i| pending_preds[i] == 0).collect();
    let mut executed = vec![false; dag.len()];
    let mut decay = vec![1.0f64; coupling.num_qubits()];

    while !front.is_empty() {
        let mut progress = false;
        let mut next_front = Vec::new();
        for &node in &front {
            let instr = dag.instruction(node);
            let executable = match instr.qubits.len() {
                1 => true,
                2 => {
                    let p0 = layout.l2p[instr.qubits[0]];
                    let p1 = layout.l2p[instr.qubits[1]];
                    coupling.are_coupled(p0, p1)
                }
                _ => unreachable!(),
            };
            steps += 1;
            if executable {
                let phys: Vec<usize> = instr.qubits.iter().map(|&q| layout.l2p[q]).collect();
                out.push(instr.gate.clone(), &phys);
                executed[node] = true;
                progress = true;
                for &succ in dag.successors(node) {
                    pending_preds[succ] -= 1;
                    if pending_preds[succ] == 0 {
                        next_front.push(succ);
                    }
                }
            } else {
                next_front.push(node);
            }
        }
        front = next_front;
        front.sort_unstable();
        front.dedup();

        if progress {
            decay.iter_mut().for_each(|d| *d = 1.0);
            continue;
        }
        if front.is_empty() {
            break;
        }

        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &node in &front {
            let instr = dag.instruction(node);
            if instr.qubits.len() != 2 {
                continue;
            }
            for &lq in &instr.qubits {
                let p = layout.l2p[lq];
                for &nb in coupling.neighbors(p) {
                    let e = (p.min(nb), p.max(nb));
                    if !candidates.contains(&e) {
                        candidates.push(e);
                    }
                }
            }
        }
        let extended: Vec<usize> = front
            .iter()
            .flat_map(|&n| dag.successors(n).iter().copied())
            .filter(|&n| !executed[n])
            .collect();

        let score = |layout: &Layout, steps: &mut u64| -> f64 {
            let mut s = 0.0;
            for &n in &front {
                let i = dag.instruction(n);
                if i.qubits.len() == 2 {
                    *steps += 1;
                    s += coupling.distance(layout.l2p[i.qubits[0]], layout.l2p[i.qubits[1]]) as f64;
                }
            }
            let mut ext = 0.0;
            for &n in &extended {
                let i = dag.instruction(n);
                if i.qubits.len() == 2 {
                    *steps += 1;
                    ext +=
                        coupling.distance(layout.l2p[i.qubits[0]], layout.l2p[i.qubits[1]]) as f64;
                }
            }
            s + 0.5 * ext / (extended.len().max(1) as f64)
        };

        let mut best: Option<((usize, usize), f64)> = None;
        for &(a, b) in &candidates {
            let mut trial = layout.clone();
            trial.swap_physical(a, b);
            let h = score(&trial, &mut steps) * decay[a].max(decay[b]);
            if best.is_none() || h < best.unwrap().1 {
                best = Some(((a, b), h));
            }
        }
        let ((a, b), _) = best.expect("at least one candidate swap exists");
        layout.swap_physical(a, b);
        decay[a] += 0.001;
        decay[b] += 0.001;
        out.push(Gate::Swap, &[a, b]);
        swap_count += 1;
    }

    for op in circuit.operations() {
        if let Operation::Measure(q) = op {
            out.measure(layout.l2p[*q]);
        }
    }

    RoutedCircuit {
        circuit: out,
        swap_count,
        initial_layout,
        final_layout: layout.l2p,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_simulator::equiv;

    #[test]
    fn already_routable_circuit_needs_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).cz(1, 2);
        let r = route(&c, &CouplingMap::line(3)).unwrap();
        assert_eq!(r.swap_count, 0);
        assert!(respects_coupling(&r.circuit, &CouplingMap::line(3)));
    }

    #[test]
    fn distant_gate_routes_legally() {
        // A layout trial may solve cz(0,3) on a line without swaps; what
        // must always hold is coupling legality and semantic preservation.
        let mut c = Circuit::new(4);
        c.cz(0, 3).cz(0, 1).cz(1, 2).cz(2, 3).cz(0, 2).cz(1, 3);
        let coupling = CouplingMap::line(4);
        let r = route(&c, &coupling).unwrap();
        assert!(
            r.swap_count >= 1,
            "a 4-clique on a line cannot be swap-free"
        );
        assert!(respects_coupling(&r.circuit, &coupling));
        let recovered = unroute(&r, 4);
        assert!(equiv::compare(&c.unitary(), &recovered.unitary(), 1e-9).is_equivalent());
    }

    #[test]
    fn routing_preserves_semantics() {
        let mut c = Circuit::new(4);
        c.h(0).cz(0, 3).cx(1, 2).rz(0.4, 3).cz(0, 2);
        let coupling = CouplingMap::line(4);
        let r = route(&c, &coupling).unwrap();
        let recovered = unroute(&r, 4);
        let e = equiv::compare(&c.unitary(), &recovered.unitary(), 1e-9);
        assert!(e.is_equivalent(), "{e:?}");
    }

    #[test]
    fn routes_onto_larger_device() {
        let mut c = Circuit::new(5);
        for a in 0..5 {
            for b in (a + 1)..5 {
                c.cz(a, b);
            }
        }
        let coupling = CouplingMap::grid(3, 3);
        let r = route(&c, &coupling).unwrap();
        assert!(respects_coupling(&r.circuit, &coupling));
        assert_eq!(r.circuit.num_qubits(), 9);
    }

    #[test]
    fn all_to_all_needs_no_swaps() {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let full = CouplingMap::new(5, &edges);
        let mut c = Circuit::new(5);
        c.cz(0, 4).cz(1, 3).cz(2, 4);
        let r = route(&c, &full).unwrap();
        assert_eq!(r.swap_count, 0);
    }

    #[test]
    fn step_count_grows_with_circuit_size() {
        let coupling = CouplingMap::grid(4, 5);
        let mut small = Circuit::new(6);
        let mut large = Circuit::new(12);
        for i in 0..5 {
            small.cz(i, i + 1);
        }
        for i in 0..11 {
            large.cz(i, i + 1);
            large.cz(0, i + 1);
        }
        let rs = route(&small, &coupling).unwrap();
        let rl = route(&large, &coupling).unwrap();
        assert!(rl.steps > rs.steps);
    }

    #[test]
    fn measurements_survive_routing() {
        let mut c = Circuit::new(3);
        c.cz(0, 2).measure_all();
        let r = route(&c, &CouplingMap::line(3)).unwrap();
        let measures = r
            .circuit
            .operations()
            .iter()
            .filter(|o| matches!(o, Operation::Measure(_)))
            .count();
        assert_eq!(measures, 3);
    }

    #[test]
    fn oversized_circuit_is_a_typed_error() {
        let mut c = Circuit::new(5);
        c.cz(0, 4);
        let err = route(&c, &CouplingMap::line(3)).unwrap_err();
        assert_eq!(
            err,
            RouteError::TooManyQubits {
                needed: 5,
                available: 3
            }
        );
        assert!(err.to_string().contains("needs 5 qubits"), "{err}");
    }

    #[test]
    fn disconnected_coupling_is_a_typed_error() {
        let mut c = Circuit::new(4);
        c.cz(0, 3);
        let coupling = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(route(&c, &coupling).unwrap_err(), RouteError::Disconnected);
    }

    #[test]
    fn wide_gates_are_a_typed_error() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        assert_eq!(
            route(&c, &CouplingMap::line(3)).unwrap_err(),
            RouteError::UnsupportedArity { arity: 3 }
        );
    }

    #[test]
    fn optimized_route_matches_reference_on_grid() {
        let mut c = Circuit::new(9);
        for a in 0..9 {
            c.h(a);
            for b in (a + 1)..9 {
                if (a * 7 + b * 3) % 4 != 0 {
                    c.cz(a, b);
                }
            }
        }
        c.measure_all();
        let coupling = CouplingMap::grid(3, 4);
        let fast = route(&c, &coupling).unwrap();
        let slow = route_reference(&c, &coupling).unwrap();
        assert_eq!(fast.circuit, slow.circuit);
        assert_eq!(fast.swap_count, slow.swap_count);
        assert_eq!(fast.initial_layout, slow.initial_layout);
        assert_eq!(fast.final_layout, slow.final_layout);
        assert_eq!(fast.steps, slow.steps);
    }

    #[test]
    fn washington_routes_100_variable_chain() {
        let mut c = Circuit::new(100);
        for i in 0..99 {
            c.cz(i, i + 1);
        }
        let coupling = CouplingMap::ibm_washington();
        let r = route(&c, &coupling).unwrap();
        assert!(respects_coupling(&r.circuit, &coupling));
    }
}
