//! End-to-end superconducting transpilation (the paper's top path in
//! Fig. 3): nativize → decompose multi-qubit gates → SABRE layout/routing →
//! schedule and score. Plays the role of the Qiskit transpiler baseline.

use crate::sabre::RouteError;
use crate::{sabre, CouplingMap};
use weaver_circuit::{native, Circuit, NativeBasis, Operation};

/// Gate timing and noise parameters of a superconducting backend.
/// Durations in µs; fidelities as success probabilities.
#[derive(Clone, Debug, PartialEq)]
pub struct SuperconductingParams {
    /// Single-qubit gate duration.
    pub duration_1q: f64,
    /// Two-qubit gate duration.
    pub duration_2q: f64,
    /// Measurement duration.
    pub duration_measure: f64,
    /// Single-qubit gate fidelity.
    pub fidelity_1q: f64,
    /// Two-qubit gate fidelity.
    pub fidelity_2q: f64,
    /// Readout fidelity per qubit.
    pub fidelity_readout: f64,
    /// Coherence time T2 (µs).
    pub t2_coherence: f64,
}

impl SuperconductingParams {
    /// Representative IBM Eagle-class calibration (Washington-era devices):
    /// fast gates, short coherence, percent-level 2-qubit error.
    pub fn ibm_eagle() -> Self {
        SuperconductingParams {
            duration_1q: 0.035,
            duration_2q: 0.30,
            duration_measure: 4.0,
            fidelity_1q: 0.9997,
            fidelity_2q: 0.99,
            fidelity_readout: 0.98,
            t2_coherence: 100.0,
        }
    }
}

impl Default for SuperconductingParams {
    fn default() -> Self {
        SuperconductingParams::ibm_eagle()
    }
}

/// Output of the superconducting pipeline with the paper's three metrics.
#[derive(Clone, Debug)]
pub struct TranspileResult {
    /// The routed physical circuit.
    pub circuit: Circuit,
    /// SWAPs inserted by routing.
    pub swap_count: usize,
    /// Two-qubit gate count after routing (swaps already decomposed).
    pub two_qubit_gates: usize,
    /// Estimated wall-clock execution time of one shot (µs).
    pub execution_time: f64,
    /// Estimated probability of success.
    pub eps: f64,
    /// Heuristic steps performed during routing (complexity metric).
    pub steps: u64,
}

/// Runs the full superconducting pipeline on an input circuit.
///
/// # Errors
///
/// A [`RouteError`] when the circuit is wider than the device or the
/// coupling graph is disconnected (see [`sabre::route`]).
pub fn transpile(
    circuit: &Circuit,
    coupling: &CouplingMap,
    params: &SuperconductingParams,
) -> Result<TranspileResult, RouteError> {
    // 1. Native synthesis to {U3, CZ}: superconducting path keeps no CCZ.
    let native = native::nativize(circuit, NativeBasis::U3Cz);
    // 2. Route with SABRE.
    let routed = sabre::route(&native, coupling)?;
    // 3. Decompose the inserted SWAPs and re-nativize (fuses the H layers
    //    the SWAP→CX→CZ lowering introduces).
    let physical = native::nativize(&routed.circuit, NativeBasis::U3Cz);

    let two_qubit_gates = physical.two_qubit_count();
    let execution_time = execution_time(&physical, params);
    let eps = eps(&physical, params, circuit.num_qubits(), execution_time);

    Ok(TranspileResult {
        circuit: physical,
        swap_count: routed.swap_count,
        two_qubit_gates,
        execution_time,
        eps,
        steps: routed.steps,
    })
}

/// ASAP-scheduled execution time: per-wire clocks advance by gate duration;
/// multi-qubit gates synchronize their wires.
pub fn execution_time(circuit: &Circuit, params: &SuperconductingParams) -> f64 {
    let mut clock = vec![0.0f64; circuit.num_qubits()];
    for op in circuit.operations() {
        match op {
            Operation::Gate(i) => {
                let d = if i.gate.num_qubits() == 1 {
                    params.duration_1q
                } else {
                    params.duration_2q
                };
                let start = i.qubits.iter().map(|&q| clock[q]).fold(0.0f64, f64::max);
                for &q in &i.qubits {
                    clock[q] = start + d;
                }
            }
            Operation::Measure(q) => {
                clock[*q] += params.duration_measure;
            }
            Operation::Barrier(qs) => {
                let scope: Vec<usize> = if qs.is_empty() {
                    (0..circuit.num_qubits()).collect()
                } else {
                    qs.clone()
                };
                let t = scope.iter().map(|&q| clock[q]).fold(0.0f64, f64::max);
                for &q in &scope {
                    clock[q] = t;
                }
            }
        }
    }
    clock.into_iter().fold(0.0, f64::max)
}

/// EPS of a physical circuit: gate fidelity product × readout × idle
/// decoherence over the execution window for the *logical* qubit count.
pub fn eps(
    circuit: &Circuit,
    params: &SuperconductingParams,
    logical_qubits: usize,
    execution_time: f64,
) -> f64 {
    let mut p = 1.0f64;
    for i in circuit.instructions() {
        p *= if i.gate.num_qubits() == 1 {
            params.fidelity_1q
        } else {
            params.fidelity_2q
        };
    }
    let measured = circuit
        .operations()
        .iter()
        .filter(|o| matches!(o, Operation::Measure(_)))
        .count();
    p *= params.fidelity_readout.powi(measured as i32);
    p * (-(logical_qubits as f64) * execution_time / params.t2_coherence).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_device() -> CouplingMap {
        CouplingMap::line(8)
    }

    #[test]
    fn transpile_produces_native_routed_circuit() {
        let mut c = Circuit::new(4);
        c.h(0).ccz(0, 1, 3).cx(0, 2);
        let r = transpile(&c, &line_device(), &SuperconductingParams::default()).unwrap();
        assert!(sabre::respects_coupling(&r.circuit, &line_device()));
        assert!(r.two_qubit_gates >= 6, "CCZ costs ≥ 6 CZ after lowering");
        assert!(r.eps > 0.0 && r.eps <= 1.0);
        assert!(r.execution_time > 0.0);
    }

    #[test]
    fn swaps_reduce_eps() {
        // A line-friendly chain vs an all-to-all pattern no layout can fix.
        let mut near = Circuit::new(6);
        for i in 0..5 {
            near.cz(i, i + 1);
        }
        let mut far = Circuit::new(6);
        for a in 0..6 {
            for b in (a + 1)..6 {
                far.cz(a, b);
            }
        }
        let p = SuperconductingParams::default();
        let rn = transpile(&near, &line_device(), &p).unwrap();
        let rf = transpile(&far, &line_device(), &p).unwrap();
        assert_eq!(rn.swap_count, 0, "chain fits a line layout");
        assert!(rf.swap_count > 0, "clique needs routing");
        assert!(rf.eps < rn.eps);
        assert!(rf.execution_time > rn.execution_time);
    }

    #[test]
    fn execution_time_respects_parallelism() {
        let p = SuperconductingParams::default();
        let mut parallel = Circuit::new(4);
        parallel.cz(0, 1).cz(2, 3);
        let mut serial = Circuit::new(4);
        serial.cz(0, 1).cz(1, 2);
        assert!(execution_time(&parallel, &p) < execution_time(&serial, &p));
    }

    #[test]
    fn measurement_costs_time_and_fidelity() {
        let p = SuperconductingParams::default();
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        let t0 = execution_time(&c, &p);
        let e0 = eps(&c, &p, 2, t0);
        c.measure_all();
        let t1 = execution_time(&c, &p);
        let e1 = eps(&c, &p, 2, t1);
        assert!(t1 > t0);
        assert!(e1 < e0);
    }

    #[test]
    fn deep_circuits_decohere() {
        let p = SuperconductingParams::default();
        let mut c = Circuit::new(2);
        for _ in 0..2000 {
            c.cz(0, 1);
        }
        let r = transpile(&c, &line_device(), &p).unwrap();
        assert!(r.eps < 1e-6, "2000 CZs at 0.99 each must crush EPS");
    }
}
