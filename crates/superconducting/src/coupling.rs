//! Qubit coupling maps of superconducting devices.
//!
//! Superconducting QPUs have fixed, sparse qubit connectivity (paper §2.3);
//! two-qubit gates only run on coupled pairs, everything else needs SWAP
//! routing. Includes the heavy-hex generator used to model the paper's
//! 127-qubit IBM Washington backend (§8.1).

use std::collections::VecDeque;
use std::sync::Arc;

/// An undirected coupling graph over physical qubits.
///
/// The adjacency lists and the all-pairs BFS distance matrix live behind a
/// shared [`Arc`], so cloning a map (the batch engine hands one to every
/// job, the lowering pipeline threads one through every pass) copies a
/// pointer instead of re-materialising `O(n²)` distances.
#[derive(Clone, Debug)]
pub struct CouplingMap {
    inner: Arc<CouplingData>,
}

#[derive(Debug, PartialEq)]
struct CouplingData {
    num_qubits: usize,
    adjacency: Vec<Vec<usize>>,
    /// All-pairs shortest-path distances (BFS, precomputed), flattened
    /// row-major with stride `num_qubits`; `u32::MAX` marks unreachable.
    distances: Vec<u32>,
}

impl PartialEq for CouplingMap {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

impl CouplingMap {
    /// Builds a coupling map from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `≥ num_qubits` or is a
    /// self-loop.
    pub fn new(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a}, {b}) out of range"
            );
            assert_ne!(a, b, "self-loop on qubit {a}");
            if !adjacency[a].contains(&b) {
                adjacency[a].push(b);
                adjacency[b].push(a);
            }
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        let distances = all_pairs_bfs(&adjacency);
        CouplingMap {
            inner: Arc::new(CouplingData {
                num_qubits,
                adjacency,
                distances,
            }),
        }
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.inner.num_qubits
    }

    /// Neighbours of a physical qubit.
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.inner.adjacency[q]
    }

    /// All edges (each once, `a < b`).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (a, adj) in self.inner.adjacency.iter().enumerate() {
            for &b in adj {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Whether two physical qubits are directly coupled. `O(1)`: an edge is
    /// exactly a BFS distance of 1 in the precomputed matrix.
    #[inline]
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.inner.distances[a * self.inner.num_qubits + b] == 1
    }

    /// Shortest-path distance in edges (`usize::MAX` if disconnected).
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        match self.inner.distances[a * self.inner.num_qubits + b] {
            u32::MAX => usize::MAX,
            d => d as usize,
        }
    }

    /// Crate-internal view of the flat distance matrix (row-major with
    /// stride `num_qubits`, `u32::MAX` marks unreachable) for hot loops
    /// that cannot afford the per-lookup match in [`Self::distance`].
    #[inline]
    pub(crate) fn distance_table(&self) -> (&[u32], usize) {
        (&self.inner.distances, self.inner.num_qubits)
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        let n = self.inner.num_qubits;
        self.inner.distances[..n].iter().all(|&d| d != u32::MAX)
    }

    // ---- standard topologies ----------------------------------------------

    /// A 1D line of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        CouplingMap::new(n, &edges)
    }

    /// A `rows × cols` 2D grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        CouplingMap::new(rows * cols, &edges)
    }

    /// IBM heavy-hex lattice with `d` unit-cell rows/cols, as used by the
    /// Eagle-family processors. `heavy_hex(7)` yields the 127-qubit
    /// Washington topology shape.
    ///
    /// Construction: `d` rows of `2d + 1`-qubit horizontal chains, joined by
    /// bridge qubits at alternating offsets (period 4), which produces the
    /// characteristic degree ≤ 3 heavy-hex graph.
    pub fn heavy_hex(d: usize) -> Self {
        assert!(d >= 1, "heavy-hex distance must be ≥ 1");
        let row_len = 2 * d + 1;
        let num_rows = d;
        let mut edges = Vec::new();
        let mut next_id = num_rows * row_len;
        // Horizontal chains.
        let idx = |r: usize, c: usize| r * row_len + c;
        for r in 0..num_rows {
            for c in 0..row_len - 1 {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
        }
        // Vertical bridges between consecutive rows, alternating phase.
        for r in 0..num_rows.saturating_sub(1) {
            let start = if r % 2 == 0 { 0 } else { 2 };
            let mut c = start;
            while c < row_len {
                let bridge = next_id;
                next_id += 1;
                edges.push((idx(r, c), bridge));
                edges.push((bridge, idx(r + 1, c)));
                c += 4;
            }
        }
        // Dangling bridges above the first and below the last row complete
        // the qubit count of the real devices.
        // Phase continues the row-parity alternation so no chain qubit gets
        // bridges at the same column from both sides (degree stays ≤ 3).
        let start = if (num_rows - 1) % 2 == 0 { 0 } else { 2 };
        let mut c = start;
        while c < row_len {
            let bridge = next_id;
            next_id += 1;
            edges.push((idx(num_rows - 1, c), bridge));
            c += 4;
        }
        CouplingMap::new(next_id, &edges)
    }

    /// A heavy-hex lattice of unit-cell distance `d`, padded or trimmed to
    /// exactly `target` qubits, connected for every target size. Padding
    /// extends the qubit count with leaf chains (degree-safe); trimming
    /// drops the highest-numbered qubits — which are bridge qubits, so a
    /// deep trim can orphan whole rows — and then re-joins any orphaned
    /// region with a chain edge to its numeric predecessor.
    pub fn heavy_hex_sized(d: usize, target: usize) -> Self {
        assert!(target >= 1, "heavy-hex sizing needs ≥ 1 qubit");
        let base = CouplingMap::heavy_hex(d);
        let n = base.num_qubits();
        if n == target {
            return base;
        }
        let mut edges = base.edges();
        let mut num = n;
        while num < target {
            // Chain new leaves off successive existing qubits (degree-safe).
            edges.push((num - 1, num));
            num += 1;
        }
        if num > target {
            // Trim: rebuild keeping only qubits < target (drops excess
            // bridge/leaf qubits, which carry the highest ids).
            let mut edges: Vec<(usize, usize)> = edges
                .into_iter()
                .filter(|&(a, b)| a < target && b < target)
                .collect();
            let mut map = CouplingMap::new(target, &edges);
            // A deep trim can drop every bridge of a row gap; chain-join
            // each unreachable region to its predecessor until connected.
            // Chain qubits are numbered row-major, so (u-1, u) stitches an
            // orphaned row onto the end of the previous one.
            while !map.is_connected() {
                let u = (1..target)
                    .find(|&q| map.distance(0, q) == usize::MAX)
                    .expect("a disconnected map has an unreachable qubit");
                edges.push((u - 1, u));
                map = CouplingMap::new(target, &edges);
            }
            return map;
        }
        CouplingMap::new(num, &edges)
    }

    /// The 127-qubit IBM Washington model used as the paper's
    /// superconducting backend (§8.1). Heavy-hex family; qubit count is
    /// padded to exactly 127 with a final chain extension if the generator
    /// lands below.
    pub fn ibm_washington() -> Self {
        // heavy_hex(7): 7 rows × 15 + bridges, sized to exactly 127.
        CouplingMap::heavy_hex_sized(7, 127)
    }

    /// The 133-qubit IBM Heron model (Torino-class devices): the same
    /// distance-7 heavy-hex family as Washington, at the generator's
    /// natural 133-qubit count.
    pub fn ibm_heron() -> Self {
        CouplingMap::heavy_hex_sized(7, 133)
    }
}

fn all_pairs_bfs(adjacency: &[Vec<usize>]) -> Vec<u32> {
    let n = adjacency.len();
    let mut out = vec![u32::MAX; n * n];
    for start in 0..n {
        let row = &mut out[start * n..(start + 1) * n];
        row[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[u] {
                if row[v] == u32::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let m = CouplingMap::line(5);
        assert!(m.are_coupled(0, 1));
        assert!(!m.are_coupled(0, 2));
        assert_eq!(m.distance(0, 4), 4);
        assert!(m.is_connected());
    }

    #[test]
    fn grid_structure() {
        let m = CouplingMap::grid(3, 4);
        assert_eq!(m.num_qubits(), 12);
        assert_eq!(m.distance(0, 11), 5); // manhattan distance
        assert_eq!(m.edges().len(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn heavy_hex_has_low_degree() {
        let m = CouplingMap::heavy_hex(3);
        assert!(m.is_connected());
        let max_degree = (0..m.num_qubits())
            .map(|q| m.neighbors(q).len())
            .max()
            .unwrap();
        assert!(
            max_degree <= 3,
            "heavy-hex degree must be ≤ 3, got {max_degree}"
        );
    }

    #[test]
    fn washington_has_127_qubits() {
        let m = CouplingMap::ibm_washington();
        assert_eq!(m.num_qubits(), 127);
        assert!(m.is_connected());
        let max_degree = (0..127).map(|q| m.neighbors(q).len()).max().unwrap();
        assert!(max_degree <= 4);
        // Sparse like the real chip: ~144 edges on 127 qubits.
        assert!(m.edges().len() < 160);
    }

    #[test]
    fn heron_has_133_qubits() {
        let m = CouplingMap::ibm_heron();
        assert_eq!(m.num_qubits(), 133);
        assert!(m.is_connected());
        let max_degree = (0..133).map(|q| m.neighbors(q).len()).max().unwrap();
        assert!(max_degree <= 3, "heron is pure heavy-hex, degree ≤ 3");
        // A strict superset of the Washington trim: same chains, all
        // bridges kept.
        assert!(m.edges().len() > CouplingMap::ibm_washington().edges().len());
    }

    #[test]
    fn heavy_hex_sized_pads_and_trims() {
        // heavy_hex(3) has 7-qubit rows; pad up and trim down around it.
        let natural = CouplingMap::heavy_hex(3).num_qubits();
        let padded = CouplingMap::heavy_hex_sized(3, natural + 5);
        assert_eq!(padded.num_qubits(), natural + 5);
        assert!(padded.is_connected());
        let trimmed = CouplingMap::heavy_hex_sized(3, natural - 2);
        assert_eq!(trimmed.num_qubits(), natural - 2);
        assert!(trimmed.is_connected());
    }

    #[test]
    fn heavy_hex_sized_stays_connected_at_every_trim_depth() {
        // Deep trims drop whole rows' bridges (e.g. 110 of heavy_hex(7)
        // used to orphan rows 2..6); the chain-join repair must keep every
        // size connected.
        for target in (1..=CouplingMap::heavy_hex(7).num_qubits()).step_by(7) {
            let m = CouplingMap::heavy_hex_sized(7, target);
            assert_eq!(m.num_qubits(), target);
            assert!(m.is_connected(), "size {target} disconnected");
        }
        assert!(CouplingMap::heavy_hex_sized(7, 110).is_connected());
    }

    #[test]
    fn duplicate_edges_ignored() {
        let m = CouplingMap::new(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(m.edges().len(), 1);
    }

    #[test]
    fn disconnected_graph_detected() {
        let m = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert!(!m.is_connected());
        assert_eq!(m.distance(0, 3), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CouplingMap::new(2, &[(0, 5)]);
    }
}
