//! The batch-compilation job model: what to compile ([`JobSource`]), for
//! which backend ([`Target`]), under which options ([`JobOptions`]) — and
//! what came back ([`JobResult`]).

use std::fmt;
use std::path::PathBuf;
use weaver_core::cache::{fingerprint_fpqa_params, Digest, Fingerprint, COMPILER_VERSION};
use weaver_core::{Metrics, Workload};
use weaver_fpqa::FpqaParams;
use weaver_sat::Formula;

/// Compilation backend of a job. The names and aliases mirror the
/// [`weaver_core::backend::BackendRegistry`] keys — [`Target::parse`]
/// resolves names and aliases through the registry, including the whole
/// `sc:*` device family (built-in devices and parameterized
/// `sc:grid:<w>x<h>` lattices), which lands in [`Target::ScDevice`] with
/// its canonical registry name. The enum stays closed on purpose: each
/// variant owns a stable artifact-cache tag (see
/// [`CompileJob::artifact_key`]), so registering a new *core* backend also
/// means adding a variant here, to [`Target::ALL`], [`Target::name`], and
/// the key tag — the non-exhaustive matches below make the compiler walk
/// you through every site.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Target {
    /// The FPQA path (wOptimizer + wChecker).
    Fpqa,
    /// The superconducting path (QAOA + SABRE on IBM Washington).
    Superconducting,
    /// The ideal state-vector simulator (noiseless EPS reference).
    Simulator,
    /// A member of the `sc:*` superconducting device family, by canonical
    /// registry name (`sc:eagle`, `sc:grid:4x5`, …). The name is the whole
    /// device identity: it selects the coupling map deterministically, and
    /// it participates in the artifact key so two devices never share a
    /// cache entry.
    ScDevice(String),
}

impl Target {
    /// The core batchable targets, in registry order. Device-family
    /// targets are open-ended (`sc:grid:<w>x<h>`) and therefore not
    /// enumerable here; see [`Target::builtin_devices`].
    pub const ALL: [Target; 3] = [Target::Fpqa, Target::Superconducting, Target::Simulator];

    /// The built-in `sc:*` device-family targets, in registry order.
    pub fn builtin_devices() -> Vec<Target> {
        weaver_superconducting::DeviceSpec::builtin()
            .into_iter()
            .map(|d| Target::ScDevice(d.full_name()))
            .collect()
    }

    /// CLI / JSONL name (the registry's primary key).
    pub fn name(&self) -> &str {
        match self {
            Target::Fpqa => "fpqa",
            Target::Superconducting => "superconducting",
            Target::Simulator => "simulator",
            Target::ScDevice(name) => name,
        }
    }

    /// Parses a CLI / manifest target name or alias via the backend
    /// registry; `sc:*` names (aliases like `sc:washington` included, and
    /// parameterized grids) canonicalize into [`Target::ScDevice`].
    pub fn parse(s: &str) -> Result<Self, String> {
        if s.starts_with(weaver_superconducting::device::FAMILY_PREFIX) {
            // Canonicalize via the declarative spec alone — resolving
            // through the registry would mint a whole backend (whose
            // constructor eagerly builds the coupling map's all-pairs
            // distance table) just to read its name.
            let spec = weaver_superconducting::DeviceSpec::resolve(s)?;
            return Ok(Target::ScDevice(spec.full_name()));
        }
        let registry = weaver_core::BackendRegistry::global();
        let canonical = registry
            .get(s)
            .ok_or_else(|| registry.unknown_target(s).message)?
            .info()
            .name;
        Target::ALL
            .into_iter()
            .find(|t| t.name() == canonical)
            .ok_or_else(|| {
                // A backend registered outside the batchable set (e.g. a
                // custom target in a local registry) is never advertised.
                format!(
                    "target `{canonical}` is not batchable (batchable targets: {}, sc:*)",
                    Target::ALL.map(|t| t.name().to_string()).join(", ")
                )
            })
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-job compiler options — the batch equivalent of the `weaverc` flags.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOptions {
    /// 3-qubit gate compression (§5.4).
    pub compression: bool,
    /// Parallel shuttle batching (Algorithm 2).
    pub parallel_shuttling: bool,
    /// DSatur clause coloring (off ⇒ first-fit greedy).
    pub dsatur: bool,
    /// CCZ fidelity override.
    pub ccz_fidelity: Option<f64>,
    /// QAOA γ.
    pub gamma: f64,
    /// QAOA β.
    pub beta: f64,
    /// Run the wChecker on FPQA output.
    pub check: bool,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            compression: true,
            parallel_shuttling: true,
            dsatur: true,
            ccz_fidelity: None,
            gamma: 0.7,
            beta: 0.3,
            check: false,
        }
    }
}

impl JobOptions {
    /// The FPQA parameters these options select.
    pub fn fpqa_params(&self) -> FpqaParams {
        let params = FpqaParams::default();
        match self.ccz_fidelity {
            Some(f) => params.with_ccz_fidelity(f),
            None => params,
        }
    }
}

/// Where a job's workload comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSource {
    /// A workload file on disk, in any registered frontend format
    /// (`.cnf`/`.wcnf` DIMACS, `.mc` edge lists, `.wq` circuits, …).
    Path(PathBuf),
    /// An in-memory workload text (name is for reporting only). The format
    /// is resolved like a file's: [`CompileJob::frontend`] first, then
    /// content sniffing.
    Inline {
        /// Display name.
        name: String,
        /// Workload text in any registered frontend format.
        text: String,
    },
    /// An already parsed formula (name is for reporting only).
    Formula {
        /// Display name.
        name: String,
        /// The workload.
        formula: Formula,
    },
    /// An already parsed frontend workload (name is for reporting only).
    Workload {
        /// Display name.
        name: String,
        /// The workload.
        workload: Workload,
    },
}

/// One unit of batch work: workload source × target × options.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileJob {
    /// The workload.
    pub source: JobSource,
    /// Frontend to parse [`JobSource::Path`]/[`JobSource::Inline`] text
    /// with — a [`weaver_core::FrontendRegistry`] name or alias. `None`
    /// infers the format from the file extension, then content sniffing.
    pub frontend: Option<String>,
    /// The backend.
    pub target: Target,
    /// Compiler options.
    pub options: JobOptions,
}

impl CompileJob {
    /// An FPQA job for a workload file with default options.
    pub fn from_path(path: impl Into<PathBuf>) -> Self {
        CompileJob {
            source: JobSource::Path(path.into()),
            frontend: None,
            target: Target::Fpqa,
            options: JobOptions::default(),
        }
    }

    /// An FPQA job for an in-memory formula with default options.
    pub fn from_formula(name: impl Into<String>, formula: Formula) -> Self {
        CompileJob {
            source: JobSource::Formula {
                name: name.into(),
                formula,
            },
            frontend: None,
            target: Target::Fpqa,
            options: JobOptions::default(),
        }
    }

    /// An FPQA job for an already parsed frontend workload with default
    /// options (circuit workloads additionally need a circuit-capable
    /// [`Target`]).
    pub fn from_workload(name: impl Into<String>, workload: Workload) -> Self {
        CompileJob {
            source: JobSource::Workload {
                name: name.into(),
                workload,
            },
            frontend: None,
            target: Target::Fpqa,
            options: JobOptions::default(),
        }
    }

    /// Display name used in results and JSONL records.
    pub fn name(&self) -> String {
        match &self.source {
            JobSource::Path(p) => p.display().to_string(),
            JobSource::Inline { name, .. }
            | JobSource::Formula { name, .. }
            | JobSource::Workload { name, .. } => name.clone(),
        }
    }

    /// Content-addressed artifact key of this job for `workload`:
    /// BLAKE2s-256 over the canonicalized workload, the target and its
    /// parameters, every option that can influence the artifact, and the
    /// compiler version. Device-family targets additionally hash their
    /// canonical device name (which encodes the topology, `sc:grid:4x5`
    /// included), so `sc:eagle` and `sc:heron` can never collide. The
    /// workload *source* (file path vs inline) and the *frontend* that
    /// parsed it deliberately do not participate — identical content hits
    /// regardless of origin or format (a formula fed as `.cnf` and the
    /// same formula fed programmatically share one artifact).
    pub fn artifact_key(&self, workload: &Workload) -> Digest {
        let mut fp = Fingerprint::new();
        fp.tag(0xA7).str(COMPILER_VERSION);
        fp.bytes(&workload.canonical_bytes());
        match &self.target {
            Target::Fpqa => fp.tag(1),
            Target::Superconducting => fp.tag(2),
            Target::Simulator => fp.tag(3),
            Target::ScDevice(name) => fp.tag(4).str(name),
        };
        fingerprint_fpqa_params(&mut fp, &self.options.fpqa_params());
        fp.bool(self.options.compression)
            .bool(self.options.parallel_shuttling)
            .bool(self.options.dsatur)
            .f64(self.options.gamma)
            .f64(self.options.beta)
            .bool(self.options.check);
        fp.digest()
    }
}

/// How the artifact cache participated in a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory tier.
    MemoryHit,
    /// Served from the on-disk tier.
    DiskHit,
    /// Compiled fresh and stored.
    Miss,
    /// Caching disabled for this run.
    Bypass,
}

impl CacheOutcome {
    /// JSONL name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::MemoryHit => "memory_hit",
            CacheOutcome::DiskHit => "disk_hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }

    /// Whether the artifact was served without recompiling.
    pub fn is_hit(self) -> bool {
        matches!(self, CacheOutcome::MemoryHit | CacheOutcome::DiskHit)
    }
}

/// Wall-clock seconds spent in each stage of one job.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageTimings {
    /// Reading + DIMACS parsing.
    pub parse_seconds: f64,
    /// Compilation (zero on a cache hit).
    pub compile_seconds: f64,
    /// wChecker verification (zero on a cache hit or when not requested).
    pub check_seconds: f64,
    /// End-to-end job time, including cache lookups.
    pub total_seconds: f64,
}

/// One lowering pass of the producing compile, with its wall-clock time and
/// work-step count, so cached artifacts round-trip through the disk tier.
///
/// This is the canonical [`weaver_obs::PassRecord`] under the engine's
/// historical name — the owned mirror of
/// [`weaver_core::backend::PassStat`] (which converts via `From<&PassStat>`)
/// with identical field names, keeping the `weaver-artifact` disk format
/// byte-stable.
pub type PassTiming = weaver_obs::PassRecord;

/// The cacheable output of one successful job. Wall-clock metrics inside
/// refer to the compile that produced the artifact, not to the lookup that
/// may have served it.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// The printed wQasm program.
    pub wqasm: String,
    /// Evaluation metrics of the producing compile.
    pub metrics: Metrics,
    /// Per-pass timing of the producing compile, in execution order (the
    /// `CompileOutput::passes` trace; preserved verbatim on cache hits).
    pub passes: Vec<PassTiming>,
    /// SWAPs inserted (superconducting only).
    pub swap_count: Option<usize>,
    /// Colors used by the clause coloring (FPQA only).
    pub num_colors: Option<usize>,
    /// wChecker verdict, when the job requested `--check`.
    pub check_passed: Option<bool>,
    /// wChecker findings (empty when passed or not checked).
    pub check_errors: Vec<String>,
}

/// Failure classification for structured one-line diagnostics. A wChecker
/// rejection is *not* a [`JobError`]: the compile produced an artifact, so
/// it flows through [`Artifact::check_passed`] `== Some(false)` instead
/// (and [`JobResult::succeeded`] reports it as a failure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The workload file could not be read.
    Io,
    /// No registered frontend claims the workload (unknown `frontend=`
    /// name, unrecognized extension, and content sniffing failed).
    UnknownFormat,
    /// The workload text did not parse under its resolved frontend.
    Parse,
    /// The workload kind is one the target structurally rejects (a circuit
    /// sent to a formula-only backend like the FPQA wOptimizer).
    UnsupportedWorkload,
    /// Compilation failed (including internal panics, which the engine
    /// contains instead of aborting the batch).
    Compile,
}

impl JobErrorKind {
    /// JSONL / diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            JobErrorKind::Io => "io",
            JobErrorKind::UnknownFormat => "unknown-format",
            JobErrorKind::Parse => "parse",
            JobErrorKind::UnsupportedWorkload => "unsupported-workload",
            JobErrorKind::Compile => "compile",
        }
    }
}

/// A structured job failure.
#[derive(Clone, Debug, PartialEq)]
pub struct JobError {
    /// What went wrong.
    pub kind: JobErrorKind,
    /// One-line description.
    pub message: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

impl std::error::Error for JobError {}

/// Outcome of one job in a batch.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Index of the job in the submitted batch (results are returned in
    /// this order regardless of completion order).
    pub index: usize,
    /// Display name of the workload.
    pub name: String,
    /// The backend compiled for.
    pub target: Target,
    /// Hex artifact key (empty when the workload never parsed).
    pub key: String,
    /// Cache participation.
    pub cache: CacheOutcome,
    /// Per-stage wall-clock timings of *this* run.
    pub timings: StageTimings,
    /// The artifact (shared with the cache — a hit is served without
    /// copying the program text), or a structured error.
    pub artifact: Result<std::sync::Arc<Artifact>, JobError>,
}

impl JobResult {
    /// Whether the job produced an artifact (and, if checked, passed).
    pub fn succeeded(&self) -> bool {
        match &self.artifact {
            Ok(a) => a.check_passed != Some(false),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weaver_sat::generator;

    #[test]
    fn artifact_key_is_content_addressed() {
        let f = generator::instance(20, 1);
        let w = Workload::MaxSat(f.clone());
        let by_formula = CompileJob::from_formula("a", f.clone());
        let by_inline = CompileJob {
            source: JobSource::Inline {
                name: "b".into(),
                text: weaver_sat::dimacs::to_string(&f),
            },
            ..by_formula.clone()
        };
        assert_eq!(
            by_formula.artifact_key(&w),
            by_inline.artifact_key(&w),
            "source origin must not affect the key"
        );
        let mut explicit = by_formula.clone();
        explicit.frontend = Some("dimacs".into());
        assert_eq!(
            by_formula.artifact_key(&w),
            explicit.artifact_key(&w),
            "the parsing frontend must not affect the key"
        );
    }

    #[test]
    fn artifact_key_separates_every_input() {
        let f = generator::instance(20, 1);
        let w = Workload::MaxSat(f.clone());
        let base = CompileJob::from_formula("a", f.clone());
        let key = base.artifact_key(&w);
        let other = Workload::MaxSat(generator::instance(20, 2));
        assert_ne!(key, base.artifact_key(&other));
        let mut sc = base.clone();
        sc.target = Target::Superconducting;
        assert_ne!(key, sc.artifact_key(&w));
        let mut opts = base.clone();
        opts.options.gamma += 1e-12;
        assert_ne!(key, opts.artifact_key(&w));
        let mut ccz = base.clone();
        ccz.options.ccz_fidelity = Some(0.97);
        assert_ne!(key, ccz.artifact_key(&w));
        let mut check = base.clone();
        check.options.check = true;
        assert_ne!(key, check.artifact_key(&w));
    }

    #[test]
    fn artifact_key_separates_workload_kinds() {
        // A circuit and a formula can never share an artifact, even if
        // their canonical texts were to coincide byte-for-byte upstream.
        let f = generator::instance(10, 1);
        let job = CompileJob::from_formula("k", f.clone());
        let formula_key = job.artifact_key(&Workload::MaxSat(f));
        let program = weaver_wqasm::parse("qreg q[2];\nh q[0];\ncx q[0], q[1];\n").unwrap();
        let circuit_key = job.artifact_key(&Workload::Circuit(program));
        assert_ne!(formula_key, circuit_key);
    }

    #[test]
    fn target_parses_cli_names() {
        assert_eq!(Target::parse("fpqa").unwrap(), Target::Fpqa);
        assert_eq!(Target::parse("sc").unwrap(), Target::Superconducting);
        assert_eq!(
            Target::parse("superconducting").unwrap(),
            Target::Superconducting
        );
        assert_eq!(Target::parse("simulator").unwrap(), Target::Simulator);
        assert_eq!(Target::parse("sim").unwrap(), Target::Simulator);
        let err = Target::parse("ion-trap").unwrap_err();
        assert!(
            err.contains("known targets: fpqa, superconducting, simulator"),
            "{err}"
        );
    }

    #[test]
    fn target_parses_device_family_names() {
        for (input, canonical) in [
            ("sc:line", "sc:line"),
            ("sc:grid", "sc:grid"),
            ("sc:eagle", "sc:eagle"),
            ("sc:washington", "sc:eagle"),
            ("sc:heron", "sc:heron"),
            ("sc:grid:4x5", "sc:grid:4x5"),
        ] {
            let target = Target::parse(input).unwrap();
            assert_eq!(target, Target::ScDevice(canonical.to_string()), "{input}");
            assert_eq!(target.name(), canonical);
        }
        assert_eq!(Target::builtin_devices().len(), 4);
        for bad in ["sc:osprey", "sc:grid:0x4", "sc:grid:"] {
            let err = Target::parse(bad).unwrap_err();
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn artifact_key_separates_every_device() {
        let f = generator::instance(10, 1);
        let w = Workload::MaxSat(f.clone());
        let mut keys = std::collections::HashSet::new();
        let mut targets = Target::builtin_devices();
        targets.push(Target::ScDevice("sc:grid:4x5".to_string()));
        targets.push(Target::ScDevice("sc:grid:5x4".to_string()));
        targets.push(Target::Superconducting);
        for target in targets {
            let mut job = CompileJob::from_formula("t", f.clone());
            job.target = target.clone();
            assert!(keys.insert(job.artifact_key(&w)), "{target} key collides");
        }
    }

    #[test]
    fn artifact_key_separates_all_targets() {
        let f = generator::instance(10, 1);
        let w = Workload::MaxSat(f.clone());
        let mut keys = std::collections::HashSet::new();
        for target in Target::ALL {
            let mut job = CompileJob::from_formula("t", f.clone());
            job.target = target.clone();
            assert!(keys.insert(job.artifact_key(&w)), "{target} key collides");
        }
    }
}
